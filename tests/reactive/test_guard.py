"""ThermalGuard state machine under a fake clock.

The guard holds no clock of its own — time is whatever the samples
say — so every scenario here is a hand-written timeline and every
assertion is exact.
"""

from __future__ import annotations

import pytest

from repro.errors import ReactiveError
from repro.reactive import (
    GuardConfig,
    TemperatureSample,
    ThermalGuard,
    ThermalState,
)

#: Synthetic thresholds used throughout: wide, round, easy to reason about.
CONFIG = GuardConfig(
    elevated_c=50.0, critical_c=60.0, hysteresis_c=2.0, trend_window_s=1.0
)


def sample(time_s: float, temp_c: float, block: str = "B1") -> TemperatureSample:
    return TemperatureSample(time_s=time_s, temperatures_c={block: temp_c})


def feed(guard: ThermalGuard, timeline: list[tuple[float, float]]):
    """Run a (time, temp) timeline through the guard; return analyses."""
    return [guard.update(sample(t, temp)) for t, temp in timeline]


class TestConfig:
    def test_elevated_must_be_below_critical(self):
        with pytest.raises(ReactiveError, match="must be below critical"):
            GuardConfig(elevated_c=60.0, critical_c=60.0)

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(ReactiveError, match="hysteresis"):
            GuardConfig(elevated_c=50.0, critical_c=60.0, hysteresis_c=-0.1)

    def test_from_limit_splits_the_ambient_span(self):
        config = GuardConfig.from_limit(90.0, 40.0, elevated_fraction=0.7)
        assert config.critical_c == pytest.approx(90.0)
        assert config.elevated_c == pytest.approx(40.0 + 0.7 * 50.0)
        assert config.hysteresis_c == pytest.approx(0.05 * 50.0)

    def test_from_limit_rejects_limit_below_ambient(self):
        with pytest.raises(ReactiveError, match="not above ambient"):
            GuardConfig.from_limit(40.0, 45.0)


class TestStateMachine:
    def test_starts_normal(self):
        assert ThermalGuard(CONFIG).state is ThermalState.NORMAL

    def test_upgrades_are_immediate(self):
        guard = ThermalGuard(CONFIG)
        analyses = feed(guard, [(0.0, 45.0), (0.1, 51.0), (0.2, 61.0)])
        assert [a.state for a in analyses] == [
            ThermalState.NORMAL,
            ThermalState.ELEVATED,
            ThermalState.CRITICAL,
        ]
        assert analyses[1].transitioned and analyses[2].transitioned

    def test_single_hot_sample_is_enough_for_critical(self):
        guard = ThermalGuard(CONFIG)
        analysis = guard.update(sample(0.0, 75.0))
        assert analysis.state is ThermalState.CRITICAL
        assert analysis.previous_state is ThermalState.NORMAL
        assert analysis.recommended_action == "pause"

    def test_downgrade_requires_clearing_the_hysteresis_band(self):
        guard = ThermalGuard(CONFIG)
        # Enter ELEVATED, then hover just below the threshold: with a
        # 2 C band the guard must hold ELEVATED until below 48.
        analyses = feed(
            guard,
            [(0.0, 51.0), (0.1, 49.5), (0.2, 48.5), (0.3, 47.9)],
        )
        assert [a.state for a in analyses] == [
            ThermalState.ELEVATED,
            ThermalState.ELEVATED,
            ThermalState.ELEVATED,
            ThermalState.NORMAL,
        ]

    def test_boundary_hover_does_not_flap(self):
        guard = ThermalGuard(CONFIG)
        # Oscillate +-0.5 C around the elevated threshold: one upgrade,
        # zero downgrades.
        timeline = [
            (i * 0.1, 50.0 + (0.5 if i % 2 == 0 else -0.5))
            for i in range(20)
        ]
        feed(guard, timeline)
        assert guard.transitions == {"normal->elevated": 1}

    def test_critical_downgrade_steps_through_elevated(self):
        guard = ThermalGuard(CONFIG)
        analyses = feed(
            guard, [(0.0, 61.0), (0.1, 57.0), (0.2, 47.0), (0.3, 47.0)]
        )
        assert [a.state for a in analyses] == [
            ThermalState.CRITICAL,
            ThermalState.ELEVATED,
            ThermalState.NORMAL,
            ThermalState.NORMAL,
        ]
        assert guard.transitions == {
            "normal->critical": 1,
            "critical->elevated": 1,
            "elevated->normal": 1,
        }

    def test_critical_holds_inside_its_own_hysteresis_band(self):
        guard = ThermalGuard(CONFIG)
        analyses = feed(guard, [(0.0, 61.0), (0.1, 58.5)])
        # 58.5 is below critical (60) but inside the 2 C band.
        assert analyses[1].state is ThermalState.CRITICAL

    def test_out_of_order_samples_rejected(self):
        guard = ThermalGuard(CONFIG)
        guard.update(sample(1.0, 45.0))
        with pytest.raises(ReactiveError, match="time order"):
            guard.update(sample(0.5, 45.0))

    def test_equal_timestamps_allowed(self):
        guard = ThermalGuard(CONFIG)
        guard.update(sample(1.0, 45.0))
        analysis = guard.update(sample(1.0, 45.0))
        assert analysis.state is ThermalState.NORMAL


class TestAnalysis:
    def test_headroom_is_distance_to_critical(self):
        guard = ThermalGuard(CONFIG)
        analysis = guard.update(sample(0.0, 52.5))
        assert analysis.headroom_c == pytest.approx(7.5)

    def test_trend_recovers_a_linear_ramp(self):
        guard = ThermalGuard(CONFIG)
        # 3 C/s ramp sampled at 10 Hz: the least-squares slope over the
        # window must be the ramp itself.
        analyses = feed(
            guard, [(i * 0.1, 40.0 + 3.0 * i * 0.1) for i in range(8)]
        )
        assert analyses[-1].trend_c_per_s == pytest.approx(3.0)

    def test_trend_window_forgets_old_samples(self):
        guard = ThermalGuard(CONFIG)
        # Old cooling, then a 1-second flat stretch: with a 1 s window
        # the early samples age out and the trend settles to ~0.
        timeline = [(0.0, 49.0), (0.1, 45.0)]
        timeline += [(0.2 + i * 0.2, 45.0) for i in range(8)]
        analyses = feed(guard, timeline)
        assert analyses[-1].trend_c_per_s == pytest.approx(0.0)

    def test_single_sample_has_zero_trend(self):
        guard = ThermalGuard(CONFIG)
        assert guard.update(sample(0.0, 45.0)).trend_c_per_s == 0.0

    def test_throttle_recommended_at_elevated_and_above(self):
        guard = ThermalGuard(CONFIG)
        analyses = feed(guard, [(0.0, 45.0), (0.1, 51.0), (0.2, 61.0)])
        assert [a.throttle_recommended for a in analyses] == [
            False,
            True,
            True,
        ]

    def test_to_dict_is_json_ready(self):
        guard = ThermalGuard(CONFIG)
        payload = guard.update(sample(0.0, 51.0)).to_dict()
        assert payload["state"] == "elevated"
        assert payload["previous_state"] == "normal"
        assert payload["recommended_action"] == "throttle"
        assert payload["hottest_block"] == "B1"


class TestBookkeeping:
    def test_dwell_attributed_to_the_state_held_before_each_sample(self):
        guard = ThermalGuard(CONFIG)
        # NORMAL for 1 s, ELEVATED for 2 s, CRITICAL for 0.5 s.
        feed(
            guard,
            [(0.0, 45.0), (1.0, 51.0), (3.0, 61.0), (3.5, 61.0)],
        )
        dwell = guard.dwell_s
        assert dwell["normal"] == pytest.approx(1.0)
        assert dwell["elevated"] == pytest.approx(2.0)
        assert dwell["critical"] == pytest.approx(0.5)

    def test_dwell_sums_to_elapsed_time(self):
        guard = ThermalGuard(CONFIG)
        timeline = [
            (i * 0.25, 44.0 + 4.0 * (i % 5)) for i in range(40)
        ]
        feed(guard, timeline)
        assert sum(guard.dwell_s.values()) == pytest.approx(
            timeline[-1][0] - timeline[0][0]
        )

    def test_transitions_and_dwell_are_copies(self):
        guard = ThermalGuard(CONFIG)
        guard.update(sample(0.0, 61.0))
        guard.transitions["normal->critical"] = 99
        guard.dwell_s["normal"] = 99.0
        assert guard.transitions == {"normal->critical": 1}
        assert guard.dwell_s["normal"] == 0.0

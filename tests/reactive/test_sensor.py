"""VirtualSensor: transient-solver stepping with carried thermal state."""

from __future__ import annotations

import pytest

from repro.errors import ReactiveError
from repro.reactive import TemperatureSample, VirtualSensor
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture(scope="module")
def simulator(example_soc):
    return ThermalSimulator(
        example_soc.floorplan, example_soc.package, example_soc.adjacency
    )


@pytest.fixture()
def power(example_soc):
    return example_soc.session_power_map(("B1", "B4"))


class TestSampleShape:
    def test_empty_sample_rejected(self):
        with pytest.raises(ReactiveError, match=">= 1 block"):
            TemperatureSample(time_s=0.0, temperatures_c={})

    def test_hottest_block_prefers_first_on_ties(self):
        sample = TemperatureSample(
            time_s=0.0, temperatures_c={"A": 50.0, "B": 50.0}
        )
        assert sample.hottest_block == "A"
        assert sample.max_temperature_c == 50.0


class TestSensor:
    def test_bad_step_rejected(self, simulator):
        with pytest.raises(ReactiveError, match="step must be positive"):
            VirtualSensor(simulator, dt=0.0)

    def test_bad_duration_rejected(self, simulator, power):
        sensor = VirtualSensor(simulator, dt=0.01)
        with pytest.raises(ReactiveError, match="duration must be positive"):
            sensor.advance(power, 0.0)

    def test_one_sample_per_step_with_dt_spacing(self, simulator, power):
        sensor = VirtualSensor(simulator, dt=0.01, start_time_s=5.0)
        samples = sensor.advance(power, 0.1)
        assert len(samples) == sensor.steps_for(0.1) == 10
        times = [s.time_s for s in samples]
        assert times[0] == pytest.approx(5.01)
        assert times[-1] == pytest.approx(5.1)
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(0.01) for d in deltas)

    def test_samples_cover_every_block(self, simulator, power, example_soc):
        sensor = VirtualSensor(simulator, dt=0.01)
        (sample,) = sensor.advance(power, 0.01)
        assert set(sample.temperatures_c) == set(
            example_soc.floorplan.block_names
        )

    def test_partial_step_rounds_up_like_the_solver(self, simulator, power):
        sensor = VirtualSensor(simulator, dt=0.01)
        assert len(sensor.advance(power, 0.015)) == 2

    def test_chunked_advance_heats_like_one_call(self, simulator, power):
        # The closed-loop contract: state carries across calls, so a
        # schedule advanced in control-period chunks lands on exactly
        # the temperatures of the same schedule advanced in one go.
        whole = VirtualSensor(simulator, dt=0.01)
        chunked = VirtualSensor(simulator, dt=0.01)
        final_whole = whole.advance(power, 0.5)[-1]
        last = None
        for _ in range(10):
            last = chunked.advance(power, 0.05)[-1]
        assert last is not None
        assert last.time_s == pytest.approx(final_whole.time_s)
        for block, temp in final_whole.temperatures_c.items():
            assert last.temperatures_c[block] == pytest.approx(temp)

    def test_powered_blocks_heat_above_ambient(self, simulator, power):
        sensor = VirtualSensor(simulator, dt=0.01)
        sample = sensor.advance(power, 0.5)[-1]
        ambient = simulator.ambient_c
        assert sample.temperatures_c["B1"] > ambient
        assert sample.max_temperature_c > ambient

    def test_zero_power_cools_back_toward_ambient(self, simulator, power):
        sensor = VirtualSensor(simulator, dt=0.01)
        hot = sensor.advance(power, 0.5)[-1].max_temperature_c
        cooled = sensor.advance({}, 1.0)[-1].max_temperature_c
        assert cooled < hot

"""Closed-loop reactive execution tests."""

"""Closed-loop executor acceptance: safety, determinism, timeline shape.

The pivotal scenario mirrors the ISSUE's acceptance criterion: a
schedule whose open-loop execution exceeds a critical threshold must,
under the ReactiveExecutor, keep every sampled block temperature at or
below that threshold — and the event timeline must replay bit-for-bit
under the same seed-free, fake-clock setup.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.api import ScheduleRequest, execute_request
from repro.errors import ReactiveError
from repro.reactive import (
    EVENT_KINDS,
    GuardConfig,
    ReactiveConfig,
    ReactiveExecutor,
    ThermalGuard,
    VirtualSensor,
    run_schedule_result,
)
from repro.thermal.simulator import ThermalSimulator

#: worked_example6 at TL 80 / STCL 60 solves to six singleton sessions
#: whose open-loop transient peaks at ~53.3 C — so a 53 C critical
#: threshold is exceeded open-loop and must be held closed-loop.
GUARD = GuardConfig(elevated_c=49.0, critical_c=53.0, hysteresis_c=1.5)


@pytest.fixture(scope="module")
def result():
    report = execute_request(
        ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)
    )
    return report.result


class TestConfig:
    def test_bad_chunk_rejected(self):
        with pytest.raises(ReactiveError, match="control period"):
            ReactiveConfig(chunk_s=0.0)

    def test_throttle_factor_must_be_a_real_reduction(self):
        with pytest.raises(ReactiveError, match="throttle factor"):
            ReactiveConfig(throttle_factor=1.0)

    def test_pause_budget_must_cover_one_interval(self):
        with pytest.raises(ReactiveError, match="pause budget"):
            ReactiveConfig(pause_s=1.0, max_pause_s=0.5)


class TestClosedLoopSafety:
    def test_open_loop_exceeds_critical_closed_loop_does_not(self, result):
        open_loop = run_schedule_result(
            result, guard_config=GUARD, closed_loop=False
        )
        closed = run_schedule_result(result, guard_config=GUARD)
        # The scenario is only meaningful if open-loop actually runs hot.
        assert open_loop.peak_temperature_c > GUARD.critical_c
        # Closed loop: every sampled block temperature stays at or
        # below critical — not just the global peak.
        assert closed.peak_temperature_c <= GUARD.critical_c
        assert all(
            temp <= GUARD.critical_c
            for temp in closed.peak_by_block.values()
        )
        assert closed.throttles > 0

    def test_closed_loop_completes_all_work(self, result):
        report = run_schedule_result(result, guard_config=GUARD)
        expected = sum(s.duration_s for s in result.schedule.sessions)
        assert report.work_s == pytest.approx(expected)
        # Throttling stretches wall-clock beyond the test work.
        assert report.total_time_s > report.work_s

    def test_open_loop_timeline_is_plain_execution(self, result):
        report = run_schedule_result(
            result, guard_config=GUARD, closed_loop=False
        )
        kinds = {e.kind for e in report.events}
        assert "throttled" not in kinds
        assert "paused" not in kinds
        assert "reordered" not in kinds
        assert report.total_time_s == pytest.approx(report.work_s)


class TestDeterminism:
    def test_event_timeline_replays_identically(self, result):
        first = run_schedule_result(result, guard_config=GUARD)
        second = run_schedule_result(result, guard_config=GUARD)
        assert first.to_dict() == second.to_dict()

    def test_dwell_and_transitions_replay_identically(self, result):
        first = run_schedule_result(result, guard_config=GUARD)
        second = run_schedule_result(result, guard_config=GUARD)
        assert first.guard_transitions == second.guard_transitions
        assert first.dwell_s == second.dwell_s
        assert first.samples == second.samples


class TestTimelineShape:
    def test_events_are_contiguous_and_end_in_done(self, result):
        report = run_schedule_result(result, guard_config=GUARD)
        assert [e.seq for e in report.events] == list(
            range(len(report.events))
        )
        assert all(e.kind in EVENT_KINDS for e in report.events)
        assert report.events[-1].kind == "done"
        n = len(result.schedule.sessions)
        assert [e.kind for e in report.events[:n]] == ["queued"] * n

    def test_every_session_runs_and_finishes_once(self, result):
        report = run_schedule_result(result, guard_config=GUARD)
        n = len(result.schedule.sessions)
        ran = [e.session for e in report.events if e.kind == "running"]
        done = [e.session for e in report.events if e.kind == "session_done"]
        assert sorted(ran) == sorted(done) == list(range(n))

    def test_event_times_are_monotonic(self, result):
        report = run_schedule_result(result, guard_config=GUARD)
        times = [e.time_s for e in report.events]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_counters_match_the_timeline(self, result):
        report = run_schedule_result(result, guard_config=GUARD)
        by_kind = {
            kind: sum(1 for e in report.events if e.kind == kind)
            for kind in EVENT_KINDS
        }
        assert report.throttles == by_kind["throttled"]
        assert report.pauses == by_kind["paused"]
        assert report.reorders == by_kind["reordered"]

    def test_on_event_streams_the_exact_timeline(self, result):
        streamed = []
        report = run_schedule_result(
            result, guard_config=GUARD, on_event=streamed.append
        )
        assert streamed == list(report.events)

    def test_describe_mentions_the_control_actions(self, result):
        text = run_schedule_result(result, guard_config=GUARD).describe()
        assert "throttle(s)" in text
        assert "guard transition(s)" in text


class TestExecutorEdges:
    def test_empty_schedule_rejected(self, result, example_soc):
        simulator = ThermalSimulator(
            example_soc.floorplan,
            example_soc.package,
            example_soc.adjacency,
        )
        executor = ReactiveExecutor(
            VirtualSensor(simulator), ThermalGuard(GUARD)
        )
        # TestSchedule itself refuses to be empty, so fake the shape a
        # hostile caller could hand the executor directly.
        hollow = SimpleNamespace(soc=example_soc, sessions=[])
        with pytest.raises(ReactiveError, match="empty schedule"):
            executor.run(hollow)

    def test_impossible_thresholds_exhaust_the_pause_budget(self, result):
        # Critical below ambient: the die can never cool under it, so
        # the executor must give up instead of pausing forever.
        impossible = GuardConfig(elevated_c=10.0, critical_c=20.0)
        with pytest.raises(ReactiveError, match="pause budget|CRITICAL"):
            run_schedule_result(
                result,
                guard_config=impossible,
                config=ReactiveConfig(pause_s=0.05, max_pause_s=0.2),
            )

"""Scheduler equivalence: reduced steady path vs dense, incremental STC.

Two independent guarantees:

* switching ``SchedulerConfig.steady_path`` between ``"reduced"`` and
  ``"dense"`` changes *how* candidate sessions are validated but not
  *what* is decided — same sessions, same discards, same effort, same
  solve counts; temperatures agree to solver precision;
* :class:`~repro.core.session_model.SessionGrowth` returns
  **bit-identical** STC values to the from-scratch
  ``session_thermal_characteristic`` for every admission sequence and
  every ablation configuration.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scheduler import SchedulerConfig, ThermalAwareScheduler
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.errors import SchedulingError
from repro.floorplan.generator import slicing_floorplan
from repro.power.generator import PowerGeneratorConfig, generate_power_profile
from repro.soc.library import (
    ALPHA15_STC_SCALE,
    alpha15_soc,
    hypothetical7_soc,
)
from repro.soc.system import SocUnderTest
from repro.thermal.simulator import ThermalSimulator


def build_random_soc(n_cores: int, seed: int) -> SocUnderTest:
    plan = slicing_floorplan(n_cores, seed=seed)
    profile = generate_power_profile(plan, PowerGeneratorConfig(seed=seed))
    return SocUnderTest.from_profile(plan, profile)


def run_schedule(soc, model, path, tl_c, stcl):
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    scheduler = ThermalAwareScheduler(
        soc,
        simulator=simulator,
        session_model=model,
        config=SchedulerConfig(steady_path=path),
    )
    return scheduler.schedule(tl_c=tl_c, stcl=stcl)


def assert_same_decisions(reduced, dense):
    """Same partition, same discards, same metrics; temps to precision."""
    assert [s.cores for s in reduced.schedule] == [s.cores for s in dense.schedule]
    assert [s.duration_s for s in reduced.schedule] == [
        s.duration_s for s in dense.schedule
    ]
    assert reduced.length_s == dense.length_s
    assert reduced.effort_s == dense.effort_s
    assert reduced.steady_solves == dense.steady_solves
    assert reduced.forced_singletons == dense.forced_singletons
    assert dict(reduced.weights) == dict(dense.weights)
    assert [(d.cores, d.violators, d.iteration) for d in reduced.discarded] == [
        (d.cores, d.violators, d.iteration) for d in dense.discarded
    ]
    assert reduced.max_temperature_c == pytest.approx(
        dense.max_temperature_c, abs=1e-9
    )
    for name in reduced.bcmt_c:
        assert reduced.bcmt_c[name] == pytest.approx(
            dense.bcmt_c[name], abs=1e-9
        )


class TestReducedVsDenseScheduling:
    @pytest.mark.parametrize(
        "tl_c, stcl", [(165.0, 60.0), (175.0, 40.0), (180.0, 90.0)]
    )
    def test_alpha15_decisions_identical(self, tl_c, stcl):
        soc = alpha15_soc()
        model = SessionThermalModel(
            soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
        )
        reduced = run_schedule(soc, model, "reduced", tl_c, stcl)
        dense = run_schedule(soc, model, "dense", tl_c, stcl)
        assert_same_decisions(reduced, dense)

    def test_hypothetical7_decisions_identical(self):
        soc = hypothetical7_soc()
        model = SessionThermalModel(soc, SessionModelConfig(include_vertical=True))
        reduced = run_schedule(soc, model, "reduced", 200.0, 4000.0)
        dense = run_schedule(soc, model, "dense", 200.0, 4000.0)
        assert_same_decisions(reduced, dense)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_cores=st.integers(min_value=2, max_value=9),
        seed=st.integers(min_value=0, max_value=5_000),
        tl_c=st.floats(min_value=100.0, max_value=220.0),
        stcl=st.floats(min_value=10.0, max_value=3_000.0),
    )
    def test_random_soc_decisions_identical(self, n_cores, seed, tl_c, stcl):
        soc = build_random_soc(n_cores, seed)
        model = SessionThermalModel(soc)
        try:
            reduced = run_schedule(soc, model, "reduced", tl_c, stcl)
        except Exception as reduced_exc:
            with pytest.raises(type(reduced_exc)):
                run_schedule(soc, model, "dense", tl_c, stcl)
            return
        dense = run_schedule(soc, model, "dense", tl_c, stcl)
        assert_same_decisions(reduced, dense)


class TestSessionGrowth:
    @pytest.fixture(scope="class")
    def soc(self):
        return alpha15_soc()

    def _grow_and_compare(self, model, names, weights, admit_threshold):
        """Greedy growth double-checked against from-scratch STC."""
        growth = model.start_session(weights)
        session: list[str] = []
        for candidate in names:
            incremental = growth.stc_if_added(candidate)
            scratch = model.session_thermal_characteristic(
                session + [candidate], weights
            )
            # Bit-identical, not approximately equal: the accumulator
            # must run the same float operations on the same operands.
            if math.isinf(scratch):
                assert math.isinf(incremental)
            else:
                assert incremental == scratch
            if incremental <= admit_threshold:
                growth.add(candidate)
                session.append(candidate)
                assert growth.stc() == model.session_thermal_characteristic(
                    session, weights
                )
        assert list(growth.cores) == session

    @pytest.mark.parametrize(
        "config",
        [
            SessionModelConfig(),
            SessionModelConfig(drop_active_active=False),
            SessionModelConfig(ground_passive=False),
            SessionModelConfig(drop_active_active=False, ground_passive=False),
            SessionModelConfig(include_vertical=True),
            SessionModelConfig(stc_scale=ALPHA15_STC_SCALE),
        ],
        ids=[
            "paper",
            "no-M2",
            "no-M3",
            "no-M2-no-M3",
            "vertical",
            "scaled",
        ],
    )
    def test_bit_identical_across_configs(self, soc, config):
        model = SessionThermalModel(soc, config)
        rng = random.Random(7)
        names = list(soc.core_names)
        weights = {n: 1.0 + rng.random() for n in names}
        for trial in range(5):
            rng.shuffle(names)
            threshold = rng.uniform(1e-3, 1e6)
            self._grow_and_compare(model, list(names), weights, threshold)

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_cores=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
        order_seed=st.integers(min_value=0, max_value=10_000),
        threshold=st.floats(min_value=1e-3, max_value=1e9),
    )
    def test_bit_identical_on_random_floorplans(
        self, n_cores, seed, order_seed, threshold
    ):
        soc = build_random_soc(n_cores, seed)
        model = SessionThermalModel(soc)
        rng = random.Random(order_seed)
        names = list(soc.core_names)
        rng.shuffle(names)
        weights = {n: 1.0 + rng.random() * 3.0 for n in names}
        self._grow_and_compare(model, names, weights, threshold)

    def test_duplicate_admission_rejected(self, soc):
        model = SessionThermalModel(soc)
        growth = model.start_session()
        first = soc.core_names[0]
        growth.add(first)
        with pytest.raises(SchedulingError, match="already part"):
            growth.add(first)
        with pytest.raises(SchedulingError, match="already part"):
            growth.stc_if_added(first)

    def test_unknown_core_rejected(self, soc):
        model = SessionThermalModel(soc)
        growth = model.start_session()
        with pytest.raises(SchedulingError, match="unknown core"):
            growth.stc_if_added("nope")

    def test_empty_session_stc_is_zero(self, soc):
        model = SessionThermalModel(soc)
        assert model.start_session().stc() == 0.0

"""Unit + integration tests for Algorithm 1 (the thermal-aware scheduler)."""

from __future__ import annotations

import pytest

from repro.core.scheduler import (
    SchedulerConfig,
    ThermalAwareScheduler,
)
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.errors import (
    CoreThermalViolationError,
    ScheduleInfeasibleError,
    SchedulingError,
)
from repro.floorplan.generator import grid_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.soc.library import ALPHA15_STC_SCALE, alpha15_soc
from repro.soc.system import SocUnderTest
from repro.thermal.simulator import ThermalSimulator


def small_soc(power_w: float = 10.0) -> SocUnderTest:
    plan = grid_floorplan(2, 2)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, power_w)
    )


class TestConfigValidation:
    def test_bad_weight_factor_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(weight_factor=0.5)

    def test_bad_max_discards_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(max_discards=0)

    def test_bad_stcl_rejected(self):
        scheduler = ThermalAwareScheduler(small_soc())
        with pytest.raises(SchedulingError):
            scheduler.schedule(tl_c=150.0, stcl=0.0)


class TestPhaseA:
    def test_bcmt_reported_for_every_core(self):
        soc = small_soc()
        scheduler = ThermalAwareScheduler(soc)
        bcmt, effort = scheduler.best_case_max_temperatures()
        assert set(bcmt) == set(soc.core_names)
        assert effort == pytest.approx(4.0)  # 4 cores x 1 s

    def test_individually_unsafe_core_raises(self):
        soc = small_soc(power_w=500.0)  # absurd power: hot even alone
        scheduler = ThermalAwareScheduler(soc)
        with pytest.raises(CoreThermalViolationError) as excinfo:
            scheduler.schedule(tl_c=145.0, stcl=100.0)
        err = excinfo.value
        assert err.limit_c == 145.0
        assert err.max_temperature_c > 145.0
        assert err.core_name in soc.core_names


class TestScheduleValidity:
    """Every schedule must be a partition and thermally safe."""

    @pytest.fixture(scope="class")
    def result(self):
        soc = small_soc(power_w=30.0)
        return ThermalAwareScheduler(soc).schedule(tl_c=120.0, stcl=50.0), soc

    def test_partition(self, result):
        schedule_result, soc = result
        tested = [c for s in schedule_result.schedule for c in s.cores]
        assert sorted(tested) == sorted(soc.core_names)

    def test_all_sessions_below_tl(self, result):
        schedule_result, _ = result
        for session in schedule_result.schedule:
            assert session.max_temperature_c < 120.0

    def test_metrics_consistency(self, result):
        schedule_result, _ = result
        assert schedule_result.length_s == schedule_result.schedule.length_s
        assert schedule_result.effort_s >= schedule_result.length_s
        discarded_time = sum(
            d.duration_s for d in schedule_result.discarded
        )
        assert schedule_result.effort_s == pytest.approx(
            schedule_result.length_s + discarded_time
        )

    def test_max_temperature_matches_sessions(self, result):
        schedule_result, _ = result
        assert schedule_result.max_temperature_c == pytest.approx(
            max(s.max_temperature_c for s in schedule_result.schedule)
        )


class TestEffortAccounting:
    def test_first_attempt_success_means_effort_equals_length(self):
        """The paper's observation for tight STCL."""
        soc = small_soc(power_w=10.0)  # cool: everything is safe
        result = ThermalAwareScheduler(soc).schedule(tl_c=150.0, stcl=1e6)
        assert result.n_discarded == 0
        assert result.effort_s == pytest.approx(result.length_s)

    def test_discards_add_effort(self):
        """Power high enough that the full-concurrency first attempt
        violates TL: effort must exceed length."""
        soc = small_soc(power_w=60.0)
        result = ThermalAwareScheduler(soc).schedule(tl_c=120.0, stcl=1e6)
        assert result.n_discarded > 0
        assert result.effort_s > result.length_s

    def test_phase_a_effort_opt_in(self):
        soc = small_soc(power_w=10.0)
        base = ThermalAwareScheduler(soc).schedule(tl_c=150.0, stcl=1e6)
        counted = ThermalAwareScheduler(
            soc, config=SchedulerConfig(count_phase_a_effort=True)
        ).schedule(tl_c=150.0, stcl=1e6)
        assert counted.effort_s == pytest.approx(base.effort_s + 4.0)


class TestWeightFeedback:
    def test_violators_get_penalised(self):
        soc = small_soc(power_w=60.0)
        result = ThermalAwareScheduler(soc).schedule(tl_c=120.0, stcl=1e6)
        # Some weight must have risen above 1.
        assert max(result.weights.values()) > 1.0
        # The violators recorded in discards are the penalised cores.
        penalised = {c for d in result.discarded for c in d.violators}
        raised = {c for c, w in result.weights.items() if w > 1.0}
        assert penalised == raised

    def test_no_feedback_ablation_hits_discard_cap(self):
        """With weight_factor=1.0 and no STC pressure, the same too-hot
        session is proposed forever; the safety cap must fire."""
        soc = small_soc(power_w=60.0)
        scheduler = ThermalAwareScheduler(
            soc, config=SchedulerConfig(weight_factor=1.0, max_discards=25)
        )
        with pytest.raises(ScheduleInfeasibleError, match="max_discards"):
            scheduler.schedule(tl_c=120.0, stcl=1e6)

    def test_tighter_stcl_never_needs_more_discards_here(self):
        """On this symmetric SoC, a tight STCL prevents the oversized
        first attempts entirely."""
        soc = small_soc(power_w=60.0)
        model = SessionThermalModel(soc, SessionModelConfig())
        singleton = model.session_thermal_characteristic([soc.core_names[0]])
        tight = ThermalAwareScheduler(soc).schedule(
            tl_c=120.0, stcl=singleton * 1.01
        )
        assert tight.n_discarded == 0
        assert tight.effort_s == pytest.approx(tight.length_s)


class TestStuckHandling:
    def test_error_mode_raises_when_nothing_fits(self):
        soc = small_soc(power_w=10.0)
        scheduler = ThermalAwareScheduler(
            soc, config=SchedulerConfig(on_stuck="error")
        )
        # STCL below every singleton STC: nothing can seed a session.
        with pytest.raises(ScheduleInfeasibleError, match="fits"):
            scheduler.schedule(tl_c=150.0, stcl=1e-9)

    def test_force_mode_degrades_to_sequential(self):
        soc = small_soc(power_w=10.0)
        result = ThermalAwareScheduler(soc).schedule(tl_c=150.0, stcl=1e-9)
        # Every session is a forced singleton -> sequential schedule.
        assert result.n_sessions == len(soc)
        assert result.forced_singletons == len(soc)
        assert all(len(s) == 1 for s in result.schedule)


class TestCandidateOrders:
    @pytest.mark.parametrize(
        "order", ["input", "power_desc", "area_asc", "density_desc"]
    )
    def test_all_orders_produce_valid_schedules(self, order):
        soc = small_soc(power_w=30.0)
        result = ThermalAwareScheduler(
            soc, config=SchedulerConfig(candidate_order=order)
        ).schedule(tl_c=120.0, stcl=50.0)
        tested = sorted(c for s in result.schedule for c in s.cores)
        assert tested == sorted(soc.core_names)

    def test_unknown_order_rejected(self):
        soc = small_soc()
        scheduler = ThermalAwareScheduler(
            soc, config=SchedulerConfig(candidate_order="input")
        )
        # Bypass dataclass validation to hit the runtime guard.
        object.__setattr__(scheduler.config, "candidate_order", "bogus")
        with pytest.raises(SchedulingError, match="unknown candidate order"):
            scheduler.schedule(tl_c=150.0, stcl=10.0)


class TestSessionGrowthSemantics:
    def test_grow_respects_stcl(self):
        """Every committed session satisfies STC <= STCL under the
        weights in force when it was built (re-check with final weights
        for sessions committed before any later penalisation)."""
        soc = small_soc(power_w=30.0)
        model = SessionThermalModel(soc, SessionModelConfig())
        scheduler = ThermalAwareScheduler(soc, session_model=model)
        stcl = 2.0 * model.session_thermal_characteristic([soc.core_names[0]])
        result = scheduler.schedule(tl_c=120.0, stcl=stcl)
        if result.n_discarded == 0 and result.forced_singletons == 0:
            # Weights never moved: the committed sessions must satisfy
            # the STC limit exactly as built.
            for session in result.schedule:
                assert model.session_thermal_characteristic(
                    list(session.cores)
                ) <= stcl + 1e-9


class TestAlpha15Integration:
    """Full-platform runs on the calibrated SoC (the paper's system)."""

    def test_paper_corner_tight(self, alpha_scheduler):
        result = alpha_scheduler.schedule(tl_c=165.0, stcl=20.0)
        assert result.max_temperature_c < 165.0
        assert result.effort_s == pytest.approx(result.length_s)
        assert result.forced_singletons == 0

    def test_paper_corner_loose(self, alpha_scheduler):
        result = alpha_scheduler.schedule(tl_c=185.0, stcl=100.0)
        assert result.max_temperature_c < 185.0
        # Loose constraints: concurrency high, schedule short.
        assert result.n_sessions <= 4

    def test_independent_audit_confirms_safety(self, alpha_scheduler, alpha_soc):
        from repro.core.safety import audit_schedule

        result = alpha_scheduler.schedule(tl_c=155.0, stcl=60.0)
        audit = audit_schedule(result.schedule, limit_c=155.0)
        assert audit.is_safe
        assert audit.max_temperature_c == pytest.approx(
            result.max_temperature_c
        )

    def test_describe_runs(self, alpha_scheduler):
        result = alpha_scheduler.schedule(tl_c=175.0, stcl=40.0)
        text = result.describe()
        assert "TL=175" in text and "STCL=40" in text

"""Unit tests for schedule auditing."""

from __future__ import annotations

import math

import pytest

from repro.core.baselines import (
    PowerConstrainedConfig,
    PowerConstrainedScheduler,
    maximally_concurrent_schedule,
    sequential_schedule,
)
from repro.core.safety import annotate_schedule, audit_schedule
from repro.floorplan.generator import grid_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.soc.system import SocUnderTest
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture(scope="module")
def soc() -> SocUnderTest:
    plan = grid_floorplan(2, 2)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 40.0)
    )


@pytest.fixture(scope="module")
def simulator(soc) -> ThermalSimulator:
    return ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)


class TestAuditSchedule:
    def test_sequential_is_safer_than_concurrent(self, soc, simulator):
        seq = audit_schedule(sequential_schedule(soc), 200.0, simulator)
        conc = audit_schedule(maximally_concurrent_schedule(soc), 200.0, simulator)
        assert seq.max_temperature_c < conc.max_temperature_c

    def test_violations_detected(self, soc, simulator):
        concurrent = maximally_concurrent_schedule(soc)
        peak = audit_schedule(concurrent, 1000.0, simulator).max_temperature_c
        audit = audit_schedule(concurrent, peak - 1.0, simulator)
        assert not audit.is_safe
        assert audit.hot_spot_rate == pytest.approx(1.0)
        assert audit.margin_c < 0.0
        assert len(audit.violating_sessions) == 1

    def test_safe_schedule_reports_safe(self, soc, simulator):
        audit = audit_schedule(sequential_schedule(soc), 500.0, simulator)
        assert audit.is_safe
        assert audit.hot_spot_rate == 0.0
        assert audit.margin_c > 0.0

    def test_passive_blocks_cooler_than_actives(self, soc, simulator):
        """Supports the paper's modification M3: during a session the
        passive blocks sit near ambient relative to the actives."""
        audit = audit_schedule(sequential_schedule(soc), 500.0, simulator)
        for session_audit in audit.sessions:
            assert (
                session_audit.max_passive_temperature_c
                < session_audit.max_temperature_c
            )

    def test_single_session_schedule_has_nan_passive(self, soc, simulator):
        audit = audit_schedule(
            maximally_concurrent_schedule(soc), 500.0, simulator
        )
        assert math.isnan(audit.sessions[0].max_passive_temperature_c)

    def test_describe(self, soc, simulator):
        audit = audit_schedule(sequential_schedule(soc), 500.0, simulator)
        text = audit.describe()
        assert "SAFE" in text

    def test_builds_simulator_when_missing(self, soc):
        audit = audit_schedule(sequential_schedule(soc), 500.0)
        assert audit.is_safe


class TestAnnotate:
    def test_annotation_fills_temperatures(self, soc, simulator):
        schedule = sequential_schedule(soc)
        assert math.isnan(schedule.max_temperature_c)
        annotated = annotate_schedule(schedule, simulator)
        assert not math.isnan(annotated.max_temperature_c)
        assert len(annotated) == len(schedule)

    def test_annotation_matches_audit(self, soc, simulator):
        schedule = maximally_concurrent_schedule(soc)
        annotated = annotate_schedule(schedule, simulator)
        audit = audit_schedule(schedule, 500.0, simulator)
        assert annotated.max_temperature_c == pytest.approx(
            audit.max_temperature_c
        )


class TestPowerConstrainedBlindSpot:
    """The Figure 1 claim as an executable statement on the real SoC."""

    def test_power_safe_schedule_can_be_thermally_unsafe(self, hypo_soc):
        scheduler = PowerConstrainedScheduler(
            hypo_soc, PowerConstrainedConfig(power_limit_w=45.0, sort_descending=False)
        )
        schedule = scheduler.schedule()
        # Every session satisfies the cap...
        for session in schedule:
            assert hypo_soc.total_test_power_w(session.cores) <= 45.0
        # ...but the audit against a limit between the cool and hot
        # session peaks flags violations.
        audit_loose = audit_schedule(schedule, 1000.0)
        hot = audit_loose.max_temperature_c
        cool = min(a.max_temperature_c for a in audit_loose.sessions)
        middle = (hot + cool) / 2.0
        audit_tight = audit_schedule(schedule, middle)
        assert not audit_tight.is_safe

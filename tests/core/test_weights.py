"""Unit tests for the adaptive weight store."""

from __future__ import annotations

import pytest

from repro.core.weights import PAPER_WEIGHT_FACTOR, WeightStore
from repro.errors import SchedulingError


class TestConstruction:
    def test_initial_weights_are_one(self):
        store = WeightStore(["a", "b"])
        assert store["a"] == 1.0
        assert store["b"] == 1.0
        assert store.max_weight() == 1.0

    def test_paper_factor_default(self):
        assert WeightStore(["a"]).factor == PAPER_WEIGHT_FACTOR == 1.1

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            WeightStore([])

    def test_shrinking_factor_rejected(self):
        with pytest.raises(SchedulingError):
            WeightStore(["a"], factor=0.9)

    def test_unknown_core_rejected(self):
        store = WeightStore(["a"])
        with pytest.raises(SchedulingError):
            store["b"]
        assert "a" in store
        assert "b" not in store


class TestPenalisation:
    def test_single_penalty_is_paper_rule(self):
        store = WeightStore(["a", "b"])
        new = store.penalise("a", iteration=1)
        assert new == pytest.approx(1.1)
        assert store["a"] == pytest.approx(1.1)
        assert store["b"] == 1.0  # untouched

    def test_penalties_compound(self):
        store = WeightStore(["a"])
        for i in range(5):
            store.penalise("a", iteration=i)
        assert store["a"] == pytest.approx(1.1**5)

    def test_penalise_all(self):
        store = WeightStore(["a", "b", "c"])
        store.penalise_all(["a", "c"], iteration=3)
        assert store["a"] == pytest.approx(1.1)
        assert store["b"] == 1.0
        assert store["c"] == pytest.approx(1.1)

    def test_factor_one_disables_feedback(self):
        store = WeightStore(["a"], factor=1.0)
        store.penalise("a", iteration=1)
        assert store["a"] == 1.0
        assert store.total_penalisations == 1  # still audited


class TestAudit:
    def test_events_recorded_in_order(self):
        store = WeightStore(["a", "b"])
        store.penalise("b", iteration=1)
        store.penalise("a", iteration=2)
        store.penalise("b", iteration=2)
        events = store.events
        assert [(e.core, e.iteration) for e in events] == [
            ("b", 1),
            ("a", 2),
            ("b", 2),
        ]
        assert events[2].new_weight == pytest.approx(1.21)

    def test_snapshot_is_independent(self):
        store = WeightStore(["a"])
        snap = store.as_mapping()
        store.penalise("a", iteration=1)
        assert snap["a"] == 1.0

"""Unit tests for schedule / result JSON serialisation."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.core.scheduler import ThermalAwareScheduler
from repro.core.serialize import (
    SCHEMA_VERSION,
    dump_jsonl,
    load_jsonl,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.core.session import TestSchedule, TestSession
from repro.errors import SchedulingError
from repro.floorplan.generator import grid_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.soc.system import SocUnderTest


@pytest.fixture(scope="module")
def soc():
    plan = grid_floorplan(2, 2)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 30.0)
    )


@pytest.fixture(scope="module")
def result(soc):
    return ThermalAwareScheduler(soc).schedule(tl_c=130.0, stcl=50.0)


class TestScheduleRoundTrip:
    def test_round_trip_preserves_structure(self, soc, result):
        data = schedule_to_dict(result.schedule)
        loaded = schedule_from_dict(data, soc)
        assert len(loaded) == len(result.schedule)
        for original, restored in zip(result.schedule, loaded):
            assert restored.cores == original.cores
            assert restored.duration_s == original.duration_s
            assert restored.max_temperature_c == pytest.approx(
                original.max_temperature_c
            )

    def test_unannotated_sessions_survive(self, soc):
        schedule = TestSchedule(
            [
                TestSession(cores=("C0_0", "C0_1"), duration_s=1.0),
                TestSession(cores=("C1_0", "C1_1"), duration_s=1.0),
            ],
            soc,
        )
        loaded = schedule_from_dict(schedule_to_dict(schedule), soc)
        assert loaded.sessions[0].core_temperatures_c == {}

    def test_wrong_schema_version_rejected(self, soc, result):
        data = schedule_to_dict(result.schedule)
        data["schema_version"] = 999
        with pytest.raises(SchedulingError, match="schema version"):
            schedule_from_dict(data, soc)

    def test_loaded_schedule_revalidated(self, soc, result):
        data = schedule_to_dict(result.schedule)
        data["sessions"][0]["cores"].append("ghost")
        with pytest.raises(SchedulingError):
            schedule_from_dict(data, soc)


class TestResultRoundTrip:
    def test_metrics_preserved(self, soc, result):
        restored = result_from_dict(result_to_dict(result), soc)
        assert restored.tl_c == result.tl_c
        assert restored.stcl == result.stcl
        assert restored.length_s == result.length_s
        assert restored.effort_s == result.effort_s
        assert restored.max_temperature_c == pytest.approx(
            result.max_temperature_c
        )
        assert restored.weights == pytest.approx(dict(result.weights))
        assert restored.bcmt_c == pytest.approx(dict(result.bcmt_c))

    def test_discards_preserved(self, soc, result):
        restored = result_from_dict(result_to_dict(result), soc)
        assert len(restored.discarded) == result.n_discarded
        for original, loaded in zip(result.discarded, restored.discarded):
            assert loaded.cores == original.cores
            assert loaded.violators == original.violators

    def test_json_serialisable(self, result):
        text = json.dumps(result_to_dict(result))
        assert "schema_version" in text

    def test_file_round_trip(self, soc, result, tmp_path):
        path = tmp_path / "runs" / "result.json"
        save_result(result, path)
        restored = load_result(path, soc)
        assert restored.length_s == result.length_s

    def test_load_missing_file(self, soc, tmp_path):
        with pytest.raises(SchedulingError, match="cannot load"):
            load_result(tmp_path / "nope.json", soc)

    def test_load_corrupt_json(self, soc, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SchedulingError, match="cannot load"):
            load_result(path, soc)

    def test_wrong_version_rejected(self, soc, result):
        data = result_to_dict(result)
        data["schema_version"] = 0
        with pytest.raises(SchedulingError, match="schema version"):
            result_from_dict(data, soc)

    def test_schema_version_constant(self):
        from repro.core.serialize import SUPPORTED_SCHEMA_VERSIONS

        assert SCHEMA_VERSION == 2  # v2: solver fields + nullable stcl
        assert SCHEMA_VERSION in SUPPORTED_SCHEMA_VERSIONS
        assert 1 in SUPPORTED_SCHEMA_VERSIONS  # old archives stay readable

    def test_version_one_records_still_load(self, soc, result):
        data = result_to_dict(result)
        data["schema_version"] = 1
        data["schedule"]["schema_version"] = 1
        restored = result_from_dict(data, soc)
        assert restored.length_s == result.length_s

    def test_steady_solves_preserved(self, soc, result):
        assert result.steady_solves > 0
        restored = result_from_dict(result_to_dict(result), soc)
        assert restored.steady_solves == result.steady_solves

    def test_steady_solves_defaults_for_old_archives(self, soc, result):
        data = result_to_dict(result)
        del data["steady_solves"]
        assert result_from_dict(data, soc).steady_solves == 0


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "records.jsonl"
        records = [{"i": 0}, {"i": 1, "nested": {"x": [1.5, None]}}]
        assert dump_jsonl(records, path) == 2
        assert load_jsonl(path) == records

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"i": 0}\n\n{"i": 1}\n')
        assert load_jsonl(path) == [{"i": 0}, {"i": 1}]

    def test_missing_file(self, tmp_path):
        with pytest.raises(SchedulingError, match="cannot load"):
            load_jsonl(tmp_path / "nope.jsonl")

    def test_corrupt_line_located(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(SchedulingError, match=":2"):
            load_jsonl(path)


class TestTornTail:
    """A half-written final record — the mark a killed appender leaves."""

    def test_torn_tail_raises_by_default(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"i": 0}\n{"i": 1, "nest')
        with pytest.raises(SchedulingError, match=":2"):
            load_jsonl(path)

    def test_torn_tail_skipped_with_warning_when_tolerated(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"i": 0}\n{"i": 1}\n{"i": 2, "nest')
        with pytest.warns(UserWarning, match="torn final JSONL record"):
            records = load_jsonl(path, tolerate_torn_tail=True)
        assert records == [{"i": 0}, {"i": 1}]

    def test_mid_file_corruption_still_raises_when_tolerated(self, tmp_path):
        # Only the tail gets grace: a bad record with valid records
        # after it is real corruption, not an append in flight.
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"i": 0}\nnot json\n{"i": 2}\n')
        with pytest.raises(SchedulingError, match=":2"):
            load_jsonl(path, tolerate_torn_tail=True)

    def test_clean_file_loads_without_warning(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        path.write_text('{"i": 0}\n{"i": 1}\n')
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_jsonl(path, tolerate_torn_tail=True) == [
                {"i": 0},
                {"i": 1},
            ]

"""Unit tests for the test-session thermal model (paper Section 2).

The tests verify the model's algebra against hand-computed parallel
combinations on the worked-example layout (Figures 2-4), the semantics
of the three modifications M1-M3 and their ablations, and the STC
definition with weights.
"""

from __future__ import annotations

import math

import pytest

from repro.core.session_model import (
    PAPER_SESSION_MODEL,
    SessionModelConfig,
    SessionThermalModel,
)
from repro.errors import SchedulingError
from repro.floorplan.generator import grid_floorplan
from repro.floorplan.library import WORKED_EXAMPLE_SESSION
from repro.power.generator import uniform_test_power_profile
from repro.soc.system import SocUnderTest
from repro.units import parallel


@pytest.fixture(scope="module")
def example_model(example_soc) -> SessionThermalModel:
    return SessionThermalModel(example_soc, PAPER_SESSION_MODEL)


@pytest.fixture(scope="module")
def grid_soc_3x3() -> SocUnderTest:
    plan = grid_floorplan(3, 3)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 10.0)
    )


class TestEquivalentResistanceAlgebra:
    def test_singleton_is_parallel_of_all_paths(self, example_model):
        """Alone in a session, every neighbour is passive (grounded) and
        every die-edge path is available: Figure 4's algebra."""
        core = "B2"
        neighbours = example_model.neighbour_resistances(core)
        edge = example_model.edge_resistance(core)
        expected = parallel(*neighbours.values(), edge)
        assert example_model.equivalent_resistance(core, [core]) == pytest.approx(
            expected
        )

    def test_worked_example_b2(self, example_model):
        """B2 in session {B2,B4,B5}: no active neighbours, so its Rth is
        unchanged from the singleton case (paper Figure 4: R_1,2 ||
        R_2,N || R_2,3 — all passive-or-edge paths)."""
        active = list(WORKED_EXAMPLE_SESSION)
        assert example_model.equivalent_resistance(
            "B2", active
        ) == pytest.approx(example_model.equivalent_resistance("B2", ["B2"]))

    def test_worked_example_b4_loses_b5_path(self, example_model):
        """B4 in session {B2,B4,B5}: the B4-B5 resistance is dropped
        (modification M2), so Rth must exceed the singleton value."""
        active = list(WORKED_EXAMPLE_SESSION)
        in_session = example_model.equivalent_resistance("B4", active)
        alone = example_model.equivalent_resistance("B4", ["B4"])
        assert in_session > alone
        # And equals the parallel combination without the B5 branch.
        neighbours = example_model.neighbour_resistances("B4")
        paths = [r for n, r in neighbours.items() if n != "B5"]
        paths.append(example_model.edge_resistance("B4"))
        assert in_session == pytest.approx(parallel(*paths))

    def test_more_active_neighbours_monotonically_raise_rth(
        self, grid_soc_3x3
    ):
        """Each co-activated neighbour removes an escape path."""
        model = SessionThermalModel(grid_soc_3x3, PAPER_SESSION_MODEL)
        centre = "C1_1"
        neighbours = ["C0_1", "C1_0", "C1_2", "C2_1"]
        previous = model.equivalent_resistance(centre, [centre])
        for k in range(1, len(neighbours) + 1):
            active = [centre] + neighbours[:k]
            current = model.equivalent_resistance(centre, active)
            assert current > previous
            previous = current

    def test_landlocked_core_with_all_neighbours_active_is_infinite(
        self, grid_soc_3x3
    ):
        """The centre of a 3x3 grid has no die edge; with all four
        neighbours active the lateral-only model leaves no escape path."""
        model = SessionThermalModel(grid_soc_3x3, PAPER_SESSION_MODEL)
        active = ["C1_1", "C0_1", "C1_0", "C1_2", "C2_1"]
        assert math.isinf(model.equivalent_resistance("C1_1", active))
        assert math.isinf(model.session_thermal_characteristic(active))

    def test_core_must_be_in_active_set(self, example_model):
        with pytest.raises(SchedulingError):
            example_model.equivalent_resistance("B1", ["B2"])

    def test_unknown_core_rejected(self, example_model):
        with pytest.raises(SchedulingError):
            example_model.neighbour_resistances("zz")
        with pytest.raises(SchedulingError):
            example_model.edge_resistance("zz")
        with pytest.raises(SchedulingError):
            example_model.vertical_resistance("zz")


class TestModificationAblations:
    def test_no_m2_keeps_active_active_paths(self, example_soc):
        """Ablation: keeping active-active resistances can only lower
        Rth (optimistic model)."""
        paper = SessionThermalModel(example_soc, PAPER_SESSION_MODEL)
        no_m2 = SessionThermalModel(
            example_soc, SessionModelConfig(drop_active_active=False)
        )
        active = list(WORKED_EXAMPLE_SESSION)
        assert no_m2.equivalent_resistance("B4", active) < paper.equivalent_resistance(
            "B4", active
        )

    def test_no_m3_removes_passive_paths(self, example_soc):
        """Ablation: un-grounding passive neighbours removes paths and
        raises Rth (pessimistic model)."""
        paper = SessionThermalModel(example_soc, PAPER_SESSION_MODEL)
        no_m3 = SessionThermalModel(
            example_soc, SessionModelConfig(ground_passive=False)
        )
        active = list(WORKED_EXAMPLE_SESSION)
        assert no_m3.equivalent_resistance("B4", active) > paper.equivalent_resistance(
            "B4", active
        )

    def test_include_vertical_bounds_rth(self, grid_soc_3x3):
        """With the vertical path included, Rth stays finite even for a
        fully surrounded landlocked core."""
        model = SessionThermalModel(
            grid_soc_3x3, SessionModelConfig(include_vertical=True)
        )
        active = ["C1_1", "C0_1", "C1_0", "C1_2", "C2_1"]
        rth = model.equivalent_resistance("C1_1", active)
        assert math.isfinite(rth)
        assert rth == pytest.approx(model.vertical_resistance("C1_1"))


class TestThermalCharacteristic:
    def test_tc_is_power_times_rth(self, example_model, example_soc):
        active = list(WORKED_EXAMPLE_SESSION)
        for core in active:
            tc = example_model.thermal_characteristic(core, active)
            expected = example_soc[
                core
            ].test_power_w * example_model.equivalent_resistance(core, active)
            assert tc == pytest.approx(expected)

    def test_stc_is_max_of_contributions(self, example_model):
        active = list(WORKED_EXAMPLE_SESSION)
        contributions = example_model.core_contributions(active)
        stc = example_model.session_thermal_characteristic(active)
        assert stc == pytest.approx(max(contributions.values()))

    def test_empty_session_has_zero_stc(self, example_model):
        assert example_model.session_thermal_characteristic([]) == 0.0

    def test_duplicate_cores_rejected(self, example_model):
        with pytest.raises(SchedulingError, match="duplicate"):
            example_model.session_thermal_characteristic(["B2", "B2"])

    def test_weights_scale_contributions(self, example_model):
        active = list(WORKED_EXAMPLE_SESSION)
        base = example_model.session_thermal_characteristic(active)
        # Boost the maximal contributor's weight by 2x.
        contributions = example_model.core_contributions(active)
        worst = max(contributions, key=contributions.get)
        boosted = example_model.session_thermal_characteristic(
            active, weights={worst: 2.0}
        )
        assert boosted == pytest.approx(2.0 * base)

    def test_stc_scale_divides(self, example_soc):
        base = SessionThermalModel(
            example_soc, SessionModelConfig(stc_scale=1.0)
        ).session_thermal_characteristic(["B2"])
        scaled = SessionThermalModel(
            example_soc, SessionModelConfig(stc_scale=10.0)
        ).session_thermal_characteristic(["B2"])
        assert scaled == pytest.approx(base / 10.0)

    def test_bad_stc_scale_rejected(self):
        with pytest.raises(SchedulingError):
            SessionModelConfig(stc_scale=0.0)


class TestAgainstFullSimulation:
    def test_stc_ranking_predicts_simulated_heat(self, hypo_soc):
        """The model's purpose: rank sessions by thermal risk without
        simulating.  The Figure 1 hot session must out-rank the cool one
        in STC, matching the full simulation's verdict.

        The hypothetical7 floorplan is not fully tiled (isolated cores
        with no lateral neighbours at all), so the vertical path must be
        part of the model — lateral-only Rth would be infinite for both
        sessions and rank nothing.
        """
        from repro.thermal.simulator import ThermalSimulator

        model = SessionThermalModel(
            hypo_soc, SessionModelConfig(include_vertical=True)
        )
        sim = ThermalSimulator(
            hypo_soc.floorplan, hypo_soc.package, hypo_soc.adjacency
        )
        hot, cool = ["C2", "C3", "C4"], ["C5", "C6", "C7"]
        stc_hot = model.session_thermal_characteristic(hot)
        stc_cool = model.session_thermal_characteristic(cool)
        sim_hot = sim.steady_state(hypo_soc.session_power_map(hot))
        sim_cool = sim.steady_state(hypo_soc.session_power_map(cool))
        assert stc_hot > stc_cool
        assert sim_hot.max_temperature_c() > sim_cool.max_temperature_c()

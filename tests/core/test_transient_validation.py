"""Tests for the transient-validation scheduler mode."""

from __future__ import annotations

import pytest

from repro.core.scheduler import SchedulerConfig, ThermalAwareScheduler
from repro.errors import SchedulingError
from repro.experiments.transient_scheduling import (
    report_transient_scheduling,
    run_transient_scheduling,
)
from repro.floorplan.generator import grid_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.soc.system import SocUnderTest
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture(scope="module")
def soc():
    plan = grid_floorplan(2, 2)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 40.0)
    )


@pytest.fixture(scope="module")
def simulator(soc):
    return ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)


class TestTransientMode:
    def test_bad_dt_rejected(self):
        with pytest.raises(SchedulingError):
            SchedulerConfig(transient_dt_s=0.0)

    def test_transient_packs_at_least_as_hard(self, soc, simulator):
        """M1 is conservative, so transient validation never yields a
        longer schedule than steady validation at the same limits."""
        steady = ThermalAwareScheduler(
            soc, simulator=simulator,
            config=SchedulerConfig(validation="steady"),
        ).schedule(tl_c=120.0, stcl=1e6)
        transient = ThermalAwareScheduler(
            soc, simulator=simulator,
            config=SchedulerConfig(validation="transient"),
        ).schedule(tl_c=120.0, stcl=1e6)
        assert transient.n_sessions <= steady.n_sessions

    def test_transient_annotations_below_tl(self, soc, simulator):
        result = ThermalAwareScheduler(
            soc, simulator=simulator,
            config=SchedulerConfig(validation="transient"),
        ).schedule(tl_c=120.0, stcl=1e6)
        for session in result.schedule:
            assert session.max_temperature_c < 120.0

    def test_transient_peaks_verified_independently(self, soc, simulator):
        """The annotated temperatures equal fresh transient peaks."""
        result = ThermalAwareScheduler(
            soc, simulator=simulator,
            config=SchedulerConfig(validation="transient"),
        ).schedule(tl_c=120.0, stcl=1e6)
        for session in result.schedule:
            peaks = simulator.block_peak_transient_c(
                soc.session_power_map(session.cores),
                session.duration_s,
                dt=1e-2,
            )
            for core in session.cores:
                assert session.core_temperatures_c[core] == pytest.approx(
                    peaks[core]
                )

    def test_tl_between_transient_and_steady_separates_modes(
        self, soc, simulator
    ):
        """Pick TL between the all-active transient peak and steady
        peak: transient mode fits everything in one session, steady
        mode must split."""
        power = soc.test_power_map()
        steady_peak = simulator.steady_state(power).max_temperature_c()
        transient_peak = max(
            simulator.block_peak_transient_c(power, 1.0, dt=1e-2).values()
        )
        assert transient_peak < steady_peak
        tl_c = (transient_peak + steady_peak) / 2.0

        transient = ThermalAwareScheduler(
            soc, simulator=simulator,
            config=SchedulerConfig(validation="transient"),
        ).schedule(tl_c=tl_c, stcl=1e6)
        steady = ThermalAwareScheduler(
            soc, simulator=simulator,
            config=SchedulerConfig(validation="steady"),
        ).schedule(tl_c=tl_c, stcl=1e6)
        assert transient.n_sessions == 1
        assert steady.n_sessions > 1


class TestTransientStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return run_transient_scheduling(probe_grid=((165.0, 60.0),))

    def test_both_modes_present(self, points):
        assert {p.validation for p in points} == {"steady", "transient"}

    def test_transient_shorter_or_equal(self, points):
        steady = next(p for p in points if p.validation == "steady")
        transient = next(p for p in points if p.validation == "transient")
        assert transient.length_s <= steady.length_s

    def test_peak_during_test_below_tl_in_both(self, points):
        for p in points:
            assert p.transient_peak_c < p.tl_c

    def test_steady_mode_equilibrium_safe_transient_not_necessarily(
        self, points
    ):
        steady = next(p for p in points if p.validation == "steady")
        assert steady.steady_peak_c < steady.tl_c

    def test_report_renders(self, points):
        text = report_transient_scheduling(points)
        assert "equilibrium" in text

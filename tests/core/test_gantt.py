"""Unit tests for the Gantt renderer."""

from __future__ import annotations

import pytest

from repro.core.gantt import ACTIVE, IDLE, render_gantt, render_utilisation
from repro.core.session import TestSchedule, TestSession
from repro.errors import SchedulingError
from repro.floorplan.generator import grid_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.soc.system import SocUnderTest


@pytest.fixture(scope="module")
def soc():
    plan = grid_floorplan(1, 3)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 10.0)
    )


@pytest.fixture(scope="module")
def schedule(soc):
    return TestSchedule(
        [
            TestSession(cores=("C0_0", "C0_1"), duration_s=1.0),
            TestSession(cores=("C0_2",), duration_s=1.0),
        ],
        soc,
    )


class TestRenderGantt:
    def test_rows_for_every_core(self, schedule, soc):
        text = render_gantt(schedule)
        for name in soc.core_names:
            assert name in text

    def test_active_and_idle_glyphs(self, schedule):
        text = render_gantt(schedule, seconds_per_column=0.5)
        lines = {line.split()[0]: line for line in text.splitlines() if "|" in line}
        # C0_0 active in session 1 (first 2 cols), idle in session 2.
        row = lines["C0_0"].split("|")[1]
        assert row == ACTIVE * 2 + IDLE * 2
        row2 = lines["C0_2"].split("|")[1]
        assert row2 == IDLE * 2 + ACTIVE * 2

    def test_session_summary_lines(self, schedule):
        text = render_gantt(schedule)
        assert "session 1: [C0_0, C0_1]" in text
        assert "max concurrency: 2" in text

    def test_temperature_and_margin_annotations(self, soc):
        annotated = TestSchedule(
            [
                TestSession(cores=("C0_0", "C0_1"), duration_s=1.0)
                .with_temperatures({"C0_0": 100.0, "C0_1": 110.0}),
                TestSession(cores=("C0_2",), duration_s=1.0)
                .with_temperatures({"C0_2": 90.0}),
            ],
            soc,
        )
        text = render_gantt(annotated, limit_c=120.0)
        assert "max 110.00 degC" in text
        assert "margin +10.00" in text

    def test_bad_resolution_rejected(self, schedule):
        with pytest.raises(SchedulingError):
            render_gantt(schedule, seconds_per_column=0.0)


class TestUtilisation:
    def test_sequentialish_schedule(self, schedule):
        # 3 core-seconds of testing over 3 cores x 2 s = 0.5.
        text = render_utilisation(schedule)
        assert "0.50" in text

    def test_fully_concurrent_schedule(self, soc):
        one = TestSchedule(
            [TestSession(cores=("C0_0", "C0_1", "C0_2"), duration_s=1.0)], soc
        )
        assert "1.00" in render_utilisation(one)

"""Unit tests for the TestSession / TestSchedule data model."""

from __future__ import annotations

import math

import pytest

from repro.core.session import TestSchedule, TestSession
from repro.errors import SchedulingError
from repro.floorplan.generator import grid_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.soc.system import SocUnderTest


@pytest.fixture(scope="module")
def quad_soc() -> SocUnderTest:
    plan = grid_floorplan(2, 2)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 10.0)
    )


class TestTestSession:
    def test_basic(self):
        session = TestSession(cores=("a", "b"), duration_s=1.0)
        assert len(session) == 2
        assert "a" in session
        assert session.core_set() == frozenset({"a", "b"})
        assert math.isnan(session.max_temperature_c)

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            TestSession(cores=(), duration_s=1.0)

    def test_duplicates_rejected(self):
        with pytest.raises(SchedulingError, match="duplicate"):
            TestSession(cores=("a", "a"), duration_s=1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SchedulingError):
            TestSession(cores=("a",), duration_s=0.0)

    def test_with_temperatures(self):
        session = TestSession(cores=("a", "b"), duration_s=1.0)
        annotated = session.with_temperatures({"a": 100.0, "b": 120.0, "c": 1.0})
        assert annotated.max_temperature_c == pytest.approx(120.0)
        assert annotated.core_temperatures_c == {"a": 100.0, "b": 120.0}

    def test_with_temperatures_missing_core_rejected(self):
        session = TestSession(cores=("a", "b"), duration_s=1.0)
        with pytest.raises(SchedulingError, match="missing"):
            session.with_temperatures({"a": 100.0})

    def test_describe(self):
        session = TestSession(cores=("a",), duration_s=2.0)
        assert "unsimulated" in session.describe()
        annotated = session.with_temperatures({"a": 99.0})
        assert "99.00" in annotated.describe()


class TestTestSchedule:
    def test_valid_partition(self, quad_soc):
        schedule = TestSchedule(
            [
                TestSession(cores=("C0_0", "C0_1"), duration_s=1.0),
                TestSession(cores=("C1_0", "C1_1"), duration_s=1.0),
            ],
            quad_soc,
        )
        assert len(schedule) == 2
        assert schedule.length_s == pytest.approx(2.0)
        assert schedule.max_concurrency == 2

    def test_double_tested_core_rejected(self, quad_soc):
        with pytest.raises(SchedulingError, match="more than once"):
            TestSchedule(
                [
                    TestSession(cores=("C0_0", "C0_1"), duration_s=1.0),
                    TestSession(cores=("C0_0", "C1_0", "C1_1"), duration_s=1.0),
                ],
                quad_soc,
            )

    def test_missing_core_rejected(self, quad_soc):
        with pytest.raises(SchedulingError, match="never tested"):
            TestSchedule(
                [TestSession(cores=("C0_0",), duration_s=1.0)], quad_soc
            )

    def test_unknown_core_rejected(self, quad_soc):
        with pytest.raises(SchedulingError, match="unknown"):
            TestSchedule(
                [
                    TestSession(
                        cores=("C0_0", "C0_1", "C1_0", "C1_1", "ghost"),
                        duration_s=1.0,
                    )
                ],
                quad_soc,
            )

    def test_session_of(self, quad_soc):
        schedule = TestSchedule(
            [
                TestSession(cores=("C0_0", "C0_1"), duration_s=1.0),
                TestSession(cores=("C1_0", "C1_1"), duration_s=1.0),
            ],
            quad_soc,
        )
        assert "C1_0" in schedule.session_of("C1_0")
        with pytest.raises(SchedulingError):
            schedule.session_of("ghost")

    def test_max_temperature_nan_until_all_simulated(self, quad_soc):
        simulated = TestSession(
            cores=("C0_0", "C0_1"), duration_s=1.0
        ).with_temperatures({"C0_0": 80.0, "C0_1": 85.0})
        raw = TestSession(cores=("C1_0", "C1_1"), duration_s=1.0)
        schedule = TestSchedule([simulated, raw], quad_soc)
        assert math.isnan(schedule.max_temperature_c)

    def test_length_uses_durations(self, quad_soc):
        schedule = TestSchedule(
            [
                TestSession(cores=("C0_0", "C0_1"), duration_s=2.5),
                TestSession(cores=("C1_0", "C1_1"), duration_s=1.0),
            ],
            quad_soc,
        )
        assert schedule.length_s == pytest.approx(3.5)

    def test_describe(self, quad_soc):
        schedule = TestSchedule(
            [TestSession(cores=("C0_0", "C0_1", "C1_0", "C1_1"), duration_s=1.0)],
            quad_soc,
        )
        assert "1 sessions" in schedule.describe()

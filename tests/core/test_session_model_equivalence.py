"""Cross-check: the session model's algebra vs the matrix solver.

The session thermal model computes each active core's equivalent
resistance with closed-form parallel combination (paper Figure 4).
That same rewired network — one node per active core, every remaining
path a tie to thermal ground — can be built explicitly and solved with
the generic :class:`~repro.thermal.steady_state.SteadyStateSolver`.
The two code paths share no arithmetic, so agreement is a strong check
on both.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session_model import PAPER_SESSION_MODEL, SessionThermalModel
from repro.floorplan.generator import slicing_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.soc.system import SocUnderTest
from repro.thermal.rc_network import ThermalNetwork
from repro.thermal.steady_state import SteadyStateSolver


def star_network_rth(model: SessionThermalModel, core: str, active: list[str]) -> float:
    """Rth of *core* via an explicit network solve of the rewired model."""
    net = ThermalNetwork()
    net.add_node(core, capacitance=1.0)
    active_set = set(active)
    paths = 0
    for neighbour, resistance in model.neighbour_resistances(core).items():
        if neighbour in active_set:
            continue  # M2: dropped
        net.add_ground_resistance(core, resistance)  # M3: grounded
        paths += 1
    edge = model.edge_resistance(core)
    if math.isfinite(edge):
        net.add_ground_resistance(core, edge)
        paths += 1
    if paths == 0:
        return math.inf
    solver = SteadyStateSolver(net.compile())
    return solver.input_output_resistance(core)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
    session_bits=st.integers(min_value=1, max_value=2**12 - 1),
)
def test_parallel_algebra_matches_matrix_solve(n, seed, session_bits):
    """For random floorplans and random active sets, the closed-form
    Rth equals the explicit star-network solve for every active core."""
    plan = slicing_floorplan(n, seed=seed)
    soc = SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 10.0)
    )
    model = SessionThermalModel(soc, PAPER_SESSION_MODEL)

    names = list(plan.block_names)
    active = [name for i, name in enumerate(names) if session_bits >> i & 1]
    if not active:
        active = [names[0]]

    for core in active:
        closed_form = model.equivalent_resistance(core, active)
        explicit = star_network_rth(model, core, active)
        if math.isinf(closed_form):
            assert math.isinf(explicit)
        else:
            assert closed_form == pytest.approx(explicit, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_rth_antitone_in_active_set(n, seed):
    """Growing the active set can only remove escape paths, so every
    member's Rth is monotone non-decreasing as cores are added."""
    plan = slicing_floorplan(n, seed=seed)
    soc = SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 10.0)
    )
    model = SessionThermalModel(soc, PAPER_SESSION_MODEL)
    names = list(plan.block_names)
    focus = names[0]
    active = [focus]
    previous = model.equivalent_resistance(focus, active)
    for name in names[1:]:
        active.append(name)
        current = model.equivalent_resistance(focus, active)
        if math.isinf(previous):
            assert math.isinf(current)
        else:
            assert current >= previous - 1e-12
        previous = current

"""Property-based tests: Algorithm 1 on randomly generated SoCs.

These are the strongest correctness guarantees in the suite: for *any*
slicing floorplan, seeded power profile and (TL, STCL) drawn from wide
ranges, the scheduler must terminate with a valid, thermally safe
partition and coherent metrics — or fail with the specific exceptions
its contract names.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scheduler import SchedulerConfig, ThermalAwareScheduler
from repro.errors import CoreThermalViolationError, ScheduleInfeasibleError
from repro.floorplan.generator import slicing_floorplan
from repro.power.generator import PowerGeneratorConfig, generate_power_profile
from repro.soc.system import SocUnderTest


def build_random_soc(n_cores: int, seed: int, power_scale: float) -> SocUnderTest:
    plan = slicing_floorplan(n_cores, seed=seed)
    profile = generate_power_profile(plan, PowerGeneratorConfig(seed=seed))
    if power_scale != 1.0:
        profile = profile.scaled(power_scale)
    return SocUnderTest.from_profile(plan, profile)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_cores=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
    power_scale=st.floats(min_value=0.5, max_value=3.0),
    tl_c=st.floats(min_value=80.0, max_value=250.0),
    stcl=st.floats(min_value=5.0, max_value=5_000.0),
)
def test_scheduler_contract_on_random_socs(n_cores, seed, power_scale, tl_c, stcl):
    """Termination + partition + safety + metric coherence, or the
    documented exceptions."""
    soc = build_random_soc(n_cores, seed, power_scale)
    scheduler = ThermalAwareScheduler(
        soc, config=SchedulerConfig(max_discards=2_000)
    )
    try:
        result = scheduler.schedule(tl_c=tl_c, stcl=stcl)
    except CoreThermalViolationError as err:
        # Contract: only raised when that core really is too hot alone.
        assert err.max_temperature_c >= tl_c
        return
    except ScheduleInfeasibleError:
        # Permitted outcome under the discard cap; nothing to check.
        return

    # 1. The schedule is a partition of the cores.
    tested = sorted(c for s in result.schedule for c in s.cores)
    assert tested == sorted(soc.core_names)

    # 2. Every committed session is thermally safe per its annotations.
    for session in result.schedule:
        assert session.max_temperature_c < tl_c

    # 3. Metrics are coherent.
    assert result.length_s == pytest.approx(result.schedule.length_s)
    assert result.effort_s >= result.length_s - 1e-9
    discarded_time = sum(d.duration_s for d in result.discarded)
    assert result.effort_s == pytest.approx(result.length_s + discarded_time)

    # 4. Weights only ever grow from 1.0.
    assert all(w >= 1.0 for w in result.weights.values())

    # 5. Phase-A temperatures are below TL (or we would have raised).
    assert all(t < tl_c for t in result.bcmt_c.values())


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_cores=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_schedule_independently_revalidates(n_cores, seed):
    """Re-simulating committed sessions (fresh simulator) reproduces
    the annotated temperatures: the scheduler does not mis-report."""
    from repro.core.safety import audit_schedule

    soc = build_random_soc(n_cores, seed, power_scale=1.0)
    scheduler = ThermalAwareScheduler(soc)
    try:
        result = scheduler.schedule(tl_c=200.0, stcl=1_000.0)
    except (CoreThermalViolationError, ScheduleInfeasibleError):
        return
    audit = audit_schedule(result.schedule, limit_c=200.0)
    assert audit.is_safe
    assert audit.max_temperature_c == pytest.approx(result.max_temperature_c)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_cores=st.integers(min_value=3, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_tighter_stcl_never_shortens_schedule(n_cores, seed):
    """For a fixed SoC and TL, halving STCL cannot produce a *shorter*
    schedule when both runs are violation-free (pure STC packing is
    monotone in the limit)."""
    soc = build_random_soc(n_cores, seed, power_scale=0.5)  # cool: no violations
    scheduler = ThermalAwareScheduler(soc)
    loose = scheduler.schedule(tl_c=300.0, stcl=1_000.0)
    tight = scheduler.schedule(tl_c=300.0, stcl=50.0)
    if loose.n_discarded == 0 and tight.n_discarded == 0:
        assert tight.n_sessions >= loose.n_sessions

"""Unit tests for the baseline schedulers."""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    OptimalMinSessionsScheduler,
    PowerConstrainedConfig,
    PowerConstrainedScheduler,
    RandomScheduler,
    maximally_concurrent_schedule,
    sequential_schedule,
)
from repro.errors import SchedulingError
from repro.floorplan.generator import grid_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.power.profile import CorePower, PowerProfile
from repro.soc.system import SocUnderTest


def quad_soc(power_w: float = 10.0) -> SocUnderTest:
    plan = grid_floorplan(2, 2)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, power_w)
    )


def mixed_soc() -> SocUnderTest:
    """1x4 strip with distinct powers for bin-packing assertions."""
    plan = grid_floorplan(1, 4)
    profile = PowerProfile(
        [
            CorePower("C0_0", 1.0, 8.0),
            CorePower("C0_1", 1.0, 7.0),
            CorePower("C0_2", 1.0, 5.0),
            CorePower("C0_3", 1.0, 4.0),
        ]
    )
    return SocUnderTest.from_profile(plan, profile)


class TestSequential:
    def test_one_core_per_session(self):
        soc = quad_soc()
        schedule = sequential_schedule(soc)
        assert len(schedule) == len(soc)
        assert all(len(s) == 1 for s in schedule)
        assert schedule.length_s == pytest.approx(4.0)


class TestMaximallyConcurrent:
    def test_single_session(self):
        soc = quad_soc()
        schedule = maximally_concurrent_schedule(soc)
        assert len(schedule) == 1
        assert schedule.max_concurrency == 4
        assert schedule.length_s == pytest.approx(1.0)


class TestPowerConstrained:
    def test_cap_respected(self):
        soc = mixed_soc()
        schedule = PowerConstrainedScheduler(
            soc, PowerConstrainedConfig(power_limit_w=12.0)
        ).schedule()
        for session in schedule:
            assert soc.total_test_power_w(session.cores) <= 12.0

    def test_ffd_packs_tightly(self):
        # Powers 8,7,5,4 with cap 12: FFD -> {8,4},{7,5}: two sessions.
        soc = mixed_soc()
        schedule = PowerConstrainedScheduler(
            soc, PowerConstrainedConfig(power_limit_w=12.0)
        ).schedule()
        assert len(schedule) == 2

    def test_first_fit_input_order(self):
        # Input order 8,7,5,4 without sorting: 8+? (7 no, 5 no at 12? 8+5=13 no, 8+4=12 yes)
        soc = mixed_soc()
        schedule = PowerConstrainedScheduler(
            soc, PowerConstrainedConfig(power_limit_w=12.0, sort_descending=False)
        ).schedule()
        # First-fit: {8, 4}, {7, 5} -> also 2 bins but discovered in order.
        assert len(schedule) == 2
        assert "C0_0" in schedule.sessions[0]

    def test_partition_complete(self):
        soc = mixed_soc()
        schedule = PowerConstrainedScheduler(
            soc, PowerConstrainedConfig(power_limit_w=9.0)
        ).schedule()
        tested = sorted(c for s in schedule for c in s.cores)
        assert tested == sorted(soc.core_names)

    def test_oversized_core_rejected(self):
        soc = mixed_soc()
        with pytest.raises(SchedulingError, match="exceed"):
            PowerConstrainedScheduler(
                soc, PowerConstrainedConfig(power_limit_w=6.0)
            )

    def test_accepts_session_check(self):
        soc = mixed_soc()
        scheduler = PowerConstrainedScheduler(
            soc, PowerConstrainedConfig(power_limit_w=12.0)
        )
        assert scheduler.accepts_session(["C0_0", "C0_3"])  # 12 W
        assert not scheduler.accepts_session(["C0_0", "C0_1"])  # 15 W

    def test_bad_config_rejected(self):
        with pytest.raises(SchedulingError):
            PowerConstrainedConfig(power_limit_w=0.0)


class TestRandom:
    def test_no_cap_single_session(self):
        schedule = RandomScheduler(quad_soc(), seed=3).schedule()
        assert len(schedule) == 1

    def test_deterministic_per_seed(self):
        soc = mixed_soc()
        a = RandomScheduler(soc, seed=5, power_limit_w=12.0).schedule()
        b = RandomScheduler(soc, seed=5, power_limit_w=12.0).schedule()
        assert [s.cores for s in a] == [s.cores for s in b]

    def test_cap_respected(self):
        soc = mixed_soc()
        for seed in range(10):
            schedule = RandomScheduler(soc, seed=seed, power_limit_w=12.0).schedule()
            for session in schedule:
                assert soc.total_test_power_w(session.cores) <= 12.0

    def test_partition_complete(self):
        soc = mixed_soc()
        schedule = RandomScheduler(soc, seed=1, power_limit_w=9.0).schedule()
        tested = sorted(c for s in schedule for c in s.cores)
        assert tested == sorted(soc.core_names)

    def test_bad_cap_rejected(self):
        with pytest.raises(SchedulingError):
            RandomScheduler(quad_soc(), power_limit_w=-1.0)

    def test_oversized_core_detected(self):
        soc = mixed_soc()
        with pytest.raises(SchedulingError):
            RandomScheduler(soc, seed=0, power_limit_w=6.0).schedule()


class TestOptimal:
    def test_finds_single_session_when_everything_fits(self):
        soc = quad_soc(power_w=5.0)  # cool
        schedule = OptimalMinSessionsScheduler(soc).schedule(tl_c=150.0)
        assert len(schedule) == 1

    def test_sequential_when_nothing_coexists(self):
        soc = quad_soc(power_w=40.0)
        # Find a TL where singles pass but any pair violates.
        from repro.thermal.simulator import ThermalSimulator

        sim = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
        single = sim.steady_state({"C0_0": 40.0}).temperature_c("C0_0")
        pair_field = sim.steady_state({"C0_0": 40.0, "C0_1": 40.0})
        pair = max(
            pair_field.temperature_c("C0_0"), pair_field.temperature_c("C0_1")
        )
        tl = (single + pair) / 2.0
        if not single < tl < pair:
            pytest.skip("grid too symmetric to split singles from pairs")
        schedule = OptimalMinSessionsScheduler(soc).schedule(tl_c=tl)
        assert len(schedule) == len(soc)

    def test_optimal_never_worse_than_heuristic(self, alpha_soc):
        """On a small sub-problem, the exact scheduler lower-bounds any
        valid schedule produced by other means."""
        soc = quad_soc(power_w=45.0)
        from repro.core.scheduler import ThermalAwareScheduler

        heuristic = ThermalAwareScheduler(soc).schedule(tl_c=130.0, stcl=1e6)
        optimal = OptimalMinSessionsScheduler(soc).schedule(tl_c=130.0)
        assert len(optimal) <= heuristic.n_sessions

    def test_infeasible_core_rejected(self):
        soc = quad_soc(power_w=400.0)
        with pytest.raises(SchedulingError, match="alone"):
            OptimalMinSessionsScheduler(soc).schedule(tl_c=100.0)

    def test_size_cap(self):
        plan = grid_floorplan(4, 4)
        soc = SocUnderTest.from_profile(
            plan, uniform_test_power_profile(plan, 5.0)
        )
        with pytest.raises(SchedulingError, match="exponential"):
            OptimalMinSessionsScheduler(soc, max_cores=12)

    def test_memoisation_counts_subsets(self):
        soc = quad_soc(power_w=5.0)
        scheduler = OptimalMinSessionsScheduler(soc)
        scheduler.schedule(tl_c=150.0)
        assert scheduler.thermal_solve_count >= len(soc)

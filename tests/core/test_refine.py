"""Unit + integration tests for the budgeted schedule refiner."""

from __future__ import annotations

import pytest

from repro.core.baselines import sequential_schedule
from repro.core.refine import ScheduleRefiner
from repro.core.safety import audit_schedule
from repro.errors import SchedulingError
from repro.floorplan.generator import grid_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.soc.system import SocUnderTest
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture(scope="module")
def soc():
    plan = grid_floorplan(2, 2)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 25.0)
    )


@pytest.fixture(scope="module")
def simulator(soc):
    return ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)


class TestRefinerValidation:
    def test_tl_below_ambient_rejected(self, soc, simulator):
        with pytest.raises(SchedulingError):
            ScheduleRefiner(soc, simulator, tl_c=20.0)

    def test_negative_budget_rejected(self, soc, simulator):
        refiner = ScheduleRefiner(soc, simulator, tl_c=150.0)
        with pytest.raises(SchedulingError):
            refiner.refine(sequential_schedule(soc), effort_budget_s=-1.0)


class TestRefinement:
    def test_zero_budget_is_identity(self, soc, simulator):
        refiner = ScheduleRefiner(soc, simulator, tl_c=150.0)
        base = sequential_schedule(soc)
        result = refiner.refine(base, effort_budget_s=0.0)
        assert result.length_s == base.length_s
        assert result.effort_spent_s == 0.0
        assert result.steps == ()

    def test_generous_budget_fully_merges_when_cool(self, soc, simulator):
        """At a loose TL, everything fits one session and the refiner
        should find that."""
        refiner = ScheduleRefiner(soc, simulator, tl_c=300.0)
        result = refiner.refine(sequential_schedule(soc), effort_budget_s=50.0)
        assert len(result.schedule) == 1
        assert result.length_s == pytest.approx(1.0)

    def test_never_lengthens(self, soc, simulator):
        refiner = ScheduleRefiner(soc, simulator, tl_c=130.0)
        base = sequential_schedule(soc)
        result = refiner.refine(base, effort_budget_s=20.0)
        assert result.length_s <= base.length_s

    def test_result_is_thermally_safe(self, soc, simulator):
        tl_c = 130.0
        refiner = ScheduleRefiner(soc, simulator, tl_c=tl_c)
        result = refiner.refine(sequential_schedule(soc), effort_budget_s=30.0)
        audit = audit_schedule(result.schedule, tl_c, simulator)
        assert audit.is_safe

    def test_result_is_a_partition(self, soc, simulator):
        refiner = ScheduleRefiner(soc, simulator, tl_c=140.0)
        result = refiner.refine(sequential_schedule(soc), effort_budget_s=30.0)
        tested = sorted(c for s in result.schedule for c in s.cores)
        assert tested == sorted(soc.core_names)

    def test_effort_respects_budget_granularity(self, soc, simulator):
        """Spending stops once the budget is reached; each attempt costs
        its session duration, so total spend is bounded by budget plus
        one session."""
        refiner = ScheduleRefiner(soc, simulator, tl_c=300.0)
        result = refiner.refine(sequential_schedule(soc), effort_budget_s=2.0)
        assert result.effort_spent_s <= 2.0 + 1.0

    def test_steps_recorded_with_lengths(self, soc, simulator):
        refiner = ScheduleRefiner(soc, simulator, tl_c=300.0)
        result = refiner.refine(sequential_schedule(soc), effort_budget_s=50.0)
        assert result.steps
        lengths = [step.length_after_s for step in result.steps]
        assert lengths == sorted(lengths, reverse=True)
        assert result.steps[-1].length_after_s == result.length_s

    def test_budget_monotone_in_quality(self, soc, simulator):
        """More budget never yields a longer schedule."""
        refiner = ScheduleRefiner(soc, simulator, tl_c=300.0)
        base = sequential_schedule(soc)
        previous = base.length_s
        for budget in (0.0, 2.0, 5.0, 20.0):
            result = refiner.refine(base, effort_budget_s=budget)
            assert result.length_s <= previous
            previous = result.length_s


class TestRefinementOnAlpha15:
    def test_improves_tight_stcl_schedule(self, alpha_soc, alpha_scheduler):
        base = alpha_scheduler.schedule(tl_c=165.0, stcl=20.0)
        refiner = ScheduleRefiner(
            alpha_soc, alpha_scheduler.simulator, tl_c=165.0
        )
        refined = refiner.refine(base.schedule, effort_budget_s=20.0)
        assert refined.length_s <= base.length_s
        audit = audit_schedule(
            refined.schedule, 165.0, alpha_scheduler.simulator
        )
        assert audit.is_safe

"""Unit + property tests for the power generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PowerModelError
from repro.floorplan.generator import grid_floorplan, slicing_floorplan
from repro.power.generator import (
    PowerGeneratorConfig,
    generate_power_profile,
    uniform_test_power_profile,
)


class TestGeneratorConfig:
    def test_bad_multiplier_range_rejected(self):
        with pytest.raises(PowerModelError):
            PowerGeneratorConfig(multiplier_range=(8.0, 1.5))
        with pytest.raises(PowerModelError):
            PowerGeneratorConfig(multiplier_range=(-1.0, 2.0))

    def test_bad_density_range_rejected(self):
        with pytest.raises(PowerModelError):
            PowerGeneratorConfig(density_range=(0.0, 1.0))


class TestGeneration:
    def test_covers_every_block(self):
        plan = grid_floorplan(2, 3)
        profile = generate_power_profile(plan)
        profile.validate_against(plan)

    def test_deterministic_for_seed(self):
        plan = grid_floorplan(2, 2)
        a = generate_power_profile(plan, PowerGeneratorConfig(seed=7))
        b = generate_power_profile(plan, PowerGeneratorConfig(seed=7))
        for name in plan.block_names:
            assert a[name].test_w == b[name].test_w

    def test_seeds_differ(self):
        plan = grid_floorplan(2, 2)
        a = generate_power_profile(plan, PowerGeneratorConfig(seed=1))
        b = generate_power_profile(plan, PowerGeneratorConfig(seed=2))
        assert any(a[n].test_w != b[n].test_w for n in plan.block_names)

    def test_class_densities_used(self):
        plan = grid_floorplan(1, 2)
        profile = generate_power_profile(
            plan,
            block_classes={"C0_0": "cache", "C0_1": "register"},
        )
        # Equal areas: the register block must burn far more functional
        # power than the cache block.
        assert profile["C0_1"].functional_w > 5.0 * profile["C0_0"].functional_w

    def test_unknown_class_rejected(self):
        plan = grid_floorplan(1, 1)
        with pytest.raises(PowerModelError, match="unknown unit class"):
            generate_power_profile(plan, block_classes={"C0_0": "warp-core"})

    def test_custom_class_density_override(self):
        plan = grid_floorplan(1, 1)
        profile = generate_power_profile(
            plan,
            block_classes={"C0_0": "cache"},
            class_densities={"cache": 1e5},
        )
        expected = 1e5 * plan["C0_0"].area
        assert profile["C0_0"].functional_w == pytest.approx(expected)


class TestUniformProfile:
    def test_equal_test_powers(self):
        plan = grid_floorplan(2, 2)
        profile = uniform_test_power_profile(plan, 15.0)
        assert all(c.test_w == 15.0 for c in profile)

    def test_multiplier_applied(self):
        plan = grid_floorplan(1, 1)
        profile = uniform_test_power_profile(plan, 12.0, multiplier=3.0)
        assert profile["C0_0"].functional_w == pytest.approx(4.0)

    def test_rejects_bad_args(self):
        plan = grid_floorplan(1, 1)
        with pytest.raises(PowerModelError):
            uniform_test_power_profile(plan, 0.0)
        with pytest.raises(PowerModelError):
            uniform_test_power_profile(plan, 5.0, multiplier=-1.0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n=st.integers(min_value=1, max_value=16),
)
def test_property_multipliers_always_in_paper_range(seed, n):
    """Every generated profile satisfies the paper's 1.5x-8x premise."""
    plan = slicing_floorplan(n, seed=seed)
    profile = generate_power_profile(plan, PowerGeneratorConfig(seed=seed))
    for core in profile:
        assert 1.5 <= core.test_multiplier <= 8.0
        assert core.test_w > 0.0
        assert core.functional_w > 0.0

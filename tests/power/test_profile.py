"""Unit tests for power profiles."""

from __future__ import annotations

import pytest

from repro.errors import PowerModelError
from repro.floorplan.generator import grid_floorplan
from repro.power.profile import CorePower, PowerProfile


def profile_ab() -> PowerProfile:
    return PowerProfile(
        [CorePower("a", 2.0, 8.0), CorePower("b", 1.0, 3.0)], name="ab"
    )


class TestCorePower:
    def test_multiplier(self):
        assert CorePower("x", 2.0, 8.0).test_multiplier == pytest.approx(4.0)

    def test_rejects_nonpositive_powers(self):
        with pytest.raises(PowerModelError):
            CorePower("x", 0.0, 1.0)
        with pytest.raises(PowerModelError):
            CorePower("x", 1.0, -1.0)


class TestProfileBasics:
    def test_empty_rejected(self):
        with pytest.raises(PowerModelError):
            PowerProfile([])

    def test_duplicate_rejected(self):
        with pytest.raises(PowerModelError, match="duplicate"):
            PowerProfile([CorePower("a", 1.0, 2.0), CorePower("a", 1.0, 2.0)])

    def test_lookup(self):
        profile = profile_ab()
        assert profile["a"].test_w == 8.0
        assert "b" in profile
        assert len(profile) == 2
        with pytest.raises(PowerModelError):
            profile["zz"]

    def test_iteration_order(self):
        assert [c.name for c in profile_ab()] == ["a", "b"]


class TestDerivedMaps:
    def test_test_power_map_all(self):
        assert profile_ab().test_power_map() == {"a": 8.0, "b": 3.0}

    def test_test_power_map_subset(self):
        assert profile_ab().test_power_map(["b"]) == {"b": 3.0}

    def test_test_power_map_unknown_rejected(self):
        with pytest.raises(PowerModelError, match="unknown"):
            profile_ab().test_power_map(["zz"])

    def test_functional_map_and_total(self):
        profile = profile_ab()
        assert profile.functional_power_map() == {"a": 2.0, "b": 1.0}
        assert profile.total_test_power() == pytest.approx(11.0)
        assert profile.total_test_power(["a"]) == pytest.approx(8.0)


class TestFloorplanValidation:
    def test_matching_floorplan_accepted(self):
        plan = grid_floorplan(1, 2)
        profile = PowerProfile(
            [CorePower("C0_0", 1.0, 2.0), CorePower("C0_1", 1.0, 2.0)]
        )
        profile.validate_against(plan)  # should not raise
        densities = profile.test_power_densities(plan)
        assert set(densities) == {"C0_0", "C0_1"}

    def test_missing_block_rejected(self):
        plan = grid_floorplan(1, 2)
        profile = PowerProfile([CorePower("C0_0", 1.0, 2.0)])
        with pytest.raises(PowerModelError, match="missing"):
            profile.validate_against(plan)

    def test_extra_core_rejected(self):
        plan = grid_floorplan(1, 1)
        profile = PowerProfile(
            [CorePower("C0_0", 1.0, 2.0), CorePower("ghost", 1.0, 2.0)]
        )
        with pytest.raises(PowerModelError, match="extra"):
            profile.validate_against(plan)


class TestMultiplierRange:
    def test_in_range_passes(self):
        profile_ab().check_paper_multiplier_range()

    def test_out_of_range_rejected(self):
        profile = PowerProfile([CorePower("a", 1.0, 10.0)])  # 10x
        with pytest.raises(PowerModelError, match="multiplier"):
            profile.check_paper_multiplier_range()


class TestConstruction:
    def test_from_maps(self):
        profile = PowerProfile.from_maps(
            {"a": 1.0, "b": 2.0}, {"a": 4.0, "b": 6.0}
        )
        assert profile["b"].test_multiplier == pytest.approx(3.0)

    def test_from_maps_mismatch_rejected(self):
        with pytest.raises(PowerModelError):
            PowerProfile.from_maps({"a": 1.0}, {"b": 2.0})

    def test_scaled_preserves_multipliers(self):
        scaled = profile_ab().scaled(2.5)
        assert scaled["a"].test_w == pytest.approx(20.0)
        assert scaled["a"].test_multiplier == pytest.approx(4.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(PowerModelError):
            profile_ab().scaled(0.0)

"""Fixture snippets for the frame-schema rule."""

from __future__ import annotations

import textwrap

from repro.analysis import Project, get_rule
from repro.analysis.runner import run_rules

RULE = "frame-schema"


def findings_for(**sources: str):
    project = Project.from_sources(
        {
            f"repro/{name}.py": textwrap.dedent(source)
            for name, source in sources.items()
        }
    )
    return run_rules(project, [get_rule(RULE)])


# A miniature protocol + both dispatchers, fully in lockstep.
PROTOCOL = """
FRAME_TYPES = frozenset({"submit", "report", "ping", "pong"})
CLIENT_FRAME_TYPES = frozenset({"submit", "ping"})
SERVER_FRAME_TYPES = frozenset({"report", "pong"})

def submit_frame(frame_id, request):
    return {"type": "submit", "id": frame_id, "request": request}

def ping_frame(frame_id):
    return {"type": "ping", "id": frame_id}
"""

SERVER = """
class ScheduleServer:
    async def _handle_frame(self, frame):
        frame_type = frame["type"]
        if frame_type == "ping":
            return {"type": "pong"}
        elif frame_type == "submit":
            return {"type": "report"}
"""

ROUTER = """
class FleetRouter:
    async def _handle_frame(self, frame):
        frame_type = frame["type"]
        if frame_type == "ping":
            return {"type": "pong"}
        elif frame_type == "submit":
            return {"type": "report"}
"""


class TestRegistryAlgebra:
    def test_lockstep_protocol_is_clean(self):
        assert not findings_for(
            protocol=PROTOCOL, server=SERVER, router=ROUTER
        )

    def test_no_registry_at_all_is_skipped(self):
        # Fixture projects without a protocol have nothing to check.
        assert not findings_for(other="x = 1")

    def test_missing_side_set_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL.replace(
                'SERVER_FRAME_TYPES = frozenset({"report", "pong"})', ""
            ),
            server=SERVER,
        )
        assert any(
            "no SERVER_FRAME_TYPES" in f.message for f in found
        )

    def test_side_type_outside_frame_types_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL.replace(
                '{"submit", "ping"}', '{"submit", "ping", "gossip"}'
            ),
            server=SERVER,
        )
        assert any(
            "CLIENT_FRAME_TYPES lists 'gossip'" in f.message for f in found
        )

    def test_orphan_frame_type_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL.replace(
                '{"submit", "report", "ping", "pong"}',
                '{"submit", "report", "ping", "pong", "gossip"}',
            ),
            server=SERVER,
        )
        f = next(f for f in found if "neither" in f.message)
        assert "'gossip'" in f.message
        assert f.rule == RULE
        assert f.path == "repro/protocol.py"


class TestBuilders:
    def test_builder_with_unregistered_type_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL
            + """
def gossip_frame(frame_id):
    return {"type": "gossip", "id": frame_id}
"""
        )
        assert any(
            "gossip_frame() builds a frame of unregistered type 'gossip'"
            in f.message
            for f in found
        )


class TestDispatchTables:
    def test_dispatcher_missing_a_client_type_is_flagged(self):
        # The historical failure mode: a frame type lands in the
        # protocol and one endpoint, but the other never learns it.
        found = findings_for(
            protocol=PROTOCOL,
            server=SERVER,
            router=ROUTER.replace(
                """
        elif frame_type == "submit":
            return {"type": "report"}""",
                "",
            ),
        )
        f = next(f for f in found if "does not dispatch" in f.message)
        assert (
            "FleetRouter._handle_frame() does not dispatch client frame "
            "type 'submit'" in f.message
        )
        assert f.path == "repro/router.py"

    def test_dispatcher_with_stale_arm_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL,
            server=SERVER.replace(
                'frame_type == "ping"', 'frame_type == "gossip"'
            ),
        )
        messages = [f.message for f in found]
        assert any(
            "dispatches 'gossip' which is not in CLIENT_FRAME_TYPES" in m
            for m in messages
        )
        assert any(
            "does not dispatch client frame type 'ping'" in m
            for m in messages
        )

    def test_dispatcher_class_without_method_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL,
            server="""
class ScheduleServer:
    pass
""",
        )
        assert any(
            "ScheduleServer has no _handle_frame() dispatch method"
            in f.message
            for f in found
        )

    def test_stub_dispatcher_without_table_is_skipped(self):
        # A fixture-style stub that never compares frame_type is not a
        # drifted dispatch table.
        assert not findings_for(
            protocol=PROTOCOL,
            server="""
class ScheduleServer:
    async def _handle_frame(self, frame):
        raise NotImplementedError
""",
        )

    def test_real_protocol_module_is_clean_against_itself(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2] / "src" / "repro"
        sources = {}
        for rel in (
            "service/protocol.py",
            "service/server.py",
            "service/fleet/router.py",
        ):
            sources[f"repro/{rel}"] = (root / rel).read_text()
        project = Project.from_sources(sources)
        assert not run_rules(project, [get_rule(RULE)])

"""Fixture snippets for the frame-schema rule."""

from __future__ import annotations

import textwrap

from repro.analysis import Project, get_rule
from repro.analysis.runner import run_rules

RULE = "frame-schema"


def findings_for(**sources: str):
    project = Project.from_sources(
        {
            f"repro/{name}.py": textwrap.dedent(source)
            for name, source in sources.items()
        }
    )
    return run_rules(project, [get_rule(RULE)])


# A miniature protocol + both dispatchers, fully in lockstep.
PROTOCOL = """
FRAME_TYPES = frozenset({"submit", "report", "ping", "pong"})
CLIENT_FRAME_TYPES = frozenset({"submit", "ping"})
SERVER_FRAME_TYPES = frozenset({"report", "pong"})

def submit_frame(frame_id, request):
    return {"type": "submit", "id": frame_id, "request": request}

def ping_frame(frame_id):
    return {"type": "ping", "id": frame_id}
"""

SERVER = """
class ScheduleServer:
    async def _handle_frame(self, frame):
        frame_type = frame["type"]
        if frame_type == "ping":
            return {"type": "pong"}
        elif frame_type == "submit":
            return {"type": "report"}
"""

ROUTER = """
class FleetRouter:
    async def _handle_frame(self, frame):
        frame_type = frame["type"]
        if frame_type == "ping":
            return {"type": "pong"}
        elif frame_type == "submit":
            return {"type": "report"}
"""


class TestRegistryAlgebra:
    def test_lockstep_protocol_is_clean(self):
        assert not findings_for(
            protocol=PROTOCOL, server=SERVER, router=ROUTER
        )

    def test_no_registry_at_all_is_skipped(self):
        # Fixture projects without a protocol have nothing to check.
        assert not findings_for(other="x = 1")

    def test_missing_side_set_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL.replace(
                'SERVER_FRAME_TYPES = frozenset({"report", "pong"})', ""
            ),
            server=SERVER,
        )
        assert any(
            "no SERVER_FRAME_TYPES" in f.message for f in found
        )

    def test_side_type_outside_frame_types_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL.replace(
                '{"submit", "ping"}', '{"submit", "ping", "gossip"}'
            ),
            server=SERVER,
        )
        assert any(
            "CLIENT_FRAME_TYPES lists 'gossip'" in f.message for f in found
        )

    def test_orphan_frame_type_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL.replace(
                '{"submit", "report", "ping", "pong"}',
                '{"submit", "report", "ping", "pong", "gossip"}',
            ),
            server=SERVER,
        )
        f = next(f for f in found if "neither" in f.message)
        assert "'gossip'" in f.message
        assert f.rule == RULE
        assert f.path == "repro/protocol.py"


class TestBuilders:
    def test_builder_with_unregistered_type_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL
            + """
def gossip_frame(frame_id):
    return {"type": "gossip", "id": frame_id}
"""
        )
        assert any(
            "gossip_frame() builds a frame of unregistered type 'gossip'"
            in f.message
            for f in found
        )


class TestDispatchTables:
    def test_dispatcher_missing_a_client_type_is_flagged(self):
        # The historical failure mode: a frame type lands in the
        # protocol and one endpoint, but the other never learns it.
        found = findings_for(
            protocol=PROTOCOL,
            server=SERVER,
            router=ROUTER.replace(
                """
        elif frame_type == "submit":
            return {"type": "report"}""",
                "",
            ),
        )
        f = next(f for f in found if "does not dispatch" in f.message)
        assert (
            "FleetRouter._handle_frame() does not dispatch client frame "
            "type 'submit'" in f.message
        )
        assert f.path == "repro/router.py"

    def test_dispatcher_with_stale_arm_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL,
            server=SERVER.replace(
                'frame_type == "ping"', 'frame_type == "gossip"'
            ),
        )
        messages = [f.message for f in found]
        assert any(
            "dispatches 'gossip' which is not in CLIENT_FRAME_TYPES" in m
            for m in messages
        )
        assert any(
            "does not dispatch client frame type 'ping'" in m
            for m in messages
        )

    def test_dispatcher_class_without_method_is_flagged(self):
        found = findings_for(
            protocol=PROTOCOL,
            server="""
class ScheduleServer:
    pass
""",
        )
        assert any(
            "ScheduleServer has no _handle_frame() dispatch method"
            in f.message
            for f in found
        )

    def test_stub_dispatcher_without_table_is_skipped(self):
        # A fixture-style stub that never compares frame_type is not a
        # drifted dispatch table.
        assert not findings_for(
            protocol=PROTOCOL,
            server="""
class ScheduleServer:
    async def _handle_frame(self, frame):
        raise NotImplementedError
""",
        )

    def test_real_protocol_module_is_clean_against_itself(self):
        sources = _real_sources()
        project = Project.from_sources(sources)
        assert not run_rules(project, [get_rule(RULE)])


def _real_sources() -> dict[str, str]:
    from pathlib import Path

    root = Path(__file__).resolve().parents[2] / "src" / "repro"
    sources = {}
    for rel in (
        "service/protocol.py",
        "service/server.py",
        "service/client.py",
        "service/fleet/router.py",
    ):
        sources[f"repro/{rel}"] = (root / rel).read_text()
    return sources


# A push-frame protocol + client, fully in lockstep.
PUSH_PROTOCOL = """
FRAME_TYPES = frozenset({"submit", "report", "progress", "event"})
CLIENT_FRAME_TYPES = frozenset({"submit"})
SERVER_FRAME_TYPES = frozenset({"report", "progress", "event"})
PUSH_FRAME_TYPES = frozenset({"progress", "event"})

def submit_frame(frame_id, request):
    return {"type": "submit", "id": frame_id, "request": request}

def progress_frame(frame_id, stage, seq):
    return {"type": "progress", "id": frame_id, "seq": seq, "stage": stage}

def event_frame(frame_id, event, seq):
    return {"type": "event", "id": frame_id, "seq": seq, "event": event}
"""

PUSH_CLIENT = """
class AsyncServiceClient:
    async def _read_loop(self, reader):
        frame = await reader.read()
        frame_type = frame.get("type")
        if frame_type == "progress" or frame_type == "event":
            self._route(frame)

    async def watch(self, request):
        while True:
            frame = await self._queue.get()
            frame_type = frame.get("type")
            if frame_type == "progress" or frame_type == "event":
                yield frame
                continue
            yield frame
            return
"""


class TestPushFrames:
    def test_lockstep_push_protocol_is_clean(self):
        assert not findings_for(protocol=PUSH_PROTOCOL, client=PUSH_CLIENT)

    def test_push_type_missing_from_server_set_is_flagged(self):
        found = findings_for(
            protocol=PUSH_PROTOCOL.replace(
                'SERVER_FRAME_TYPES = frozenset({"report", "progress", '
                '"event"})',
                'SERVER_FRAME_TYPES = frozenset({"report", "progress"})',
            ),
            client=PUSH_CLIENT,
        )
        assert any(
            "push frame type 'event' is not in SERVER_FRAME_TYPES"
            in f.message
            for f in found
        )

    def test_push_type_outside_frame_types_is_flagged(self):
        found = findings_for(
            protocol=PUSH_PROTOCOL.replace(
                'PUSH_FRAME_TYPES = frozenset({"progress", "event"})',
                'PUSH_FRAME_TYPES = frozenset({"progress", "event", '
                '"gossip"})',
            ),
            client=PUSH_CLIENT,
        )
        assert any(
            "PUSH_FRAME_TYPES lists 'gossip'" in f.message for f in found
        )

    def test_missing_builder_is_flagged(self):
        found = findings_for(
            protocol=PUSH_PROTOCOL.replace(
                """
def event_frame(frame_id, event, seq):
    return {"type": "event", "id": frame_id, "seq": seq, "event": event}
""",
                "",
            ),
            client=PUSH_CLIENT,
        )
        assert any(
            "no builder constructs a 'event' push frame" in f.message
            for f in found
        )

    def test_client_path_missing_a_push_type_is_flagged(self):
        found = findings_for(
            protocol=PUSH_PROTOCOL,
            client=PUSH_CLIENT.replace(
                'frame_type == "progress" or frame_type == "event":\n'
                "            self._route(frame)",
                'frame_type == "progress":\n'
                "            self._route(frame)",
            ),
        )
        f = next(f for f in found if "does not route" in f.message)
        assert (
            "AsyncServiceClient._read_loop() does not route push frame "
            "type 'event'" in f.message
        )
        assert f.path == "repro/client.py"

    def test_mutated_real_source_deleting_event_builder_is_caught(self):
        # The satellite's mutation check: take the REAL protocol and
        # client sources, delete the event_frame builder, and the rule
        # must point at protocol.py's PUSH_FRAME_TYPES registry line.
        sources = _real_sources()
        protocol_path = "repro/service/protocol.py"
        original = sources[protocol_path]
        start = original.index("def event_frame(")
        end = original.index("def parse_submit_frame(")
        sources[protocol_path] = original[:start] + original[end:]
        project = Project.from_sources(sources)
        found = run_rules(project, [get_rule(RULE)])
        f = next(
            f
            for f in found
            if "no builder constructs a 'event' push frame" in f.message
        )
        assert f.path == protocol_path
        registry_line = 1 + original[
            : original.index("PUSH_FRAME_TYPES = frozenset")
        ].count("\n")
        assert f.line == registry_line

"""Fixture snippets for the lock-discipline rule and its annotation parser."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis import Project, get_rule
from repro.analysis.rules.lock_discipline import guarded_attributes
from repro.analysis.runner import run_rules

RULE = "lock-discipline"


def project_for(source: str) -> Project:
    return Project.from_sources(
        {"repro/fixture.py": textwrap.dedent(source)}
    )


def findings_for(source: str):
    return run_rules(project_for(source), [get_rule(RULE)])


COUNTER_CLASS = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
"""


class TestGuardExtraction:
    def test_single_line_annotation(self):
        project = project_for(COUNTER_CLASS)
        sf = project.files[0]
        cls = project.find_class("Counter")[1]
        assert guarded_attributes(sf, cls) == {"_hits": "_lock"}

    def test_multi_line_assignment_comment_on_value_line(self):
        project = project_for(
            """
            class Box:
                def __init__(self):
                    self._entries = (
                        {}
                    )  # guarded-by: _lock
            """
        )
        sf = project.files[0]
        cls = project.find_class("Box")[1]
        assert guarded_attributes(sf, cls) == {"_entries": "_lock"}

    def test_annotated_assignment(self):
        project = project_for(
            """
            class Box:
                def __init__(self):
                    self._entries: dict = {}  # guarded-by: _lock
            """
        )
        sf = project.files[0]
        cls = project.find_class("Box")[1]
        assert guarded_attributes(sf, cls) == {"_entries": "_lock"}


class TestPositive:
    def test_unlocked_write_is_flagged(self):
        found = findings_for(
            COUNTER_CLASS
            + """
    def bump(self):
        self._hits += 1
"""
        )
        assert len(found) == 1
        f = found[0]
        assert f.rule == RULE
        assert "Counter._hits" in f.message
        assert "with self._lock:" in f.message

    def test_unlocked_read_is_flagged(self):
        found = findings_for(
            COUNTER_CLASS
            + """
    def peek(self):
        return self._hits
"""
        )
        assert len(found) == 1

    def test_access_after_with_block_closes(self):
        found = findings_for(
            COUNTER_CLASS
            + """
    def bump(self):
        with self._lock:
            self._hits += 1
        return self._hits
"""
        )
        assert len(found) == 1
        assert found[0].line == 12  # only the access after the block

    def test_with_nested_under_if_is_still_seen(self):
        # Regression: the walker must find with-blocks at any depth, and
        # must keep flagging accesses outside them.
        found = findings_for(
            COUNTER_CLASS
            + """
    def bump(self, fast):
        if fast:
            with self._lock:
                self._hits += 1
        else:
            self._hits += 1
"""
        )
        assert len(found) == 1
        assert found[0].line == 14

    def test_other_objects_guard_is_per_object(self):
        # Holding self's lock does not license touching other's state.
        found = findings_for(
            COUNTER_CLASS
            + """
    def absorb(self, other):
        with self._lock:
            self._hits += other._hits
"""
        )
        assert len(found) == 1
        assert "other._hits" in found[0].message
        assert "with other._lock:" in found[0].message

    def test_acquisition_expression_runs_unlocked(self):
        # `with (self._hits and self._lock):` touches _hits before the
        # lock is held.
        found = findings_for(
            COUNTER_CLASS
            + """
    def weird(self):
        with (self._hits and self._lock):
            pass
"""
        )
        assert len(found) == 1


class TestNegative:
    def test_locked_access_is_fine(self):
        assert not findings_for(
            COUNTER_CLASS
            + """
    def bump(self):
        with self._lock:
            self._hits += 1
"""
        )

    def test_async_with_counts(self):
        assert not findings_for(
            COUNTER_CLASS
            + """
    async def bump(self):
        async with self._lock:
            self._hits += 1
"""
        )

    def test_init_is_exempt(self):
        assert not findings_for(COUNTER_CLASS)

    def test_locked_suffix_helpers_are_exempt(self):
        assert not findings_for(
            COUNTER_CLASS
            + """
    def _bump_locked(self):
        self._hits += 1
"""
        )

    def test_touching_the_lock_itself_is_fine(self):
        assert not findings_for(
            COUNTER_CLASS
            + """
    def busy(self):
        return self._lock.locked()
"""
        )

    def test_other_objects_lock_guards_other(self):
        assert not findings_for(
            COUNTER_CLASS
            + """
    def absorb(self, other):
        with other._lock:
            hits = other._hits
        with self._lock:
            self._hits += hits
"""
        )

    def test_non_underscore_guard_is_documentation_only(self):
        assert not findings_for(
            """
            class Service:
                def __init__(self):
                    self._submitted = 0  # guarded-by: event-loop

                def admit(self):
                    self._submitted += 1
            """
        )

    def test_unannotated_attributes_are_not_enforced(self):
        assert not findings_for(
            """
            class Plain:
                def __init__(self):
                    self._hits = 0

                def bump(self):
                    self._hits += 1
            """
        )

    def test_suppression_comment_wins(self):
        assert not findings_for(
            COUNTER_CLASS
            + """
    def bump(self):
        self._hits += 1  # repro: ignore[lock-discipline]
"""
        )

"""Rule registry: registration contract and select/ignore resolution."""

from __future__ import annotations

import pytest

from repro.analysis import available_rules, get_rule
from repro.analysis.registry import (
    _REGISTRY,
    LintRule,
    register_rule,
    resolve_rules,
)
from repro.errors import AnalysisError

EXPECTED_RULES = {
    "async-blocking",
    "lock-discipline",
    "codec-drift",
    "solver-contract",
    "units-boundary",
}


class TestRegistry:
    def test_all_shipped_rules_are_registered(self):
        names = {rule.name for rule in available_rules()}
        assert EXPECTED_RULES <= names

    def test_available_rules_sorted_by_name(self):
        names = [rule.name for rule in available_rules()]
        assert names == sorted(names)

    def test_unknown_rule_is_analysis_error(self):
        with pytest.raises(AnalysisError, match="unknown rule 'nope'"):
            get_rule("nope")

    def test_register_requires_name_and_description(self):
        class Nameless(LintRule):
            def check(self, project):
                return iter(())

        with pytest.raises(AnalysisError, match="declares no name"):
            register_rule(Nameless)

        class Undescribed(LintRule):
            name = "undescribed-demo"

            def check(self, project):
                return iter(())

        with pytest.raises(AnalysisError, match="declares no description"):
            register_rule(Undescribed)
        assert "undescribed-demo" not in _REGISTRY

    def test_duplicate_name_is_rejected(self):
        class Impostor(LintRule):
            name = "units-boundary"
            description = "clash"

            def check(self, project):
                return iter(())

        with pytest.raises(AnalysisError, match="duplicate rule name"):
            register_rule(Impostor)


class TestResolveRules:
    def test_default_is_every_rule(self):
        assert resolve_rules() == available_rules()

    def test_select_narrows_and_preserves_request_order(self):
        rules = resolve_rules(select=["units-boundary", "codec-drift"])
        assert [r.name for r in rules] == ["units-boundary", "codec-drift"]

    def test_ignore_drops_rules(self):
        names = {r.name for r in resolve_rules(ignore=["async-blocking"])}
        assert "async-blocking" not in names
        assert "lock-discipline" in names

    def test_select_then_ignore(self):
        rules = resolve_rules(
            select=["units-boundary", "codec-drift"], ignore=["codec-drift"]
        )
        assert [r.name for r in rules] == ["units-boundary"]

    def test_unknown_select_or_ignore_raises(self):
        with pytest.raises(AnalysisError):
            resolve_rules(select=["bogus"])
        with pytest.raises(AnalysisError):
            resolve_rules(ignore=["bogus"])

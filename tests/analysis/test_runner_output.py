"""run_check orchestration and the text/JSON renderers."""

from __future__ import annotations

import json

from repro.analysis import Baseline, Project, run_check
from repro.analysis.output import render_json, render_text

DIRTY = {
    "repro/hot.py": "t_k = t_c + 273.15\n",
    "repro/cold.py": "x = 1\n",
}


class TestRunCheck:
    def test_clean_project(self):
        result = run_check(Project.from_sources({"repro/a.py": "x = 1\n"}))
        assert result.ok
        assert result.findings == []
        assert result.files_checked == 1
        assert "units-boundary" in result.rules

    def test_findings_fail_without_baseline(self):
        result = run_check(Project.from_sources(DIRTY))
        assert not result.ok
        assert len(result.diff.new) == 1
        assert result.diff.new[0].rule == "units-boundary"

    def test_baseline_turns_findings_into_known_debt(self):
        project = Project.from_sources(DIRTY)
        baseline = Baseline.from_findings(run_check(project).findings)
        result = run_check(project, baseline=baseline)
        assert result.ok
        assert len(result.diff.baselined) == 1 and not result.diff.new

    def test_select_runs_only_named_rules(self):
        result = run_check(
            Project.from_sources(DIRTY), select=["lock-discipline"]
        )
        assert result.ok  # the units finding is not looked for
        assert result.rules == ["lock-discipline"]

    def test_ignore_skips_named_rules(self):
        result = run_check(
            Project.from_sources(DIRTY), ignore=["units-boundary"]
        )
        assert result.ok
        assert "units-boundary" not in result.rules


class TestJsonOutput:
    def test_schema(self):
        payload = json.loads(render_json(run_check(Project.from_sources(DIRTY))))
        assert set(payload) == {
            "ok",
            "rules",
            "files_checked",
            "counts",
            "new",
            "baselined",
            "stale_baseline_entries",
        }
        assert payload["ok"] is False
        assert payload["files_checked"] == 2
        assert payload["counts"] == {
            "total": 1,
            "new": 1,
            "baselined": 0,
            "stale_baseline_entries": 0,
        }
        (finding,) = payload["new"]
        assert set(finding) == {
            "path",
            "line",
            "col",
            "rule",
            "message",
            "hint",
            "fingerprint",
        }
        assert finding["path"] == "repro/hot.py"
        assert finding["rule"] == "units-boundary"

    def test_stale_entries_are_listed(self):
        baseline = Baseline({"units-boundary::repro/gone.py::fixed": 1})
        result = run_check(
            Project.from_sources({"repro/a.py": "x = 1\n"}), baseline=baseline
        )
        payload = json.loads(render_json(result))
        assert payload["ok"] is True
        assert payload["stale_baseline_entries"] == [
            "units-boundary::repro/gone.py::fixed"
        ]


class TestTextOutput:
    def test_clean_summary_line(self):
        text = render_text(
            run_check(Project.from_sources({"repro/a.py": "x = 1\n"}))
        )
        assert text.startswith("OK: checked 1 files")

    def test_new_findings_render_compiler_style(self):
        text = render_text(run_check(Project.from_sources(DIRTY)))
        assert "new findings (not in baseline):" in text
        assert "repro/hot.py:1:" in text
        assert "[units-boundary]" in text
        assert text.splitlines()[-1].startswith("FAIL:")

    def test_baselined_findings_only_shown_verbose(self):
        project = Project.from_sources(DIRTY)
        baseline = Baseline.from_findings(run_check(project).findings)
        result = run_check(project, baseline=baseline)
        assert "repro/hot.py" not in render_text(result)
        assert "repro/hot.py" in render_text(result, verbose=True)

    def test_stale_entries_suggest_update(self):
        baseline = Baseline({"units-boundary::repro/gone.py::fixed": 1})
        result = run_check(
            Project.from_sources({"repro/a.py": "x = 1\n"}), baseline=baseline
        )
        text = render_text(result)
        assert "--update-baseline" in text
        assert "units-boundary::repro/gone.py::fixed" in text

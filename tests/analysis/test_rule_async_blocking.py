"""Fixture snippets for the async-blocking rule."""

from __future__ import annotations

import textwrap

from repro.analysis import Project, get_rule
from repro.analysis.runner import run_rules

RULE = "async-blocking"


def findings_for(source: str):
    project = Project.from_sources(
        {"repro/fixture.py": textwrap.dedent(source)}
    )
    return run_rules(project, [get_rule(RULE)])


class TestPositive:
    def test_time_sleep_in_async_def(self):
        found = findings_for(
            """
            import time

            async def handler():
                time.sleep(0.1)
            """
        )
        assert len(found) == 1
        f = found[0]
        assert f.rule == RULE
        assert f.path == "repro/fixture.py"
        assert f.line == 5
        assert "time.sleep" in f.message
        assert "asyncio.sleep" in f.hint

    def test_aliased_import_is_resolved(self):
        found = findings_for(
            """
            from time import sleep as snooze

            async def handler():
                snooze(1)
            """
        )
        assert len(found) == 1
        assert "time.sleep" in found[0].message

    def test_subprocess_and_os_system(self):
        found = findings_for(
            """
            import os
            import subprocess

            async def handler():
                subprocess.run(["ls"])
                os.system("ls")
            """
        )
        assert {f.line for f in found} == {6, 7}

    def test_blocking_builtins(self):
        found = findings_for(
            """
            async def handler(path):
                with open(path) as fh:
                    return fh
            """
        )
        assert len(found) == 1
        assert "open()" in found[0].message

    def test_path_io_methods(self):
        found = findings_for(
            """
            async def handler(path):
                return path.read_text()
            """
        )
        assert len(found) == 1
        assert ".read_text()" in found[0].message

    def test_direct_solver_invocation(self):
        found = findings_for(
            """
            async def handler(request):
                return process_solve(request)
            """
        )
        assert len(found) == 1
        assert "process_solve" in found[0].message
        assert "run_in_executor" in found[0].hint


class TestNegative:
    def test_sync_def_is_not_checked(self):
        assert not findings_for(
            """
            import time

            def handler():
                time.sleep(0.1)
            """
        )

    def test_asyncio_sleep_is_fine(self):
        assert not findings_for(
            """
            import asyncio

            async def handler():
                await asyncio.sleep(0.1)
            """
        )

    def test_nested_def_runs_on_executor_not_loop(self):
        # The repo's standard pattern: a closure handed to run_in_executor.
        assert not findings_for(
            """
            import time

            async def handler(loop):
                def work():
                    time.sleep(0.1)
                    return process_solve(None)
                return await loop.run_in_executor(None, work)
            """
        )

    def test_suppression_comment_wins(self):
        assert not findings_for(
            """
            import time

            async def handler():
                time.sleep(0.1)  # repro: ignore[async-blocking]
            """
        )

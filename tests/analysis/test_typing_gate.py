"""The mypy strict-ratchet configuration and the py.typed marker.

The container running the tier-1 suite does not ship mypy (CI installs
it for the static-analysis job), so the actual type-check is gated on
the import; the configuration-shape tests always run.
"""

from __future__ import annotations

import configparser
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
MYPY_INI = REPO_ROOT / "mypy.ini"

#: Modules promoted to the strict profile; the list only ever grows.
PROMOTED = [
    "mypy-repro.errors",
    "mypy-repro.units",
    "mypy-repro.api",
    "mypy-repro.api.request",
    "mypy-repro.api.solvers",
    "mypy-repro.api.workbench",
    "mypy-repro.obs.histogram",
    "mypy-repro.reactive",
    "mypy-repro.reactive.*",
    "mypy-repro.service.protocol",
]


def load_config() -> configparser.ConfigParser:
    parser = configparser.ConfigParser()
    parser.read(MYPY_INI)
    return parser


class TestConfigShape:
    def test_config_exists_and_parses(self):
        assert MYPY_INI.exists()
        assert load_config().has_section("mypy")

    def test_strict_profile_is_on_globally(self):
        config = load_config()
        assert config.getboolean("mypy", "disallow_untyped_defs")
        assert config.getboolean("mypy", "check_untyped_defs")
        assert config.getboolean("mypy", "no_implicit_optional")

    def test_ratchet_ignores_unpromoted_modules(self):
        config = load_config()
        assert config.getboolean("mypy-repro.*", "ignore_errors")

    def test_promoted_modules_are_not_ignored(self):
        config = load_config()
        for section in PROMOTED:
            assert config.has_section(section), section
            assert not config.getboolean(section, "ignore_errors"), section


class TestPyTypedMarker:
    def test_marker_file_is_present(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()

    def test_setup_ships_the_marker(self):
        setup = (REPO_ROOT / "setup.py").read_text()
        assert "py.typed" in setup


class TestMypyRun:
    def test_promoted_modules_are_strict_clean(self):
        api = pytest.importorskip(
            "mypy.api", reason="mypy is a CI-only dependency"
        )
        stdout, stderr, status = api.run(
            [
                "--config-file",
                str(MYPY_INI),
                "-p",
                "repro.api",
                "-p",
                "repro.service",
                "-p",
                "repro.obs",
                "-p",
                "repro.reactive",
            ]
        )
        assert status == 0, f"mypy reported errors:\n{stdout}\n{stderr}"

"""Source loading: paths, module names, suppressions, error handling."""

from __future__ import annotations

import pytest

from repro.analysis import Project
from repro.analysis.project import SourceFile, _module_name
from repro.errors import AnalysisError


class TestModuleNames:
    def test_plain_module(self):
        assert _module_name("repro/service/pool.py") == "repro.service.pool"

    def test_package_init_maps_to_package(self):
        assert _module_name("repro/service/__init__.py") == "repro.service"

    def test_top_level_init(self):
        assert _module_name("repro/__init__.py") == "repro"


class TestSourceFile:
    def test_parse_and_lines(self):
        sf = SourceFile.from_text("repro/x.py", "a = 1\nb = 2\n")
        assert sf.module == "repro.x"
        assert sf.line_text(2) == "b = 2"
        assert sf.line_text(99) == ""
        assert sf.line_text(0) == ""

    def test_syntax_error_is_analysis_error(self):
        with pytest.raises(AnalysisError, match="cannot parse repro/x.py"):
            SourceFile.from_text("repro/x.py", "def broken(:\n")

    def test_bare_ignore_suppresses_every_rule(self):
        sf = SourceFile.from_text("repro/x.py", "a = 1  # repro: ignore\n")
        assert sf.is_suppressed("units-boundary", 1)
        assert sf.is_suppressed("anything-else", 1)
        assert not sf.is_suppressed("units-boundary", 2)

    def test_bracketed_ignore_suppresses_named_rules_only(self):
        sf = SourceFile.from_text(
            "repro/x.py",
            "a = 1  # repro: ignore[units-boundary, lock-discipline]\n",
        )
        assert sf.is_suppressed("units-boundary", 1)
        assert sf.is_suppressed("lock-discipline", 1)
        assert not sf.is_suppressed("async-blocking", 1)


class TestProject:
    def test_from_sources_and_lookups(self):
        project = Project.from_sources(
            {
                "repro/a.py": "class Foo:\n    pass\n",
                "repro/sub/b.py": "def helper():\n    return 1\n",
            }
        )
        assert [sf.path for sf in project.files] == [
            "repro/a.py",
            "repro/sub/b.py",
        ]
        assert project.get("repro/a.py") is not None
        assert project.get("missing.py") is None
        sf, cls = project.find_class("Foo")
        assert sf.path == "repro/a.py" and cls.name == "Foo"
        assert project.find_class("Bar") is None
        sf, fn = project.find_function("helper")
        assert fn.name == "helper"
        assert project.find_function("nope") is None

    def test_find_function_is_module_level_only(self):
        project = Project.from_sources(
            {"repro/a.py": "class C:\n    def method(self):\n        pass\n"}
        )
        assert project.find_function("method") is None

    def test_files_under_prefix(self):
        project = Project.from_sources(
            {
                "repro/service/a.py": "x = 1\n",
                "repro/service/sub/b.py": "x = 1\n",
                "repro/api/c.py": "x = 1\n",
            }
        )
        under = project.files_under("repro.service")
        assert sorted(sf.module for sf in under) == [
            "repro.service.a",
            "repro.service.sub.b",
        ]

    def test_load_walks_tree_with_parent_relative_paths(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "sub").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "sub" / "mod.py").write_text("x = 1\n")
        (pkg / "__pycache__").mkdir()
        (pkg / "__pycache__" / "junk.py").write_text("broken(\n")
        project = Project.load(pkg)
        assert [sf.path for sf in project.files] == [
            "pkg/__init__.py",
            "pkg/sub/mod.py",
        ]

    def test_load_rejects_non_directory(self, tmp_path):
        with pytest.raises(AnalysisError, match="not a directory"):
            Project.load(tmp_path / "missing")

    def test_load_rejects_empty_tree(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(AnalysisError, match="no Python sources"):
            Project.load(tmp_path / "empty")

"""Fixture snippets for the codec-drift rule."""

from __future__ import annotations

import textwrap

from repro.analysis import Project, get_rule
from repro.analysis.runner import run_rules

RULE = "codec-drift"


def findings_for(**sources: str):
    project = Project.from_sources(
        {
            f"repro/{name}.py": textwrap.dedent(source)
            for name, source in sources.items()
        }
    )
    return run_rules(project, [get_rule(RULE)])


# A miniature JobSpec with explicit (non-asdict) codecs, complete.
COMPLETE = """
from dataclasses import dataclass

@dataclass
class JobSpec:
    job_id: str
    tl_c: float

def job_spec_to_dict(spec):
    return {"schema_version": 1, "job_id": spec.job_id, "tl_c": spec.tl_c}

def job_spec_from_dict(data):
    return JobSpec(job_id=data["job_id"], tl_c=data["tl_c"])
"""


class TestToCodec:
    def test_complete_explicit_codec_is_clean(self):
        assert not findings_for(jobs=COMPLETE)

    def test_missing_field_in_to_dict_is_flagged(self):
        found = findings_for(
            jobs=COMPLETE.replace(' "tl_c": spec.tl_c', ' "x": 0')
        )
        assert any(
            "job_spec_to_dict() does not write field 'tl_c'" in f.message
            for f in found
        )
        f = next(f for f in found if "to_dict" in f.message)
        assert f.path == "repro/jobs.py"
        assert f.rule == RULE

    def test_new_dataclass_field_must_ride_the_codec(self):
        # The historical failure mode: a field lands on the dataclass
        # but not in the codec.
        found = findings_for(
            jobs=COMPLETE.replace(
                "    tl_c: float", "    tl_c: float\n    stcl: float = 0.0"
            )
        )
        messages = [f.message for f in found]
        assert any(
            "job_spec_to_dict() does not write field 'stcl'" in m
            for m in messages
        )
        assert any(
            "job_spec_from_dict() does not pass field 'stcl'" in m
            for m in messages
        )

    def test_asdict_codec_is_complete_by_construction(self):
        assert not findings_for(
            jobs="""
            from dataclasses import asdict, dataclass

            @dataclass
            class JobSpec:
                job_id: str
                tl_c: float
                stcl: float

            def job_spec_to_dict(spec):
                data = asdict(spec)
                data["schema_version"] = 1
                return data

            def job_spec_from_dict(data):
                payload = {k: v for k, v in data.items() if k != "schema_version"}
                return JobSpec(**payload)
            """
        )

    def test_missing_to_codec_function_is_flagged(self):
        found = findings_for(
            jobs=COMPLETE.replace("def job_spec_to_dict", "def renamed_to_dict")
        )
        assert any(
            "has no job_spec_to_dict() codec" in f.message for f in found
        )


class TestFromCodec:
    def test_missing_from_codec_function_is_flagged(self):
        found = findings_for(
            jobs=COMPLETE.replace(
                "def job_spec_from_dict", "def renamed_from_dict"
            )
        )
        assert any(
            "has no job_spec_from_dict() codec" in f.message for f in found
        )

    def test_from_codec_that_never_constructs_is_flagged(self):
        found = findings_for(
            jobs=COMPLETE.replace(
                'return JobSpec(job_id=data["job_id"], tl_c=data["tl_c"])',
                "return None",
            )
        )
        assert any(
            "job_spec_from_dict() never constructs JobSpec" in f.message
            for f in found
        )

    def test_splat_construction_is_complete_by_construction(self):
        assert not findings_for(
            jobs=COMPLETE.replace(
                'return JobSpec(job_id=data["job_id"], tl_c=data["tl_c"])',
                "return JobSpec(**data)",
            )
        )


class TestWireLinks:
    def test_frame_builder_forking_off_the_codec_is_flagged(self):
        found = findings_for(
            proto="""
            def report_frame(frame_id, report):
                return {"type": "report", "id": frame_id, "report": vars(report)}
            """
        )
        assert len(found) == 1
        assert "report_frame() no longer embeds report_to_dict()" in found[0].message

    def test_frame_builder_embedding_the_codec_is_clean(self):
        assert not findings_for(
            proto="""
            def report_frame(frame_id, report):
                return {"type": "report", "id": frame_id,
                        "report": report_to_dict(report)}
            """
        )


class TestFixtureScoping:
    def test_absent_dataclasses_are_simply_skipped(self):
        # A fixture (or a refactor in flight) only carries some types;
        # the rule must not invent findings about the missing ones.
        assert not findings_for(other="x = 1\n")

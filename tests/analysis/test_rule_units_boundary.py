"""Fixture snippets for the units-boundary rule."""

from __future__ import annotations

import textwrap

from repro.analysis import Project, get_rule
from repro.analysis.runner import run_rules

RULE = "units-boundary"


def findings_for(source: str, path: str = "repro/fixture.py"):
    project = Project.from_sources({path: textwrap.dedent(source)})
    return run_rules(project, [get_rule(RULE)])


class TestKelvinOffsetLiteral:
    def test_raw_offset_is_flagged(self):
        found = findings_for("t_k = t_c + 273.15\n")
        assert len(found) == 1
        assert "273.15" in found[0].message
        assert "celsius_to_kelvin" in found[0].hint

    def test_negative_offset_is_flagged(self):
        assert len(findings_for("t_c = t_k - +273.15\n")) == 1

    def test_units_module_itself_is_exempt(self):
        assert not findings_for(
            "KELVIN_OFFSET = 273.15\n", path="repro/units.py"
        )

    def test_other_floats_are_fine(self):
        assert not findings_for("x = 273.16\ny = 3.15\n")


class TestKelvinKeywords:
    def test_celsius_into_kelvin_keyword_is_flagged(self):
        found = findings_for("model = build(ambient_k=45.0)\n")
        assert len(found) == 1
        assert "ambient_k=45" in found[0].message
        assert "celsius_to_kelvin" in found[0].hint

    def test_plausible_kelvin_is_fine(self):
        assert not findings_for("model = build(ambient_k=318.15)\n")

    def test_non_kelvin_keywords_are_ignored(self):
        assert not findings_for("model = build(scale_k2=45.0)\n")

    def test_non_literal_values_are_ignored(self):
        assert not findings_for("model = build(ambient_k=ambient)\n")


class TestMetreKeywords:
    def test_millimetres_into_metre_keyword_is_flagged(self):
        found = findings_for("pkg = PackageConfig(die_thickness=0.5)\n")
        assert len(found) == 1
        assert "die_thickness=0.5" in found[0].message
        assert "mm(0.5)" in found[0].hint

    def test_plausible_metres_are_fine(self):
        assert not findings_for("pkg = PackageConfig(die_thickness=0.0005)\n")

    def test_unknown_keywords_are_ignored(self):
        assert not findings_for("pkg = PackageConfig(board_area=2.0)\n")


class TestSuppression:
    def test_line_suppression_wins(self):
        assert not findings_for(
            "t_k = t_c + 273.15  # repro: ignore[units-boundary]\n"
        )

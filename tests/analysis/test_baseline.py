"""Baseline ratchet semantics: add, suppress, pay down, retire."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, Finding
from repro.errors import AnalysisError


def finding(path="repro/x.py", line=1, message="boom", rule="demo-rule"):
    return Finding(
        path=path, line=line, col=0, rule=rule, message=message, hint=""
    )


class TestFingerprints:
    def test_fingerprint_excludes_line_and_column(self):
        a = finding(line=10)
        b = finding(line=99)
        assert a.fingerprint == b.fingerprint == "demo-rule::repro/x.py::boom"

    def test_fingerprint_distinguishes_rule_path_message(self):
        assert finding().fingerprint != finding(rule="other").fingerprint
        assert finding().fingerprint != finding(path="repro/y.py").fingerprint
        assert finding().fingerprint != finding(message="bang").fingerprint


class TestApply:
    def test_empty_baseline_marks_everything_new(self):
        diff = Baseline().apply([finding(), finding(message="bang")])
        assert len(diff.new) == 2
        assert not diff.baselined and not diff.stale
        assert not diff.ok

    def test_baselined_finding_does_not_fail(self):
        baseline = Baseline.from_findings([finding()])
        diff = baseline.apply([finding(line=42)])  # line moved: same debt
        assert diff.ok
        assert len(diff.baselined) == 1 and not diff.new and not diff.stale

    def test_counts_are_per_fingerprint_budgets(self):
        baseline = Baseline.from_findings([finding(), finding()])  # budget 2
        diff = baseline.apply([finding(), finding(), finding()])
        assert len(diff.baselined) == 2
        assert len(diff.new) == 1  # the third occurrence escapes
        assert not diff.ok

    def test_paid_down_debt_becomes_stale(self):
        baseline = Baseline.from_findings([finding()])
        diff = baseline.apply([])
        assert diff.ok  # stale entries never fail the check
        assert diff.stale == [finding().fingerprint]

    def test_partial_paydown_reports_the_unspent_budget_as_stale(self):
        # One of two recorded occurrences was fixed: the check passes,
        # and the leftover budget shows up as retirable debt.
        baseline = Baseline.from_findings([finding(), finding()])
        diff = baseline.apply([finding()])
        assert diff.ok and len(diff.baselined) == 1
        assert diff.stale == [finding().fingerprint]


class TestLoadSave:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([finding(), finding(), finding(message="bang")]).save(
            path
        )
        loaded = Baseline.load(path)
        assert loaded.counts == {
            "demo-rule::repro/x.py::boom": 2,
            "demo-rule::repro/x.py::bang": 1,
        }

    def test_file_shape_is_versioned_sorted_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings([finding(message="z"), finding(message="a")]).save(
            path
        )
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert list(payload["findings"]) == sorted(payload["findings"])

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").counts == {}

    def test_bad_json_is_analysis_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(AnalysisError, match="cannot read baseline"):
            Baseline.load(path)

    def test_wrong_version_is_analysis_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": {}}))
        with pytest.raises(AnalysisError, match="version-1"):
            Baseline.load(path)

    def test_bad_count_is_analysis_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "findings": {"rule::p::m": 0}})
        )
        with pytest.raises(AnalysisError, match="bad count"):
            Baseline.load(path)

"""Fixture snippets for the solver-contract rule."""

from __future__ import annotations

import textwrap

from repro.analysis import Project, get_rule
from repro.analysis.runner import run_rules

RULE = "solver-contract"


def findings_for(**sources: str):
    project = Project.from_sources(
        {
            f"repro/{name}.py": textwrap.dedent(source)
            for name, source in sources.items()
        }
    )
    return run_rules(project, [get_rule(RULE)])


GOOD_SOLVER = """
@register_solver
class DemoSolver:
    name = "demo"
    needs_stcl = False
    param_names = frozenset({"max_sessions"})

    def solve(self, context, params):
        return params.get("max_sessions")
"""


class TestDeclarations:
    def test_complete_solver_is_clean(self):
        assert not findings_for(solver=GOOD_SOLVER)

    def test_each_missing_declaration_is_flagged(self):
        found = findings_for(
            solver="""
            @register_solver
            class BareSolver:
                def solve(self, context, params):
                    return None
            """
        )
        missing = {
            f.message.split("declare ")[1].split(" explicitly")[0]
            for f in found
        }
        assert missing == {"'name'", "'needs_stcl'", "'param_names'"}

    def test_call_style_registration_is_seen(self):
        found = findings_for(
            solver="""
            class LateSolver:
                name = "late"
                param_names = frozenset()

                def solve(self, context, params):
                    return None

            register_solver(LateSolver)
            """
        )
        assert len(found) == 1
        assert "'needs_stcl'" in found[0].message

    def test_unregistered_class_is_not_a_solver(self):
        assert not findings_for(
            solver="""
            class Helper:
                def solve(self, context, params):
                    return params["whatever"]
            """
        )


class TestParamNames:
    def test_undeclared_params_key_is_flagged(self):
        found = findings_for(
            solver=GOOD_SOLVER.replace(
                'params.get("max_sessions")', 'params.get("max_sesions")'
            )
        )
        assert len(found) == 1
        assert "params['max_sesions']" in found[0].message

    def test_subscript_access_is_checked_too(self):
        found = findings_for(
            solver=GOOD_SOLVER.replace(
                'params.get("max_sessions")', 'params["budget"]'
            )
        )
        assert len(found) == 1
        assert "'budget'" in found[0].message

    def test_dynamic_declaration_disables_subset_check(self):
        assert not findings_for(
            solver=GOOD_SOLVER.replace(
                'frozenset({"max_sessions"})', "frozenset(compute())"
            )
        )


class TestRegistryNames:
    def test_duplicate_registry_name_is_flagged(self):
        found = findings_for(
            a=GOOD_SOLVER,
            b=GOOD_SOLVER.replace("class DemoSolver", "class OtherSolver"),
        )
        assert len(found) == 1
        assert "already registered" in found[0].message


class TestHeavyImports:
    def test_module_level_scipy_in_solver_module_is_flagged(self):
        found = findings_for(
            solver="import scipy.sparse\n" + GOOD_SOLVER
        )
        assert len(found) == 1
        assert "imports scipy at module level" in found[0].message
        assert found[0].line == 1

    def test_lazy_import_inside_solve_is_fine(self):
        assert not findings_for(
            solver=GOOD_SOLVER.replace(
                "    def solve(self, context, params):",
                "    def solve(self, context, params):\n"
                "        import scipy.sparse",
            )
        )

    def test_heavy_import_in_non_solver_module_is_fine(self):
        assert not findings_for(thermal="import scipy.sparse\n")

    def test_numpy_is_the_accepted_baseline(self):
        assert not findings_for(solver="import numpy as np\n" + GOOD_SOLVER)

"""The ``repro check`` subcommand: exit codes, baseline flow, formats."""

from __future__ import annotations

import json

import pytest

from repro.cli import check_main

CLEAN = "x = 1\n"
DIRTY = "t_k = t_c + 273.15\n"


@pytest.fixture
def pkg(tmp_path):
    """A throwaway package directory to analyse."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    return root


def write(pkg, source):
    (pkg / "mod.py").write_text(source)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, pkg, capsys):
        write(pkg, CLEAN)
        assert check_main([str(pkg)]) == 0
        assert capsys.readouterr().out.startswith("OK:")

    def test_new_finding_exits_one(self, pkg, capsys):
        write(pkg, DIRTY)
        assert check_main([str(pkg)]) == 1
        out = capsys.readouterr().out
        assert "pkg/mod.py:1:" in out
        assert "[units-boundary]" in out

    def test_analysis_error_exits_one(self, tmp_path, capsys):
        assert check_main([str(tmp_path / "missing")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_usage_error_exits_two(self, pkg):
        with pytest.raises(SystemExit) as exc:
            check_main([str(pkg), "--format", "yaml"])
        assert exc.value.code == 2

    def test_unknown_rule_is_an_analysis_error(self, pkg, capsys):
        write(pkg, CLEAN)
        assert check_main([str(pkg), "--select", "bogus"]) == 1
        assert "unknown rule" in capsys.readouterr().err


class TestBaselineFlow:
    def test_update_baseline_then_check_is_clean(self, pkg, tmp_path, capsys):
        write(pkg, DIRTY)
        baseline = tmp_path / "baseline.json"
        assert (
            check_main(
                [str(pkg), "--baseline", str(baseline), "--update-baseline"]
            )
            == 0
        )
        assert "updated with 1 findings" in capsys.readouterr().out
        assert json.loads(baseline.read_text())["version"] == 1
        # The recorded debt no longer fails...
        assert check_main([str(pkg), "--baseline", str(baseline)]) == 0
        # ...but fresh debt still does.
        write(pkg, DIRTY + "t2_k = t2_c + 273.15\n")
        assert check_main([str(pkg), "--baseline", str(baseline)]) == 1

    def test_fixed_debt_goes_stale_but_passes(self, pkg, tmp_path, capsys):
        write(pkg, DIRTY)
        baseline = tmp_path / "baseline.json"
        check_main([str(pkg), "--baseline", str(baseline), "--update-baseline"])
        capsys.readouterr()
        write(pkg, CLEAN)
        assert check_main([str(pkg), "--baseline", str(baseline)]) == 0
        assert "stale baseline entries" in capsys.readouterr().out
        # Retiring the stale entry empties the baseline again.
        check_main([str(pkg), "--baseline", str(baseline), "--update-baseline"])
        assert json.loads(baseline.read_text())["findings"] == {}

    def test_suppression_comment_needs_no_baseline(self, pkg):
        write(pkg, DIRTY.rstrip() + "  # repro: ignore[units-boundary]\n")
        assert check_main([str(pkg)]) == 0


class TestFormatsAndListing:
    def test_json_format_emits_the_artifact_shape(self, pkg, capsys):
        write(pkg, DIRTY)
        assert check_main([str(pkg), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"]["new"] == 1
        assert payload["new"][0]["path"] == "pkg/mod.py"

    def test_list_rules_names_every_shipped_rule(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in (
            "async-blocking",
            "lock-discipline",
            "codec-drift",
            "solver-contract",
            "units-boundary",
        ):
            assert name in out

    def test_select_restricts_the_run(self, pkg, capsys):
        write(pkg, DIRTY)
        assert check_main([str(pkg), "--select", "lock-discipline"]) == 0
        assert "1 rules" in capsys.readouterr().out

"""The repository analyses itself — and mutations of itself fail.

The self-check pins the headline guarantee: ``repro check`` over the
real package tree is clean against the committed baseline.  The
mutation tests pin the opposite direction (the acceptance criteria):
deleting a codec field or adding an un-locked guarded access to the
*real sources* produces a finding with the right file and line — the
rules are wired to the actual codebase, not just to fixtures.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Baseline, Project, run_check

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "repro-check-baseline.json"


@pytest.fixture(scope="module")
def repo_project() -> Project:
    return Project.load(PACKAGE_ROOT)


def mutate(project: Project, path: str, old: str, new: str) -> Project:
    """The same project with one file's source textually edited."""
    sources = {sf.path: sf.text for sf in project.files}
    assert old in sources[path], f"mutation anchor not found in {path}"
    sources[path] = sources[path].replace(old, new)
    return Project.from_sources(sources)


class TestSelfCheck:
    def test_repository_is_clean_against_committed_baseline(
        self, repo_project
    ):
        result = run_check(
            repo_project, baseline=Baseline.load(BASELINE_PATH)
        )
        details = "\n".join(f.render() for f in result.diff.new)
        assert result.ok, f"repro check found new debt:\n{details}"
        assert result.files_checked > 50

    def test_committed_baseline_carries_no_stale_debt(self, repo_project):
        result = run_check(
            repo_project, baseline=Baseline.load(BASELINE_PATH)
        )
        assert result.diff.stale == []


class TestRealSourceMutations:
    def test_dropping_a_report_codec_field_is_caught(self, repo_project):
        mutated = mutate(
            repo_project,
            "repro/api/request.py",
            '"cached": report.cached,',
            "",
        )
        result = run_check(mutated, select=["codec-drift"])
        assert not result.ok
        (finding,) = result.diff.new
        assert finding.path == "repro/api/request.py"
        assert "report_to_dict() does not write field 'cached'" in finding.message
        assert finding.line > 0

    def test_dropping_a_from_codec_field_is_caught(self, repo_project):
        mutated = mutate(
            repo_project,
            "repro/api/request.py",
            'elapsed_s=float(data["elapsed_s"]),',
            "",
        )
        result = run_check(mutated, select=["codec-drift"])
        assert any(
            "report_from_dict() does not pass field 'elapsed_s'" in f.message
            for f in result.diff.new
        )

    def test_unlocked_guarded_access_is_caught(self, repo_project):
        mutated = mutate(
            repo_project,
            "repro/service/answer_cache.py",
            '    def clear(self) -> None:\n        """Drop every entry and zero the counters."""\n',
            '    def clear(self) -> None:\n        """Drop every entry and zero the counters."""\n'
            "        self._hits += 0\n",
        )
        result = run_check(mutated, select=["lock-discipline"])
        assert not result.ok
        (finding,) = result.diff.new
        assert finding.path == "repro/service/answer_cache.py"
        assert "AnswerCache._hits" in finding.message
        assert "with self._lock:" in finding.message
        assert "self._hits += 0" in mutated.get(finding.path).line_text(
            finding.line
        )

    def test_blocking_call_on_the_event_loop_is_caught(self, repo_project):
        mutated = mutate(
            repo_project,
            "repro/service/service.py",
            "import asyncio",
            "import asyncio\nimport time",
        )
        # Inject a sleeping async method next to a real one.
        anchor = "    async def start(self) -> None:"
        mutated = mutate(
            mutated,
            "repro/service/service.py",
            anchor,
            "    async def _nap(self):\n        time.sleep(1)\n\n" + anchor,
        )
        result = run_check(mutated, select=["async-blocking"])
        assert any(
            "time.sleep" in f.message for f in result.diff.new
        )

    def test_forking_the_wire_format_is_caught(self, repo_project):
        mutated = mutate(
            repo_project,
            "repro/service/protocol.py",
            '"report": report_to_dict(report),',
            '"report": dict(vars(report)),',
        )
        result = run_check(mutated, select=["codec-drift"])
        assert any(
            "report_frame() no longer embeds report_to_dict()" in f.message
            for f in result.diff.new
        )

    def test_deleting_a_solver_capability_flag_is_caught(self, repo_project):
        # Remove every explicit needs_stcl declaration from the solver zoo.
        mutated = mutate(
            repo_project,
            "repro/api/solvers.py",
            "    needs_stcl = False",
            "",
        )
        result = run_check(mutated, select=["solver-contract"])
        assert any(
            "does not declare 'needs_stcl'" in f.message
            for f in result.diff.new
        )

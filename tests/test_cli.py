"""Integration tests for the repro-schedule CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import batch_main, load_power_csv, main, repro_main
from repro.errors import ReproError
from repro.floorplan.generator import grid_floorplan
from repro.floorplan.hotspot_format import write_flp


@pytest.fixture()
def custom_soc_files(tmp_path):
    """A 2x2 grid .flp plus a matching power CSV."""
    flp = tmp_path / "chip.flp"
    write_flp(grid_floorplan(2, 2), flp)
    powers = tmp_path / "powers.csv"
    powers.write_text(
        "core,test_w,functional_w\n"
        "C0_0,30.0,10.0\nC0_1,25.0,8.0\nC1_0,28.0,9.0\nC1_1,26.0,7.0\n"
    )
    return flp, powers


class TestBuiltinSoc:
    def test_alpha15_run(self, capsys):
        exit_code = main(["--soc", "alpha15", "--tl", "165", "--stcl", "60"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Thermal-aware schedule" in out
        assert "SAFE" in out
        assert "utilisation" in out

    def test_gantt_and_heatmap_flags(self, capsys):
        exit_code = main(
            ["--soc", "alpha15", "--tl", "175", "--stcl", "40",
             "--gantt", "--heatmap"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Gantt" in out
        assert "scale:" in out  # heatmap footer

    def test_save_json(self, tmp_path, capsys):
        target = tmp_path / "run.json"
        exit_code = main(
            ["--soc", "alpha15", "--tl", "165", "--stcl", "60",
             "--save", str(target)]
        )
        assert exit_code == 0
        data = json.loads(target.read_text())
        assert data["tl_c"] == 165.0

    def test_missing_limits_is_an_error(self, capsys):
        exit_code = main(["--soc", "alpha15", "--tl", "165"])
        assert exit_code == 1
        assert "stcl" in capsys.readouterr().err.lower()


class TestCustomSoc:
    def test_flp_plus_csv_flow(self, custom_soc_files, capsys):
        flp, powers = custom_soc_files
        exit_code = main(
            ["--flp", str(flp), "--powers", str(powers),
             "--tl", "140", "--auto-stcl", "2.0"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "auto-derived STCL" in out
        assert "SAFE" in out

    def test_missing_powers_is_an_error(self, custom_soc_files, capsys):
        flp, _ = custom_soc_files
        exit_code = main(["--flp", str(flp), "--tl", "140", "--stcl", "10"])
        assert exit_code == 1
        assert "powers" in capsys.readouterr().err

    def test_infeasible_core_reports_cleanly(self, custom_soc_files, capsys):
        flp, powers = custom_soc_files
        # TL below what any core reaches alone -> CoreThermalViolation.
        exit_code = main(
            ["--flp", str(flp), "--powers", str(powers),
             "--tl", "50", "--auto-stcl", "2.0"]
        )
        assert exit_code == 1
        assert "tested" in capsys.readouterr().err


class TestReproDispatcher:
    def test_schedule_subcommand_delegates(self, capsys):
        exit_code = repro_main(
            ["schedule", "--soc", "alpha15", "--tl", "165", "--stcl", "60"]
        )
        assert exit_code == 0
        assert "Thermal-aware schedule" in capsys.readouterr().out

    def test_no_command_is_usage_error(self, capsys):
        assert repro_main([]) == 2
        assert "usage: repro" in capsys.readouterr().out

    def test_help_exits_zero(self, capsys):
        assert repro_main(["--help"]) == 0
        assert "batch" in capsys.readouterr().out

    def test_unknown_command_rejected(self, capsys):
        assert repro_main(["bogus"]) == 2
        assert "unknown command" in capsys.readouterr().err


class TestBatchCommand:
    def test_small_fleet_runs(self, capsys):
        exit_code = repro_main(
            ["batch", "--count", "5", "--seed", "0", "--limit", "2"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Batch of 5 jobs" in out
        assert "model cache" in out

    def test_jsonl_archive_written(self, tmp_path, capsys):
        target = tmp_path / "fleet.jsonl"
        exit_code = batch_main(
            ["--count", "4", "--no-builtins", "--out", str(target)]
        )
        assert exit_code == 0
        assert "archived" in capsys.readouterr().out
        assert len(target.read_text().splitlines()) == 4

    def test_bad_count_reported(self, capsys):
        assert batch_main(["--count", "0"]) == 1
        assert "count" in capsys.readouterr().err


class TestPowerCsv:
    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,watts\nx,1\n")
        with pytest.raises(ReproError, match="columns"):
            load_power_csv(path)

    def test_bad_number_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("core,test_w,functional_w\nx,ten,1\n")
        with pytest.raises(ReproError, match="bad number"):
            load_power_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("core,test_w,functional_w\n")
        with pytest.raises(ReproError, match="no cores"):
            load_power_csv(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_power_csv(tmp_path / "nope.csv")

"""Integration tests for the repro-schedule CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import (
    batch_main,
    load_power_csv,
    main,
    metrics_main,
    parse_solver_params,
    report_main,
    repro_main,
    solve_main,
    submit_main,
    top_main,
)
from repro.errors import ReproError
from repro.floorplan.generator import grid_floorplan
from repro.floorplan.hotspot_format import write_flp


@pytest.fixture()
def custom_soc_files(tmp_path):
    """A 2x2 grid .flp plus a matching power CSV."""
    flp = tmp_path / "chip.flp"
    write_flp(grid_floorplan(2, 2), flp)
    powers = tmp_path / "powers.csv"
    powers.write_text(
        "core,test_w,functional_w\n"
        "C0_0,30.0,10.0\nC0_1,25.0,8.0\nC1_0,28.0,9.0\nC1_1,26.0,7.0\n"
    )
    return flp, powers


class TestBuiltinSoc:
    def test_alpha15_run(self, capsys):
        exit_code = main(["--soc", "alpha15", "--tl", "165", "--stcl", "60"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Thermal-aware schedule" in out
        assert "SAFE" in out
        assert "utilisation" in out

    def test_gantt_and_heatmap_flags(self, capsys):
        exit_code = main(
            ["--soc", "alpha15", "--tl", "175", "--stcl", "40",
             "--gantt", "--heatmap"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Gantt" in out
        assert "scale:" in out  # heatmap footer

    def test_save_json(self, tmp_path, capsys):
        target = tmp_path / "run.json"
        exit_code = main(
            ["--soc", "alpha15", "--tl", "165", "--stcl", "60",
             "--save", str(target)]
        )
        assert exit_code == 0
        data = json.loads(target.read_text())
        assert data["tl_c"] == 165.0

    def test_missing_limits_is_an_error(self, capsys):
        exit_code = main(["--soc", "alpha15", "--tl", "165"])
        assert exit_code == 1
        assert "stcl" in capsys.readouterr().err.lower()


class TestCustomSoc:
    def test_flp_plus_csv_flow(self, custom_soc_files, capsys):
        flp, powers = custom_soc_files
        exit_code = main(
            ["--flp", str(flp), "--powers", str(powers),
             "--tl", "140", "--auto-stcl", "2.0"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "auto-derived STCL" in out
        assert "SAFE" in out

    def test_missing_powers_is_an_error(self, custom_soc_files, capsys):
        flp, _ = custom_soc_files
        exit_code = main(["--flp", str(flp), "--tl", "140", "--stcl", "10"])
        assert exit_code == 1
        assert "powers" in capsys.readouterr().err

    def test_infeasible_core_reports_cleanly(self, custom_soc_files, capsys):
        flp, powers = custom_soc_files
        # TL below what any core reaches alone -> CoreThermalViolation.
        exit_code = main(
            ["--flp", str(flp), "--powers", str(powers),
             "--tl", "50", "--auto-stcl", "2.0"]
        )
        assert exit_code == 1
        assert "tested" in capsys.readouterr().err


class TestReproDispatcher:
    def test_schedule_subcommand_delegates(self, capsys):
        exit_code = repro_main(
            ["schedule", "--soc", "alpha15", "--tl", "165", "--stcl", "60"]
        )
        assert exit_code == 0
        assert "Thermal-aware schedule" in capsys.readouterr().out

    def test_no_command_is_usage_error(self, capsys):
        assert repro_main([]) == 2
        assert "usage: repro" in capsys.readouterr().out

    def test_help_exits_zero(self, capsys):
        assert repro_main(["--help"]) == 0
        assert "batch" in capsys.readouterr().out

    def test_unknown_command_rejected(self, capsys):
        assert repro_main(["bogus"]) == 2
        assert "unknown command" in capsys.readouterr().err


class TestBatchCommand:
    def test_small_fleet_runs(self, capsys):
        exit_code = repro_main(
            ["batch", "--count", "5", "--seed", "0", "--limit", "2"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Batch of 5 jobs" in out
        assert "model cache" in out

    def test_jsonl_archive_written(self, tmp_path, capsys):
        target = tmp_path / "fleet.jsonl"
        exit_code = batch_main(
            ["--count", "4", "--no-builtins", "--out", str(target)]
        )
        assert exit_code == 0
        assert "archived" in capsys.readouterr().out
        assert len(target.read_text().splitlines()) == 4

    def test_bad_count_reported(self, capsys):
        assert batch_main(["--count", "0"]) == 1
        assert "count" in capsys.readouterr().err


class TestPowerCsv:
    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("name,watts\nx,1\n")
        with pytest.raises(ReproError, match="columns"):
            load_power_csv(path)

    def test_bad_number_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("core,test_w,functional_w\nx,ten,1\n")
        with pytest.raises(ReproError, match="bad number"):
            load_power_csv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("core,test_w,functional_w\n")
        with pytest.raises(ReproError, match="no cores"):
            load_power_csv(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_power_csv(tmp_path / "nope.csv")


class TestSolveCommand:
    def test_builtin_thermal_aware(self, capsys):
        exit_code = solve_main(["--soc", "alpha15", "--tl", "165", "--stcl", "60"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "thermal_aware solve" in out
        assert "hot-spot rate 0%" in out

    def test_solver_switch_power_constrained(self, capsys):
        exit_code = solve_main(
            ["--soc", "alpha15", "--tl", "165",
             "--solver", "power_constrained", "--param", "power_limit_w=60"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "power_constrained solve" in out
        assert "power_limit_w=60.0" in out

    def test_scenario_flags(self, capsys):
        exit_code = solve_main(
            ["--kind", "grid", "--rows", "2", "--cols", "2",
             "--tl-headroom", "1.3", "--stcl-headroom", "2.0", "--gantt"]
        )
        assert exit_code == 0
        assert "Gantt" in capsys.readouterr().out

    def test_save_json(self, tmp_path, capsys):
        target = tmp_path / "solve.json"
        exit_code = solve_main(
            ["--soc", "alpha15", "--tl", "165", "--solver", "sequential",
             "--save", str(target)]
        )
        assert exit_code == 0
        data = json.loads(target.read_text())
        assert data["tl_c"] == 165.0
        assert data["stcl"] is None  # baselines run without an STCL

    def test_requires_one_system_source(self, capsys):
        exit_code = solve_main(["--tl", "165"])
        assert exit_code == 1
        assert "--soc or --kind" in capsys.readouterr().err

    def test_bad_param_syntax_reported(self, capsys):
        exit_code = solve_main(
            ["--soc", "alpha15", "--tl", "165", "--param", "oops"]
        )
        assert exit_code == 1
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_unknown_param_reported(self, capsys):
        exit_code = solve_main(
            ["--soc", "alpha15", "--tl", "165", "--stcl", "60",
             "--param", "bogus=1"]
        )
        assert exit_code == 1
        assert "does not accept" in capsys.readouterr().err

    def test_umbrella_delegates(self, capsys):
        exit_code = repro_main(
            ["solve", "--soc", "alpha15", "--tl", "165", "--stcl", "60"]
        )
        assert exit_code == 0
        assert "thermal_aware solve" in capsys.readouterr().out


class TestBatchSolverSwitch:
    @pytest.mark.parametrize("solver", ["power_constrained", "sequential"])
    def test_fleet_with_alternate_solver(self, solver, tmp_path, capsys):
        target = tmp_path / "fleet.jsonl"
        exit_code = batch_main(
            ["--count", "4", "--seed", "0", "--solver", solver,
             "--out", str(target)]
        )
        assert exit_code == 0
        records = [json.loads(line) for line in target.read_text().splitlines()]
        assert len(records) == 4
        assert {r["spec"]["solver"] for r in records} == {solver}
        assert all(r["status"] == "ok" for r in records)

    def test_solver_param_forwarded(self, tmp_path):
        target = tmp_path / "fleet.jsonl"
        exit_code = batch_main(
            ["--count", "3", "--no-builtins", "--solver", "power_constrained",
             "--param", "sort_descending=false", "--out", str(target)]
        )
        assert exit_code == 0
        records = [json.loads(line) for line in target.read_text().splitlines()]
        assert all(
            r["spec"]["solver_params"] == {"sort_descending": False}
            for r in records
        )


class TestParseSolverParams:
    def test_type_coercion(self):
        params = parse_solver_params(
            ["cap=45.5", "count=3", "flag=true", "off=False", "name=ffd"]
        )
        assert params == {
            "cap": 45.5, "count": 3, "flag": True, "off": False, "name": "ffd"
        }

    def test_rejects_missing_equals(self):
        with pytest.raises(ReproError, match="KEY=VALUE"):
            parse_solver_params(["nope"])


class TestPythonDashM:
    @staticmethod
    def _run(*args: str):
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env=env,
        )

    def test_module_entry_point_runs(self):
        proc = self._run("--help")
        assert proc.returncode == 0
        assert "repro solve" in proc.stdout

    def test_module_entry_point_solves(self):
        proc = self._run(
            "solve", "--soc", "alpha15", "--tl", "165", "--solver", "sequential"
        )
        assert proc.returncode == 0
        assert "sequential solve" in proc.stdout


class TestBadParamValues:
    def test_bad_value_reported_not_traceback(self, capsys):
        exit_code = solve_main(
            ["--soc", "alpha15", "--tl", "165", "--stcl", "60",
             "--param", "weight_factor=abc"]
        )
        assert exit_code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "rejected params" in err


@pytest.fixture()
def live_server():
    """A real ScheduleService + TCP server on a background event loop."""
    import asyncio
    import threading

    from repro.service import ScheduleServer, ScheduleService

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    async def boot():
        service = ScheduleService(backend="thread", max_workers=2)
        await service.start()
        server = ScheduleServer(service, host="127.0.0.1", port=0)
        await server.start()
        return service, server

    service, server = asyncio.run_coroutine_threadsafe(boot(), loop).result(30)
    try:
        yield server.port
    finally:
        async def teardown():
            await server.stop()
            await service.stop(drain=True)

        asyncio.run_coroutine_threadsafe(teardown(), loop).result(60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join()
        loop.close()


class TestSubmitCommand:
    def test_single_request_prints_full_report(self, live_server, capsys):
        exit_code = submit_main(
            ["--port", str(live_server), "--soc", "worked-example6",
             "--tl", "80", "--stcl", "60"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "thermal_aware solve" in out
        assert "1/1 requests answered ok" in out

    def test_repeat_burst_is_deduplicated_serverside(self, live_server, capsys):
        exit_code = submit_main(
            ["--port", str(live_server), "--soc", "worked-example6",
             "--tl", "81", "--stcl", "60", "--repeat", "4", "--stats"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert out.count("length") == 4
        assert "service stats:" in out
        assert "4/4 requests answered ok" in out

    def test_infeasible_request_reports_error_and_fails(
        self, live_server, capsys
    ):
        exit_code = submit_main(
            ["--port", str(live_server), "--soc", "worked-example6",
             "--tl", "30", "--stcl", "60"]
        )
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "CoreThermalViolation" in captured.err
        assert "0/1 requests answered ok" in captured.out

    def test_requests_file_submits_every_record(
        self, live_server, tmp_path, capsys
    ):
        from repro.api import ScheduleRequest, request_to_dict

        path = tmp_path / "requests.jsonl"
        records = [
            request_to_dict(
                ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)
            ),
            request_to_dict(
                ScheduleRequest(
                    soc="worked_example6", tl_c=80.0, solver="sequential"
                )
            ),
        ]
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        exit_code = submit_main(
            ["--port", str(live_server), "--requests", str(path)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "2/2 requests answered ok" in out
        assert "sequential" in out
        # --repeat multiplies the file's records too.
        assert submit_main(
            ["--port", str(live_server), "--requests", str(path),
             "--repeat", "2"]
        ) == 0
        assert "4/4 requests answered ok" in capsys.readouterr().out

    def test_requests_file_conflicts_with_request_flags(
        self, tmp_path, capsys
    ):
        path = tmp_path / "requests.jsonl"
        path.write_text("{}\n")
        exit_code = submit_main(
            ["--requests", str(path), "--soc", "alpha15"]
        )
        assert exit_code == 1
        assert "--requests replaces" in capsys.readouterr().err

    def test_unreachable_service_is_a_clean_error(self, capsys):
        exit_code = submit_main(
            ["--port", "1", "--soc", "worked-example6",
             "--tl", "80", "--stcl", "60"]
        )
        assert exit_code == 1
        assert "cannot connect" in capsys.readouterr().err

    def test_bad_repeat_rejected(self, capsys):
        exit_code = submit_main(
            ["--repeat", "0", "--soc", "worked-example6",
             "--tl", "80", "--stcl", "60"]
        )
        assert exit_code == 1
        assert "--repeat" in capsys.readouterr().err


class TestReportCommand:
    def test_batch_archive_summary(self, tmp_path, capsys):
        archive = tmp_path / "fleet.jsonl"
        assert batch_main(
            ["--count", "3", "--no-builtins", "--out", str(archive)]
        ) == 0
        capsys.readouterr()  # drop the batch output
        assert report_main([str(archive)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("solver")
        assert "thermal_aware" in out
        assert "3 records over 1 solvers" in out

    def test_missing_archive_is_a_clean_error(self, tmp_path, capsys):
        exit_code = report_main([str(tmp_path / "nope.jsonl")])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "cannot load" in captured.err
        assert "Traceback" not in captured.err

    def test_empty_archive_reports_no_records_cleanly(self, tmp_path, capsys):
        """A freshly created (or blank-lines-only) archive is a state,
        not an error: say "no records", exit 0, print no empty table."""
        empty = tmp_path / "served.jsonl"
        empty.write_text("")
        assert report_main([str(empty)]) == 0
        captured = capsys.readouterr()
        assert "no records" in captured.out
        assert str(empty) in captured.out
        assert "solver" not in captured.out  # no headers-only table
        assert captured.err == ""

        blank = tmp_path / "blank.jsonl"
        blank.write_text("\n\n")
        assert report_main([str(empty), str(blank)]) == 0
        assert "no records" in capsys.readouterr().out

    def test_idle_service_archive_reports_no_records(self, tmp_path, capsys):
        """The exact boot-window state: `repro serve --archive` has
        constructed its archive but nothing has resolved yet."""
        from repro.service import ReportArchive

        archive = tmp_path / "served.jsonl"
        ReportArchive(archive)  # what service construction does
        assert archive.exists()
        assert report_main([str(archive)]) == 0
        assert "no records" in capsys.readouterr().out


class TestMetricsCommand:
    def test_scrape_prints_prometheus_text(self, live_server, capsys):
        submit_main(
            ["--port", str(live_server), "--soc", "worked-example6",
             "--tl", "80", "--stcl", "60", "--quiet"]
        )
        assert metrics_main(["--port", str(live_server)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_submitted_total counter" in out
        assert "repro_submitted_total 1" in out
        assert "# TYPE repro_solve_seconds summary" in out
        assert "repro_solve_seconds_count 1" in out
        assert 'repro_e2e_seconds{quantile="0.95"}' in out

    def test_no_server_is_a_clean_error(self, capsys):
        assert metrics_main(["--port", "1"]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestTopCommand:
    def test_single_frame_renders_dashboard(self, live_server, capsys):
        submit_main(
            ["--port", str(live_server), "--soc", "worked-example6",
             "--tl", "80", "--stcl", "60", "--quiet"]
        )
        exit_code = top_main(
            ["--port", str(live_server), "--count", "1", "--no-clear"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "repro top — backend 'thread'" in out
        assert "queue   [" in out and "workers [" in out
        assert "1 submitted" in out
        assert "end-to-end" in out  # latency table populated
        assert "\x1b[2J" not in out  # --no-clear really appends

    def test_nonpositive_interval_is_a_clean_error(self, capsys):
        assert top_main(["--interval", "0"]) == 1
        assert "interval" in capsys.readouterr().err

    def test_no_server_is_a_clean_error(self, capsys):
        assert top_main(["--port", "1", "--count", "1"]) == 1
        assert capsys.readouterr().err.startswith("error:")


def boot_serve_subprocess(extra_args):
    """Spawn ``repro serve --port 0 ...``; return (proc, port) once the
    listening banner appears.  One launcher for every subprocess serve
    test, so the banner format and env plumbing live in one place."""
    import os
    import pathlib
    import re
    import subprocess
    import sys

    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
    assert match, f"no listening banner in {line!r}"
    return proc, int(match.group(1))


def drain_serve_subprocess(proc):
    """SIGINT the serve subprocess, wait for a clean exit, and return
    the rest of its stdout (the drain banner + final metrics)."""
    import signal
    import subprocess

    proc.send_signal(signal.SIGINT)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise
    rest = proc.stdout.read()
    proc.stdout.close()
    assert proc.returncode == 0
    return rest


class TestServeCommandSubprocess:
    def test_serve_drains_on_sigint(self, tmp_path):
        """`repro serve` end to end: boot, answer over TCP, drain."""
        archive = tmp_path / "out" / "served.jsonl"
        proc, port = boot_serve_subprocess(
            ["--workers", "2", "--archive", str(archive)]
        )
        try:
            exit_code = submit_main(
                ["--port", str(port), "--soc", "worked-example6",
                 "--tl", "80", "--stcl", "60", "--repeat", "3", "--quiet"]
            )
            assert exit_code == 0
        finally:
            rest = drain_serve_subprocess(proc)
        assert "draining..." in rest
        assert "schedule service on backend" in rest
        # The archive (in a fresh directory) holds one record per
        # solve: between 1 (all three submits overlapped in flight and
        # deduped) and 3 (none overlapped — dedup is in-flight only,
        # so timing decides), never one per waiter beyond that.
        assert archive.exists()
        records = archive.read_text().strip().splitlines()
        assert 1 <= len(records) <= 3
        assert all('"status":"ok"' in line for line in records)


class TestServeFlags:
    def test_warm_from_conflicts_with_no_answer_cache(self, tmp_path, capsys):
        from repro.cli import serve_main

        exit_code = serve_main(
            ["--port", "0", "--no-answer-cache",
             "--warm-from", str(tmp_path / "x.jsonl")]
        )
        assert exit_code == 1
        assert "warm_from" in capsys.readouterr().err

    def test_warm_from_missing_archive_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import serve_main

        exit_code = serve_main(
            ["--port", "0", "--warm-from", str(tmp_path / "missing.jsonl")]
        )
        assert exit_code == 1
        assert "cannot load" in capsys.readouterr().err

    def test_bad_min_workers_is_a_clean_error(self, capsys):
        from repro.cli import serve_main

        exit_code = serve_main(
            ["--port", "0", "--workers", "2", "--min-workers", "5"]
        )
        assert exit_code == 1
        assert "min_workers" in capsys.readouterr().err

    def test_negative_answer_ttl_is_a_clean_error(self, capsys):
        """Only exactly 0 means never-expires; a typoed sign must not
        silently pin stale answers forever."""
        from repro.cli import serve_main

        exit_code = serve_main(["--port", "0", "--answer-ttl", "-300"])
        assert exit_code == 1
        assert "ttl_s" in capsys.readouterr().err


class TestWarmStartSubprocess:
    def test_serve_warm_from_hits_cache_over_tcp(self, tmp_path):
        """Archive a solve, reboot warm, assert the first TCP answer is
        a cache hit (no solve) — the `--warm-from` aha moment."""
        archive = tmp_path / "served.jsonl"
        request_flags = ["--soc", "worked-example6", "--tl", "80", "--stcl", "60"]

        # First life: answer once, archive the outcome.
        proc, port = boot_serve_subprocess(
            ["--workers", "2", "--archive", str(archive)]
        )
        try:
            assert submit_main(
                ["--port", str(port), *request_flags, "--quiet"]
            ) == 0
        finally:
            drain_serve_subprocess(proc)
        assert archive.exists()

        # Second life: warm-started — the very same question must be
        # answered from the cache without a single solve.
        proc, port = boot_serve_subprocess(
            ["--workers", "2", "--warm-from", str(archive)]
        )
        try:
            import io
            from contextlib import redirect_stdout

            buffer = io.StringIO()
            with redirect_stdout(buffer):
                exit_code = submit_main(
                    ["--port", str(port), *request_flags, "--quiet", "--stats"]
                )
            assert exit_code == 0
            stats_line = buffer.getvalue()
            assert "answer_hits=1" in stats_line
            assert "solves_started=0" in stats_line
        finally:
            rest = drain_serve_subprocess(proc)
        assert "1 answer-cache hits" in rest


class TestServeObservabilityFlags:
    def test_log_json_and_slow_request_ms_write_event_trail(self, tmp_path):
        log_path = tmp_path / "events.jsonl"
        proc, port = boot_serve_subprocess(
            ["--workers", "2", "--log-json", str(log_path),
             "--slow-request-ms", "0.001"]
        )
        try:
            assert submit_main(
                ["--port", str(port), "--soc", "worked-example6",
                 "--tl", "80", "--stcl", "60", "--quiet"]
            ) == 0
        finally:
            drain_serve_subprocess(proc)
        events = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        names = [e["event"] for e in events]
        assert "request_admitted" in names
        assert "request_completed" in names
        assert "slow_request" in names  # sub-microsecond threshold
        completed = next(
            e for e in events if e["event"] == "request_completed"
        )
        assert "service_total" in completed["timings"]

    def test_negative_slow_threshold_is_a_clean_error(self, capsys):
        from repro.cli import serve_main

        exit_code = serve_main(["--port", "0", "--slow-request-ms", "-5"])
        assert exit_code == 1
        assert "slow_request_ms" in capsys.readouterr().err


class TestUmbrellaUsage:
    def test_usage_lists_service_commands(self, capsys):
        assert repro_main([]) == 2
        out = capsys.readouterr().out
        for command in ("serve", "submit", "metrics", "top", "report"):
            assert f"repro {command}" in out

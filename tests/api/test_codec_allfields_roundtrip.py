"""Every dataclass field rides every serialization path, simultaneously.

The codec-drift lint proves this statically; these tests prove it
dynamically, by introspecting the dataclasses with
``dataclasses.fields`` — so a future field addition that misses a
codec fails here without anyone editing the test.  Three paths are
exercised on the same objects:

* the dict codecs (``*_to_dict`` / ``*_from_dict``),
* a JSONL hop (``json.dumps`` one line, ``json.loads`` it back),
* the wire frames (``submit_frame``/``parse_submit_frame`` and
  ``report_frame``), which must embed the dict codecs.

Plus the back-compat promise: records written before the ``timings``
and ``cached`` fields existed keep loading forever.
"""

from __future__ import annotations

import dataclasses
import json
import math

from repro.api import ScheduleRequest, solve
from repro.api.request import (
    SolveReport,
    report_from_dict,
    report_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.core.serialize import result_to_dict
from repro.engine.jobs import (
    JobResult,
    JobSpec,
    job_result_from_dict,
    job_result_to_dict,
    job_spec_from_dict,
    job_spec_to_dict,
)
from repro.engine.scenarios import ScenarioSpec
from repro.service.protocol import (
    parse_submit_frame,
    report_frame,
    submit_frame,
)

REQUEST = ScheduleRequest(
    soc="worked_example6",
    tl_c=80.0,
    stcl=60.0,
    params={"weight_factor": 1.5},
)

GRID = ScenarioSpec(kind="grid", rows=2, cols=2, power_seed=11)
JOB = JobSpec(job_id="j0", scenario=GRID, tl_c=160.0, stcl=60.0)


def jsonl_hop(payload: dict) -> dict:
    """One archive line there and back (strict JSON enforced)."""
    line = json.dumps(payload, separators=(",", ":"))
    assert "\n" not in line
    assert "NaN" not in line and "Infinity" not in line
    return json.loads(line)


def field_values(obj):
    return {
        f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)
    }


def assert_reports_equal(a: SolveReport, b: SolveReport) -> None:
    """Field-by-field equality, future fields included automatically."""
    for name, value in field_values(a).items():
        other = getattr(b, name)
        if name == "result":
            assert result_to_dict(other) == result_to_dict(value), name
        elif name == "stcl":
            assert (
                math.isnan(other)
                if math.isnan(value)
                else other == value
            ), name
        else:
            assert other == value, name


class TestRequestAllFields:
    def test_every_field_appears_in_the_dict_form(self):
        data = request_to_dict(REQUEST)
        for f in dataclasses.fields(ScheduleRequest):
            assert f.name in data, f.name

    def test_dict_jsonl_and_wire_agree(self):
        via_dict = request_from_dict(jsonl_hop(request_to_dict(REQUEST)))
        frame = jsonl_hop(submit_frame("f1", REQUEST, timeout_s=2.5))
        via_wire, timeout_s, _ = parse_submit_frame(frame)
        assert via_dict == REQUEST  # frozen dataclass equality: all fields
        assert via_wire == REQUEST
        assert timeout_s == 2.5


class TestReportAllFields:
    def test_every_field_appears_in_the_dict_form(self):
        report = solve(REQUEST)
        data = report_to_dict(report)
        for f in dataclasses.fields(SolveReport):
            assert f.name in data, f.name

    def test_dict_jsonl_and_wire_agree(self):
        report = solve(REQUEST)
        assert report.timings is not None  # the traced path is exercised

        via_dict = report_from_dict(jsonl_hop(report_to_dict(report)))
        assert_reports_equal(via_dict, report)

        frame = jsonl_hop(report_frame("f2", report))
        assert frame["request_hash"] == report.request_hash
        via_wire = report_from_dict(frame["report"])
        assert_reports_equal(via_wire, report)

        # The wire payload IS the dict codec's payload: no forked format.
        assert frame["report"] == jsonl_hop(report_to_dict(report))


class TestJobAllFields:
    def test_spec_every_field_round_trips(self):
        data = jsonl_hop(job_spec_to_dict(JOB))
        for f in dataclasses.fields(JobSpec):
            assert f.name in data, f.name
        assert job_spec_from_dict(data) == JOB

    def test_result_every_field_round_trips(self):
        from repro.engine import run_job

        result = run_job(JOB)
        assert result.status == "ok"
        data = jsonl_hop(job_result_to_dict(result))
        for f in dataclasses.fields(JobResult):
            assert f.name in data, f.name
        loaded = job_result_from_dict(data, soc=GRID.build_soc())
        for name, value in field_values(result).items():
            other = getattr(loaded, name)
            if name == "spec":
                assert other == value, name
            elif name == "result":
                assert result_to_dict(other) == result_to_dict(value), name
            else:
                assert other == value, name


class TestPreTimingsBackCompat:
    def test_record_predating_timings_and_cached_loads(self):
        report = solve(REQUEST)
        data = report_to_dict(report)
        # What a PR-5-era writer produced: neither field exists yet.
        del data["timings"]
        del data["cached"]
        loaded = report_from_dict(jsonl_hop(data))
        assert loaded.timings is None
        assert loaded.cached is False
        assert result_to_dict(loaded.result) == result_to_dict(report.result)

    def test_old_wire_frame_still_parses(self):
        frame = submit_frame("f3", REQUEST)
        frame["request"].pop("params")  # a pre-params submitter
        request, _, _ = parse_submit_frame(jsonl_hop(frame))
        assert request.params == {}

"""ScheduleRequest validation and serialisation."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.api import ScheduleRequest, request_from_dict, request_to_dict
from repro.engine import ScenarioSpec
from repro.errors import RequestError

GRID = ScenarioSpec(kind="grid", rows=2, cols=2)


class TestValidation:
    def test_exactly_one_system_source(self):
        with pytest.raises(RequestError, match="exactly one"):
            ScheduleRequest(tl_c=100.0)
        with pytest.raises(RequestError, match="exactly one"):
            ScheduleRequest(soc="alpha15", scenario=GRID, tl_c=100.0)

    def test_unknown_builtin_rejected(self):
        with pytest.raises(RequestError, match="unknown built-in"):
            ScheduleRequest(soc="omega99", tl_c=100.0)

    def test_hyphenated_builtin_canonicalised(self):
        request = ScheduleRequest(soc="worked-example6", tl_c=100.0)
        assert request.soc == "worked_example6"

    def test_exactly_one_tl_source(self):
        with pytest.raises(RequestError, match="tl_c / tl_headroom"):
            ScheduleRequest(soc="alpha15")
        with pytest.raises(RequestError, match="tl_c / tl_headroom"):
            ScheduleRequest(soc="alpha15", tl_c=100.0, tl_headroom=1.2)

    def test_tl_headroom_must_exceed_one(self):
        with pytest.raises(RequestError, match="> 1"):
            ScheduleRequest(soc="alpha15", tl_headroom=0.9)

    def test_stcl_pair_is_exclusive(self):
        with pytest.raises(RequestError, match="at most one"):
            ScheduleRequest(
                soc="alpha15", tl_c=100.0, stcl=60.0, stcl_headroom=2.0
            )

    def test_stcl_must_be_positive(self):
        with pytest.raises(RequestError, match="positive"):
            ScheduleRequest(soc="alpha15", tl_c=100.0, stcl=-1.0)

    def test_solver_name_required(self):
        with pytest.raises(RequestError, match="solver"):
            ScheduleRequest(soc="alpha15", tl_c=100.0, solver="")

    def test_params_default_to_fresh_dict(self):
        a = ScheduleRequest(soc="alpha15", tl_c=100.0)
        b = ScheduleRequest(soc="alpha15", tl_c=100.0)
        assert a.params == {}
        assert a.params is not b.params

    def test_has_stcl(self):
        assert ScheduleRequest(soc="alpha15", tl_c=100.0, stcl=60.0).has_stcl
        assert ScheduleRequest(
            soc="alpha15", tl_c=100.0, stcl_headroom=2.0
        ).has_stcl
        assert not ScheduleRequest(soc="alpha15", tl_c=100.0).has_stcl


class TestRoundTrip:
    def test_dict_round_trip_builtin(self):
        request = ScheduleRequest(
            soc="alpha15", tl_c=165.0, stcl=60.0, params={"weight_factor": 1.2}
        )
        assert request_from_dict(request_to_dict(request)) == request

    def test_jsonl_round_trip_scenario(self):
        request = ScheduleRequest(
            scenario=GRID,
            tl_headroom=1.2,
            stcl_headroom=2.0,
            solver="power_constrained",
            params={"power_limit_w": 45.0},
        )
        line = json.dumps(request_to_dict(request))
        assert request_from_dict(json.loads(line)) == request

    def test_unknown_schema_version_rejected(self):
        data = request_to_dict(ScheduleRequest(soc="alpha15", tl_c=100.0))
        data["schema_version"] = 99
        with pytest.raises(RequestError, match="schema version"):
            request_from_dict(data)

    def test_picklable(self):
        request = ScheduleRequest(scenario=GRID, tl_headroom=1.2, stcl_headroom=2.0)
        assert pickle.loads(pickle.dumps(request)) == request


class TestDescribe:
    def test_mentions_solver_system_and_limits(self):
        text = ScheduleRequest(
            soc="alpha15", tl_c=165.0, stcl=60.0, solver="thermal_aware"
        ).describe()
        assert "thermal_aware" in text
        assert "alpha15" in text
        assert "165" in text


class TestHashability:
    def test_requests_are_hashable_despite_params_dict(self):
        a = ScheduleRequest(scenario=GRID, tl_c=100.0, params={"x": 1})
        b = ScheduleRequest(scenario=GRID, tl_c=100.0, params={"x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_nested_param_values_hash(self):
        request = ScheduleRequest(
            scenario=GRID, tl_c=100.0, params={"pool": [1, 2], "cfg": {"k": 3}}
        )
        assert isinstance(hash(request), int)

    def test_params_cannot_be_mutated_in_place(self):
        request = ScheduleRequest(scenario=GRID, tl_c=100.0, params={"x": 1})
        with pytest.raises(TypeError, match="immutable"):
            request.params["x"] = 2
        with pytest.raises(TypeError, match="immutable"):
            request.params.clear()
        assert hash(request) == hash(
            ScheduleRequest(scenario=GRID, tl_c=100.0, params={"x": 1})
        )

"""The shared solver contract: every registered solver honours it.

One parametrised suite runs each registered solver over the same small
SoC and asserts the uniform promises of the API: a valid partitioned
schedule comes back, report fields are populated, the request
round-trips through JSONL, and parameter validation rejects junk
before any thermal work happens.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.api import (
    ScheduleRequest,
    Workbench,
    available_solvers,
    get_solver,
    request_from_dict,
    request_to_dict,
)
from repro.engine import ScenarioSpec
from repro.errors import RequestError

#: Small enough for the exact solver, rich enough to need >1 session
#: under a tight limit.
SCENARIO = ScenarioSpec(kind="grid", rows=2, cols=2, power_seed=7)


def contract_request(solver: str) -> ScheduleRequest:
    """The shared question every solver is asked."""
    return ScheduleRequest(
        scenario=SCENARIO,
        tl_headroom=1.25,
        stcl_headroom=2.0,
        solver=solver,
    )


@pytest.fixture(scope="module")
def workbench():
    return Workbench()


@pytest.mark.parametrize("solver", available_solvers())
class TestSolverContract:
    def test_solves_small_soc(self, workbench, solver):
        report = workbench.solve(contract_request(solver))
        soc = report.schedule.soc

        assert report.solver == solver
        # The schedule is a partition of the core set (TestSchedule
        # validates this on construction; assert the coverage anyway).
        scheduled = {c for s in report.schedule for c in s.cores}
        assert scheduled == set(soc.core_names)

        # Uniform report fields are populated.
        assert report.length_s > 0.0
        assert report.n_sessions >= 1
        assert math.isfinite(report.max_temperature_c)
        assert math.isfinite(report.tl_c) and report.tl_c > 0.0
        assert 0.0 <= report.hot_spot_rate <= 1.0
        assert report.steady_solves > 0
        assert report.elapsed_s >= 0.0
        assert report.result.schedule is report.schedule
        assert isinstance(report.extras, dict)

        # Every session carries simulated temperatures, whichever
        # solver produced it (baselines are annotated post hoc).
        for session in report.schedule:
            assert not math.isnan(session.max_temperature_c)

    def test_request_jsonl_round_trips(self, workbench, solver):
        request = contract_request(solver)
        line = json.dumps(request_to_dict(request))
        assert request_from_dict(json.loads(line)) == request

    def test_unknown_params_rejected(self, workbench, solver):
        request = contract_request(solver)
        bad = ScheduleRequest(
            scenario=request.scenario,
            tl_headroom=request.tl_headroom,
            stcl_headroom=request.stcl_headroom,
            solver=solver,
            params={"definitely_not_a_param": 1},
        )
        with pytest.raises(RequestError, match="does not accept"):
            workbench.solve(bad)

    def test_registry_lookup(self, workbench, solver):
        assert get_solver(solver).name == solver


class TestRegistry:
    def test_available_solvers_sorted_and_complete(self):
        names = available_solvers()
        assert names == sorted(names)
        assert {
            "thermal_aware",
            "power_constrained",
            "sequential",
            "random",
            "optimal",
        } <= set(names)

    def test_unknown_solver_lists_alternatives(self):
        with pytest.raises(RequestError, match="available:"):
            get_solver("does_not_exist")


class TestSolverSemantics:
    """Spot checks that the wrappers preserve each algorithm's meaning."""

    def test_thermal_aware_stays_under_limit(self, workbench):
        report = workbench.solve(contract_request("thermal_aware"))
        assert report.max_temperature_c < report.tl_c
        assert report.hot_spot_rate == 0.0

    def test_sequential_is_one_core_per_session(self, workbench):
        report = workbench.solve(contract_request("sequential"))
        assert all(len(s) == 1 for s in report.schedule)

    def test_power_constrained_reports_derived_cap(self, workbench):
        report = workbench.solve(contract_request("power_constrained"))
        assert report.extras["power_limit_w"] > 0.0

    def test_power_constrained_honours_explicit_cap(self, workbench):
        request = ScheduleRequest(
            scenario=SCENARIO,
            tl_headroom=1.25,
            solver="power_constrained",
            params={"power_limit_w": 1e9},
        )
        report = workbench.solve(request)
        assert report.n_sessions == 1  # everything fits one session

    def test_optimal_never_needs_more_sessions_than_heuristic(self, workbench):
        heuristic = workbench.solve(contract_request("thermal_aware"))
        optimal = workbench.solve(contract_request("optimal"))
        assert optimal.n_sessions <= heuristic.n_sessions
        assert optimal.extras["thermal_solve_count"] >= 1

    def test_random_is_deterministic_per_seed(self, workbench):
        request = ScheduleRequest(
            scenario=SCENARIO,
            tl_headroom=1.25,
            solver="random",
            params={"seed": 3},
        )
        first = workbench.solve(request)
        second = workbench.solve(request)
        sessions = lambda r: [tuple(s.cores) for s in r.schedule]  # noqa: E731
        assert sessions(first) == sessions(second)

    def test_thermal_aware_requires_stcl(self, workbench):
        request = ScheduleRequest(
            scenario=SCENARIO, tl_headroom=1.25, solver="thermal_aware"
        )
        with pytest.raises(RequestError, match="needs an STCL"):
            workbench.solve(request)

"""Schema back-compat of the ``timings`` field.

Pre-tracing archives (and wire peers) have no ``timings`` key at all;
records written in between may carry an explicit ``null``.  Both must
keep loading forever — an observability field must never invalidate an
archive.
"""

from __future__ import annotations

import asyncio
import json

from repro.api import ScheduleRequest, solve
from repro.api.request import report_from_dict, report_to_dict
from repro.engine import (
    JobSpec,
    ScenarioSpec,
    job_result_from_dict,
    job_result_to_dict,
    run_job,
)
from repro.service import (
    AnswerCache,
    ReportArchive,
    ScheduleService,
    warm_cache_from_archive,
)

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)


class TestReportTimingsRoundTrip:
    def test_traced_report_round_trips_through_json(self):
        report = solve(REQUEST)
        assert report.timings is not None
        assert "solver" in report.timings
        data = json.loads(json.dumps(report_to_dict(report)))
        loaded = report_from_dict(data)
        assert loaded.timings == report.timings

    def test_pre_tracing_dict_without_key_loads_as_none(self):
        report = solve(REQUEST)
        data = report_to_dict(report)
        del data["timings"]  # what a pre-tracing writer produced
        loaded = report_from_dict(data)
        assert loaded.timings is None
        assert loaded.result is not None

    def test_explicit_null_timings_load_as_none(self):
        data = report_to_dict(solve(REQUEST))
        data["timings"] = None
        assert report_from_dict(data).timings is None

    def test_describe_mentions_phases_only_when_present(self):
        report = solve(REQUEST)
        assert "phases:" in report.describe()
        data = report_to_dict(report)
        del data["timings"]
        assert "phases:" not in report_from_dict(data).describe()


GRID = ScenarioSpec(kind="grid", rows=2, cols=2, power_seed=11)
JOB = JobSpec(job_id="j0", scenario=GRID, tl_c=160.0, stcl=60.0)


class TestJobResultTimingsRoundTrip:
    def test_batch_job_carries_worker_phase_and_round_trips(self):
        result = run_job(JOB)
        assert result.status == "ok"
        assert result.timings is not None
        assert result.timings["worker"] == result.elapsed_s
        assert result.timings["total"] <= result.timings["worker"]
        data = json.loads(json.dumps(job_result_to_dict(result)))
        loaded = job_result_from_dict(data, soc=GRID.build_soc())
        assert loaded.timings == result.timings

    def test_pre_tracing_job_record_loads_as_none(self):
        result = run_job(JOB)
        data = job_result_to_dict(result)
        del data["timings"]
        loaded = job_result_from_dict(data, soc=GRID.build_soc())
        assert loaded.timings is None


class TestWarmStartFromPreTracingArchive:
    def test_old_archive_without_timings_still_warms(self, tmp_path):
        archive_path = tmp_path / "served.jsonl"

        async def serve_once():
            async with ScheduleService(
                backend="thread", archive=ReportArchive(archive_path)
            ) as svc:
                await svc.solve(REQUEST)

        asyncio.run(serve_once())

        # Rewrite the archive as a pre-tracing service would have
        # written it: no timings key anywhere in the record.
        records = [
            json.loads(line)
            for line in archive_path.read_text().splitlines()
        ]
        for record in records:
            record.pop("timings", None)
            if record.get("report"):
                record["report"].pop("timings", None)
        archive_path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )

        cache = AnswerCache(max_entries=8)
        assert warm_cache_from_archive(cache, archive_path) == 1
        stored = cache.get(REQUEST.content_hash())
        assert stored is not None
        assert stored.report.timings is None

"""Randomised JSONL round-trip coverage for requests and reports.

Property: any valid :class:`ScheduleRequest` survives
``request_to_dict -> json -> request_from_dict`` unchanged, with a
stable content hash (the dedup key of the scheduling service) — over
inline scenarios, headroom vs absolute limits and arbitrary solver
params.  Solved (and failed) reports round-trip through the same JSONL
dialect the wire protocol and archives use.
"""

from __future__ import annotations

import dataclasses
import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ScheduleRequest,
    request_from_dict,
    request_to_dict,
    solve,
)
from repro.api.request import report_from_dict, report_to_dict
from repro.engine import ScenarioSpec
from repro.errors import RequestError
from repro.service import outcome_record, solve_request_outcome

# -- strategies -----------------------------------------------------------------------

finite_floats = st.floats(
    min_value=0.1, max_value=1e3, allow_nan=False, allow_infinity=False
)

param_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    finite_floats,
    st.booleans(),
    st.text(max_size=8),
    st.lists(st.integers(min_value=0, max_value=9), max_size=3),
)

params_dicts = st.dictionaries(
    st.text(min_size=1, max_size=12), param_values, max_size=4
)

scenarios = st.builds(
    ScenarioSpec,
    kind=st.sampled_from(["grid", "slicing"]),
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    n_blocks=st.integers(min_value=2, max_value=12),
    floorplan_seed=st.integers(min_value=0, max_value=99),
    power_seed=st.integers(min_value=0, max_value=99),
    power_scale=st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
    test_time_s=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
)


@st.composite
def requests(draw) -> ScheduleRequest:
    if draw(st.booleans()):
        system = {"soc": draw(st.sampled_from(
            ["alpha15", "hypothetical7", "worked_example6"]
        ))}
    else:
        system = {"scenario": draw(scenarios)}
    if draw(st.booleans()):
        tl = {"tl_c": draw(st.floats(min_value=40.0, max_value=250.0,
                                     allow_nan=False))}
    else:
        tl = {"tl_headroom": draw(st.floats(min_value=1.01, max_value=3.0,
                                            allow_nan=False))}
    stcl_choice = draw(st.integers(min_value=0, max_value=2))
    stcl = (
        {}
        if stcl_choice == 0
        else {"stcl": draw(finite_floats)}
        if stcl_choice == 1
        else {"stcl_headroom": draw(finite_floats)}
    )
    return ScheduleRequest(
        **system,
        **tl,
        **stcl,
        solver=draw(st.sampled_from(
            ["thermal_aware", "sequential", "power_constrained", "random",
             "someone_elses_solver"]
        )),
        params=draw(params_dicts),
        include_vertical=draw(st.booleans()),
        stc_scale=draw(st.one_of(st.none(), finite_floats)),
    )


class TestRequestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_jsonl_round_trip_preserves_request_and_hash(self, request_):
        line = json.dumps(request_to_dict(request_))
        loaded = request_from_dict(json.loads(line))
        assert loaded == request_
        assert hash(loaded) == hash(request_)
        assert loaded.content_hash() == request_.content_hash()

    @settings(max_examples=30, deadline=None)
    @given(requests())
    def test_content_hash_is_stable_not_id_based(self, request_):
        clone = request_from_dict(request_to_dict(request_))
        assert clone is not request_
        assert clone.content_hash() == request_.content_hash()

    def test_content_hash_distinguishes_every_field(self):
        base = ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0)
        variants = [
            ScheduleRequest(soc="hypothetical7", tl_c=165.0, stcl=60.0),
            ScheduleRequest(soc="alpha15", tl_c=166.0, stcl=60.0),
            ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=61.0),
            ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0,
                            solver="sequential"),
            ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0,
                            params={"weight_factor": 1.2}),
            ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0,
                            include_vertical=True),
            ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0,
                            stc_scale=2.0),
            dataclasses.replace(base, tl_c=None, tl_headroom=1.5),
        ]
        hashes = {base.content_hash()} | {v.content_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_param_order_does_not_change_hash(self):
        a = ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0,
                            params={"x": 1, "y": 2})
        b = ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0,
                            params={"y": 2, "x": 1})
        assert a.content_hash() == b.content_hash()


@pytest.fixture(scope="module")
def solved_reports():
    """A small spread of real reports (limits styles x solvers)."""
    return [
        solve(ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)),
        solve(ScheduleRequest(soc="worked_example6", tl_c=80.0,
                              solver="sequential")),
        solve(
            ScheduleRequest(
                scenario=ScenarioSpec(kind="grid", rows=2, cols=2),
                tl_headroom=1.3,
                stcl_headroom=2.0,
            )
        ),
        solve(
            ScheduleRequest(
                soc="worked_example6",
                tl_c=80.0,
                solver="power_constrained",
                params={"power_limit_w": 25.0},
            )
        ),
    ]


class TestReportRoundTrip:
    def test_jsonl_round_trip_preserves_report(self, solved_reports):
        for report in solved_reports:
            line = json.dumps(report_to_dict(report))
            loaded = report_from_dict(json.loads(line))
            assert loaded.solver == report.solver
            assert loaded.request == report.request
            assert loaded.request_hash == report.request_hash
            assert loaded.tl_c == pytest.approx(report.tl_c)
            assert (
                math.isnan(loaded.stcl)
                if math.isnan(report.stcl)
                else loaded.stcl == pytest.approx(report.stcl)
            )
            assert loaded.length_s == pytest.approx(report.length_s)
            assert loaded.n_sessions == report.n_sessions
            assert loaded.max_temperature_c == pytest.approx(
                report.max_temperature_c
            )
            assert loaded.steady_solves == report.steady_solves
            assert dict(loaded.extras) == dict(report.extras)

    def test_provenance_mismatch_rejected(self, solved_reports):
        data = report_to_dict(solved_reports[0])
        data["request_hash"] = "0" * 64
        with pytest.raises(RequestError, match="provenance"):
            report_from_dict(data)

    def test_unknown_schema_version_rejected(self, solved_reports):
        data = report_to_dict(solved_reports[0])
        data["schema_version"] = 99
        with pytest.raises(RequestError, match="schema version"):
            report_from_dict(data)

    def test_requestless_reports_cannot_serialise(self, solved_reports):
        report = dataclasses.replace(solved_reports[0], request=None)
        with pytest.raises(RequestError, match="without a request"):
            report_to_dict(report)


class TestErrorRecordRoundTrip:
    def test_error_outcome_record_survives_jsonl(self):
        request = ScheduleRequest(soc="worked_example6", tl_c=30.0, stcl=60.0)
        record = outcome_record(request, solve_request_outcome(request))
        loaded = json.loads(json.dumps(record))
        assert loaded["status"] == "error"
        assert loaded["error_type"] == "CoreThermalViolationError"
        assert loaded["report"] is None
        # The embedded request still loads and re-hashes identically.
        embedded = request_from_dict(loaded["request"])
        assert embedded == request
        assert loaded["request_hash"] == embedded.content_hash()

"""The old constructors keep working — via warning shims at the root.

Direct construction predates the unified solver API; the package root
still serves those names so existing scripts run, but each access
carries a DeprecationWarning pointing at ``solve(request)`` and at the
canonical (non-deprecated) home under ``repro.core``.
"""

from __future__ import annotations

import pytest

import repro
import repro.core


@pytest.mark.parametrize(
    "name",
    [
        "ThermalAwareScheduler",
        "PowerConstrainedScheduler",
        "PowerConstrainedConfig",
        "sequential_schedule",
    ],
)
def test_root_access_warns_and_resolves(name):
    with pytest.warns(DeprecationWarning, match="unified solver API"):
        shimmed = getattr(repro, name)
    assert shimmed is getattr(repro.core, name)


def test_old_scheduler_call_shape_still_works():
    from repro.soc.library import alpha15_soc

    with pytest.warns(DeprecationWarning):
        scheduler_cls = repro.ThermalAwareScheduler
    result = scheduler_cls(alpha15_soc()).schedule(tl_c=175.0, stcl=40.0)
    assert result.max_temperature_c < 175.0


def test_canonical_homes_do_not_warn(recwarn):
    from repro.core.baselines import PowerConstrainedScheduler  # noqa: F401
    from repro.core.scheduler import ThermalAwareScheduler  # noqa: F401

    assert not [w for w in recwarn if w.category is DeprecationWarning]


def test_unknown_root_attribute_still_raises():
    with pytest.raises(AttributeError):
        repro.definitely_not_an_export


def test_reduced_fast_path_names_are_first_class(recwarn):
    """The simulator's fast-path names are canonical, not shims.

    They live at the package root *and* under ``repro.thermal`` with no
    DeprecationWarning on access, and both spellings resolve to the
    same objects — keeping the shim table and the canonical homes in
    sync as the API grows.
    """
    import repro.thermal

    assert repro.BlockTemperatureField is repro.thermal.BlockTemperatureField
    assert repro.ReducedSteadyOperator is repro.thermal.ReducedSteadyOperator
    assert "BlockTemperatureField" in repro.__all__
    assert "ReducedSteadyOperator" in repro.__all__
    for name in (
        "block_steady_state",
        "block_steady_state_batch",
        "reduced_operator",
    ):
        assert hasattr(repro.ThermalSimulator, name)
    assert not [w for w in recwarn if w.category is DeprecationWarning]

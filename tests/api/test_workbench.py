"""Workbench routing: shared cache, solve_soc, fleet dispatch."""

from __future__ import annotations

import math

import pytest

from repro.api import ScheduleRequest, Workbench, default_workbench, solve
from repro.engine import ScenarioSpec, ThermalModelCache, generate_fleet
from repro.errors import RequestError
from repro.soc.library import alpha15_soc

GRID = ScenarioSpec(kind="grid", rows=2, cols=2)
REQUEST = ScheduleRequest(scenario=GRID, tl_headroom=1.3, stcl_headroom=2.0)


class TestCacheSharing:
    def test_second_solve_hits_the_cache(self):
        workbench = Workbench()
        first = workbench.solve(REQUEST)
        second = workbench.solve(REQUEST)
        assert not first.cache_hit
        assert second.cache_hit
        assert workbench.cache.stats.hits == 1

    def test_passed_in_empty_cache_is_used_not_replaced(self):
        cache = ThermalModelCache()
        workbench = Workbench(cache=cache)
        workbench.solve(REQUEST)
        assert workbench.cache is cache
        assert cache.stats.lookups == 1

    def test_use_cache_false_disables_sharing(self):
        workbench = Workbench(use_cache=False)
        assert workbench.cache is None
        report = workbench.solve(REQUEST)
        assert not report.cache_hit

    def test_solvers_share_one_model(self):
        workbench = Workbench()
        workbench.solve(REQUEST)
        baseline = workbench.solve(
            ScheduleRequest(
                scenario=GRID, tl_headroom=1.3, solver="sequential"
            )
        )
        assert baseline.cache_hit


class TestSolveSoc:
    def test_prebuilt_soc_no_request(self):
        workbench = Workbench()
        report = workbench.solve_soc(
            alpha15_soc(), tl_c=170.0, stcl=60.0, stc_scale=0.02
        )
        assert report.request is None
        assert report.n_sessions >= 1

    def test_limit_validation(self):
        workbench = Workbench()
        soc = alpha15_soc()
        with pytest.raises(RequestError, match="exactly one"):
            workbench.solve_soc(soc, stcl=60.0)
        with pytest.raises(RequestError, match="needs an STCL"):
            workbench.solve_soc(soc, tl_c=170.0)
        with pytest.raises(RequestError, match="at most one"):
            workbench.solve_soc(
                soc, tl_c=170.0, stcl=60.0, stcl_headroom=2.0
            )

    def test_baseline_without_stcl_reports_nan(self):
        report = Workbench().solve_soc(
            alpha15_soc(), solver="sequential", tl_c=170.0
        )
        assert math.isnan(report.stcl)
        assert report.n_sessions == 15


class TestHeadroomResolution:
    def test_absolute_and_headroom_agree(self):
        workbench = Workbench()
        headroom = workbench.solve(REQUEST)
        absolute = workbench.solve(
            ScheduleRequest(
                scenario=GRID, tl_c=headroom.tl_c, stcl=headroom.stcl
            )
        )
        assert absolute.length_s == headroom.length_s
        assert absolute.n_sessions == headroom.n_sessions


class TestFleetRouting:
    def test_run_fleet_shares_the_workbench_cache(self, tmp_path):
        workbench = Workbench()
        workbench.solve(
            ScheduleRequest(soc="alpha15", tl_c=170.0, stcl=60.0)
        )
        warm = len(workbench.cache)
        fleet = generate_fleet(4, seed=0)
        batch = workbench.run_fleet(
            fleet, jsonl_path=tmp_path / "fleet.jsonl"
        )
        assert batch.n_jobs == 4
        # The alpha15 job found the model the single solve warmed up.
        assert workbench.cache.stats.hits >= 1
        assert len(workbench.cache) >= warm
        assert (tmp_path / "fleet.jsonl").exists()


class TestModuleLevelSolve:
    def test_solve_uses_one_process_wide_cache(self):
        first = solve(REQUEST)
        second = solve(REQUEST)
        assert second.cache_hit or first.cache_hit  # warmed by any earlier test
        assert default_workbench() is default_workbench()

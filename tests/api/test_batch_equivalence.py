"""Coalesced batch solves must be bit-identical to solo solves.

The service's request coalescer (PR 10) pushes groups of requests
through :func:`repro.api.execute_requests_batch`, which shares SoC
builds, simulator facades and memoised steady-state GEMMs across the
group.  The entire design rests on one property: **sharing must be
observationally invisible**.  These tests state it as a property over
randomly generated floorplans and mixed solvers — every report a batch
returns equals, field for field, the report a solo solve of the same
request returns, including the ``steady_solves`` effort accounting.

Why ``steady_solves`` can match at all: the batch path never *stacks*
requests into one GEMM (BLAS multi-column products are not bitwise
equal to their single-column runs).  It memoises — the first request
needing a given power vector computes it, later ones replay the stored
array — and the simulator facade charges its effort counter on memo
hits too, so each request is billed exactly what it would have spent
alone.
"""

from __future__ import annotations

import random

import pytest

from repro.api import ScheduleRequest, execute_request, execute_requests_batch
from repro.api.request import report_to_dict
from repro.engine.scenarios import ScenarioSpec
from repro.errors import ReproError

#: Report fields that legitimately differ between two executions of the
#: same request: wall-clock stamps and cache provenance.  Everything
#: else — schedule, temperatures, weights, BCMT, effort counters — must
#: be bit-identical.
_NONDETERMINISTIC_FIELDS = ("elapsed_s", "timings", "cache_hit")


def canonical(report) -> dict:
    """A report's deterministic content, ready for exact comparison."""
    data = report_to_dict(report)
    for field in _NONDETERMINISTIC_FIELDS:
        data.pop(field, None)
    return data


def random_scenarios(rng: random.Random, count: int) -> list[ScenarioSpec]:
    """Seeded random floorplans, mixing grid and slicing kinds."""
    specs = []
    for _ in range(count):
        if rng.random() < 0.5:
            specs.append(
                ScenarioSpec(
                    kind="grid",
                    rows=rng.randint(2, 3),
                    cols=rng.randint(2, 3),
                    power_seed=rng.randint(0, 5),
                )
            )
        else:
            specs.append(
                ScenarioSpec(
                    kind="slicing",
                    n_blocks=rng.randint(5, 8),
                    floorplan_seed=rng.randint(0, 3),
                    power_seed=rng.randint(0, 5),
                )
            )
    return specs


def random_requests(seed: int, count: int) -> list[ScheduleRequest]:
    """A mixed burst: random floorplans, mixed solvers, varied limits.

    Scenario duplicates are likely by construction (small seed spaces),
    so the batch genuinely exercises shared builds and memo hits rather
    than degenerating into per-request silos.
    """
    rng = random.Random(seed)
    requests = []
    for spec in random_scenarios(rng, count):
        solver = rng.choice(["thermal_aware", "sequential", "power_constrained"])
        kwargs: dict = {"scenario": spec, "solver": solver}
        kwargs["tl_headroom"] = rng.choice([8.0, 12.0, 16.0])
        if solver == "thermal_aware":
            kwargs["stcl_headroom"] = rng.choice([4.0, 6.0])
        requests.append(ScheduleRequest(**kwargs))
    return requests


class TestBatchEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_reports_bit_identical_to_solo(self, seed):
        requests = random_requests(seed, count=8)
        batch = execute_requests_batch(requests)
        assert len(batch) == len(requests)
        for request, item in zip(requests, batch):
            solo = execute_request(request)
            assert not isinstance(item, BaseException), item
            assert canonical(item) == canonical(solo)
            # Effort accounting matches exactly: memo hits are charged
            # like the solves they replay.
            assert item.steady_solves == solo.steady_solves

    def test_same_scenario_varied_limits_share_and_still_match(self):
        spec = ScenarioSpec(kind="grid", rows=3, cols=3, power_seed=7)
        requests = [
            ScheduleRequest(scenario=spec, tl_headroom=h, stcl_headroom=5.0)
            for h in (8.0, 10.0, 12.0, 14.0)
        ]
        batch = execute_requests_batch(requests)
        for request, item in zip(requests, batch):
            assert canonical(item) == canonical(execute_request(request))

    def test_mid_batch_infeasible_request_is_isolated(self):
        spec = ScenarioSpec(kind="grid", rows=2, cols=2, power_seed=3)
        good = ScheduleRequest(scenario=spec, tl_headroom=10.0, stcl_headroom=5.0)
        # An absolute limit below ambient cannot be met by any core.
        bad = ScheduleRequest(scenario=spec, tl_c=1.0, stcl=60.0)
        tail = ScheduleRequest(scenario=spec, tl_headroom=14.0, stcl_headroom=5.0)
        batch = execute_requests_batch([good, bad, tail])
        assert canonical(batch[0]) == canonical(execute_request(good))
        assert isinstance(batch[1], ReproError)
        with pytest.raises(type(batch[1])):
            execute_request(bad)
        # The neighbour *after* the failure still matches solo exactly:
        # the error neither poisoned the shared build nor the memo.
        assert canonical(batch[2]) == canonical(execute_request(tail))

    def test_batch_outputs_independent_of_group_order(self):
        requests = random_requests(seed=4, count=6)
        forward = execute_requests_batch(requests)
        backward = execute_requests_batch(list(reversed(requests)))
        for a, b in zip(forward, reversed(backward)):
            assert canonical(a) == canonical(b)

"""Property tests for the cache-key contract of ``content_hash()``.

The scheduling service's answer cache, in-flight dedup, archive
provenance and the wire protocol all key on
:meth:`~repro.api.ScheduleRequest.content_hash`.  That only works if
the digest is a function of the request's *content* alone:

* insensitive to params-dict insertion order,
* insensitive to JSON formatting (whitespace, key order, float
  notation) of a round-tripped request,
* stable across processes and interpreter instances (no dependence on
  ``PYTHONHASHSEED``, ``id()``, or in-process registries),
* different whenever any semantically relevant field differs.

Randomised with hypothesis; the cross-process part runs a fixed sample
through the engine's *process* backend as a regression guard (the same
pickle-then-hash path the service's process workers exercise).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScheduleRequest, request_from_dict, request_to_dict
from repro.engine import ScenarioSpec, create_backend

# -- request generation ----------------------------------------------------------------

_PARAM_VALUES = st.one_of(
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    st.text(min_size=0, max_size=12),
)

_PARAMS = st.dictionaries(
    st.text(min_size=1, max_size=12), _PARAM_VALUES, max_size=4
)

_LIMITS = st.one_of(
    st.tuples(
        st.floats(min_value=40.0, max_value=200.0, allow_nan=False),
        st.none(),
    ),
    st.tuples(
        st.none(),
        st.floats(min_value=1.01, max_value=3.0, allow_nan=False),
    ),
)

_STCL = st.one_of(
    st.tuples(st.floats(min_value=1.0, max_value=100.0), st.none()),
    st.tuples(st.none(), st.floats(min_value=0.5, max_value=4.0)),
    st.tuples(st.none(), st.none()),
)


@st.composite
def requests(draw) -> ScheduleRequest:
    """A random valid ScheduleRequest (solver existence not required —
    solver names are validated at solve time, not construction)."""
    tl_c, tl_headroom = draw(_LIMITS)
    stcl, stcl_headroom = draw(_STCL)
    if draw(st.booleans()):
        soc = draw(
            st.sampled_from(["alpha15", "hypothetical7", "worked_example6"])
        )
        scenario = None
    else:
        soc = None
        scenario = ScenarioSpec(
            kind=draw(st.sampled_from(["grid", "slicing"])),
            rows=draw(st.integers(min_value=1, max_value=4)),
            cols=draw(st.integers(min_value=1, max_value=4)),
            n_blocks=draw(st.integers(min_value=2, max_value=8)),
            floorplan_seed=draw(st.integers(min_value=0, max_value=99)),
            power_seed=draw(st.integers(min_value=0, max_value=99)),
            power_scale=draw(st.floats(min_value=0.5, max_value=2.0)),
        )
    return ScheduleRequest(
        soc=soc,
        scenario=scenario,
        tl_c=tl_c,
        tl_headroom=tl_headroom,
        stcl=stcl,
        stcl_headroom=stcl_headroom,
        solver=draw(st.sampled_from(["thermal_aware", "sequential", "custom_x"])),
        params=draw(_PARAMS),
        include_vertical=draw(st.booleans()),
        stc_scale=draw(st.one_of(st.none(), st.floats(1.0, 3.0))),
    )


# -- in-process properties -------------------------------------------------------------


class TestHashIsContentOnly:
    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_params_dict_insertion_order_is_irrelevant(self, request_):
        reordered = ScheduleRequest(
            soc=request_.soc,
            scenario=request_.scenario,
            tl_c=request_.tl_c,
            tl_headroom=request_.tl_headroom,
            stcl=request_.stcl,
            stcl_headroom=request_.stcl_headroom,
            solver=request_.solver,
            params=dict(reversed(list(request_.params.items()))),
            include_vertical=request_.include_vertical,
            stc_scale=request_.stc_scale,
        )
        assert reordered.content_hash() == request_.content_hash()

    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_json_formatting_is_irrelevant(self, request_):
        """Pretty-printing, key shuffling and ASCII escaping all parse
        back to the same hash: the digest is of the *content*, not of
        any particular serialisation."""
        payload = request_to_dict(request_)
        wire_variants = [
            json.dumps(payload),
            json.dumps(payload, indent=2, sort_keys=True),
            json.dumps(
                {k: payload[k] for k in reversed(list(payload))},
                separators=(",", ":"),
                ensure_ascii=True,
            ),
        ]
        hashes = {
            request_from_dict(json.loads(text)).content_hash()
            for text in wire_variants
        }
        assert hashes == {request_.content_hash()}

    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_roundtrip_preserves_hash(self, request_):
        clone = request_from_dict(request_to_dict(request_))
        assert clone == request_
        assert clone.content_hash() == request_.content_hash()

    @settings(max_examples=40, deadline=None)
    @given(requests(), requests())
    def test_distinct_content_means_distinct_hash(self, a, b):
        """The converse direction: hash collision implies equality (for
        randomly drawn pairs — a full collision proof is SHA-256's job)."""
        if a.content_hash() == b.content_hash():
            assert a == b

    @settings(max_examples=60, deadline=None)
    @given(requests())
    def test_float_value_not_formatting_matters(self, request_):
        """1e2 and 100.0 are the same content; 100.0 and 100.5 are not."""
        if request_.tl_c is None:
            return
        same = ScheduleRequest(
            soc=request_.soc,
            scenario=request_.scenario,
            tl_c=float(f"{request_.tl_c!r}"),  # repr round-trip: same value
            stcl=request_.stcl,
            stcl_headroom=request_.stcl_headroom,
            solver=request_.solver,
            params=request_.params,
            include_vertical=request_.include_vertical,
            stc_scale=request_.stc_scale,
        )
        assert same.content_hash() == request_.content_hash()
        different = ScheduleRequest(
            soc=request_.soc,
            scenario=request_.scenario,
            tl_c=request_.tl_c + 0.5,
            stcl=request_.stcl,
            stcl_headroom=request_.stcl_headroom,
            solver=request_.solver,
            params=request_.params,
            include_vertical=request_.include_vertical,
            stc_scale=request_.stc_scale,
        )
        assert different.content_hash() != request_.content_hash()


# -- cross-process stability -----------------------------------------------------------


def _hash_request(request: ScheduleRequest) -> str:
    """Module-level so the process backend can pickle it."""
    return request.content_hash()


FIXED_SAMPLE = [
    ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0),
    ScheduleRequest(
        soc="worked_example6",
        tl_c=80.0,
        solver="power_constrained",
        params={"power_limit_w": 25.0, "zeta": True, "name": "x"},
    ),
    ScheduleRequest(
        scenario=ScenarioSpec(kind="grid", rows=2, cols=3, power_scale=1.25),
        tl_headroom=1.3,
        stcl_headroom=2.0,
        include_vertical=True,
    ),
    ScheduleRequest(
        soc="hypothetical7", tl_c=120.5, solver="sequential", stc_scale=1.5
    ),
]


class TestCrossProcessStability:
    def test_process_backend_workers_agree_with_the_parent(self):
        """The exact path service process-workers take: pickle the
        request over, hash it there — the dedup/cache key must match."""
        local = [_hash_request(request) for request in FIXED_SAMPLE]
        backend = create_backend("process", max_workers=2)
        remote = backend.map(_hash_request, FIXED_SAMPLE)
        assert remote == local

    def test_fresh_interpreter_agrees_over_the_wire_form(self):
        """A brand-new interpreter (own hash randomisation seed) hashes
        the JSONL wire form of each request to the same digest."""
        payload = json.dumps(
            [request_to_dict(request) for request in FIXED_SAMPLE]
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        script = (
            "import json, sys; sys.path.insert(0, sys.argv[1]); "
            "from repro.api import request_from_dict; "
            "print(json.dumps([request_from_dict(r).content_hash() "
            "for r in json.loads(sys.stdin.read())]))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, src],
            input=payload,
            capture_output=True,
            text=True,
            check=True,
        )
        assert json.loads(out.stdout) == [
            _hash_request(request) for request in FIXED_SAMPLE
        ]

"""Unit tests for material properties."""

from __future__ import annotations

import pytest

from repro.errors import ThermalModelError
from repro.thermal.materials import COPPER, INTERFACE, SILICON, Material


class TestMaterialValidation:
    def test_rejects_nonpositive_conductivity(self):
        with pytest.raises(ThermalModelError):
            Material("bad", conductivity=0.0, volumetric_heat_capacity=1.0)

    def test_rejects_nonpositive_heat_capacity(self):
        with pytest.raises(ThermalModelError):
            Material("bad", conductivity=1.0, volumetric_heat_capacity=-1.0)


class TestConductionResistance:
    def test_formula(self):
        mat = Material("m", conductivity=100.0, volumetric_heat_capacity=1.0)
        # R = t / (k A) = 0.001 / (100 * 0.0001) = 0.1 K/W
        assert mat.conduction_resistance(1e-3, 1e-4) == pytest.approx(0.1)

    def test_scales_inversely_with_area(self):
        r_small = SILICON.conduction_resistance(1e-3, 1e-6)
        r_large = SILICON.conduction_resistance(1e-3, 1e-4)
        assert r_small / r_large == pytest.approx(100.0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ThermalModelError):
            SILICON.conduction_resistance(0.0, 1.0)
        with pytest.raises(ThermalModelError):
            SILICON.conduction_resistance(1.0, 0.0)


class TestSlabCapacitance:
    def test_formula(self):
        mat = Material("m", conductivity=1.0, volumetric_heat_capacity=2e6)
        # C = c_v * t * A = 2e6 * 0.001 * 0.0001 = 0.2 J/K
        assert mat.slab_capacitance(1e-3, 1e-4) == pytest.approx(0.2)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ThermalModelError):
            SILICON.slab_capacitance(-1.0, 1.0)


class TestHotSpotDefaults:
    def test_silicon_matches_hotspot(self):
        assert SILICON.conductivity == 100.0
        assert SILICON.volumetric_heat_capacity == 1.75e6

    def test_copper_more_conductive_than_silicon(self):
        assert COPPER.conductivity > SILICON.conductivity

    def test_interface_is_the_bottleneck(self):
        assert INTERFACE.conductivity < SILICON.conductivity

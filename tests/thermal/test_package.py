"""Unit tests for the package configuration."""

from __future__ import annotations

import pytest

from repro.errors import ThermalModelError
from repro.thermal.package import DEFAULT_PACKAGE, PackageConfig


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "die_thickness",
            "tim_thickness",
            "spreader_side",
            "spreader_thickness",
            "sink_side",
            "sink_thickness",
            "convection_resistance",
            "convection_capacitance",
            "rim_coefficient",
        ],
    )
    def test_nonpositive_parameter_rejected(self, field):
        with pytest.raises(ThermalModelError, match=field):
            PackageConfig(**{field: 0.0})

    def test_sink_smaller_than_spreader_rejected(self):
        with pytest.raises(ThermalModelError, match="sink"):
            PackageConfig(spreader_side=60e-3, sink_side=30e-3)

    def test_default_is_valid(self):
        assert DEFAULT_PACKAGE.spreader_area == pytest.approx(9e-4)
        assert DEFAULT_PACKAGE.sink_area == pytest.approx(36e-4)


class TestDerived:
    def test_areas(self):
        pkg = PackageConfig(spreader_side=20e-3, sink_side=40e-3)
        assert pkg.spreader_area == pytest.approx(4e-4)
        assert pkg.sink_area == pytest.approx(16e-4)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_PACKAGE.die_thickness = 1.0  # type: ignore[misc]

    def test_ambient_default_is_hotspot_45c(self):
        assert DEFAULT_PACKAGE.ambient_c == 45.0

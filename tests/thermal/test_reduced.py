"""Reduced-order superposition operator: exactness, batching, sharing.

The operator is pure linear algebra over the same Cholesky factor as
the dense path, so the bar is numerical *equivalence* (solver
precision, asserted at 1e-9), not approximation quality.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ThermalModelError
from repro.floorplan.generator import slicing_floorplan
from repro.power.generator import PowerGeneratorConfig, generate_power_profile
from repro.soc.library import alpha15_soc, hypothetical7_soc
from repro.thermal.reduced import (
    BlockTemperatureBatch,
    BlockTemperatureField,
    ReducedSteadyOperator,
)
from repro.thermal.simulator import ThermalSimulator

#: Reduced-vs-dense agreement bound (K): both paths apply the same
#: factorisation, so only accumulation order differs.
TOL = 1e-9


@pytest.fixture(scope="module")
def soc():
    return hypothetical7_soc()


@pytest.fixture(scope="module")
def simulator(soc):
    return ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)


@pytest.fixture(scope="module")
def operator(simulator):
    return simulator.reduced_operator


class TestOperator:
    def test_shape_and_names(self, soc, operator):
        n = len(soc.floorplan.block_names)
        assert operator.n_blocks == n
        assert operator.matrix.shape == (n, n)
        assert operator.block_names == soc.floorplan.block_names

    def test_matrix_is_symmetric_and_positive(self, operator):
        # G is symmetric, so the sampled inverse block is too; all
        # influence entries are positive (heat anywhere warms everything
        # in a connected resistive network).
        assert np.allclose(operator.matrix, operator.matrix.T, atol=1e-12)
        assert (operator.matrix > 0.0).all()

    def test_matrix_is_read_only(self, operator):
        with pytest.raises(ValueError):
            operator.matrix[0, 0] = 1.0

    def test_resistances_match_solver(self, soc, simulator, operator):
        from repro.thermal.builder import die_node

        solver = simulator.steady_solver
        names = soc.floorplan.block_names
        for name in names:
            assert operator.self_resistance(name) == pytest.approx(
                solver.input_output_resistance(die_node(name)), abs=TOL
            )
        assert operator.transfer_resistance(
            names[0], names[1]
        ) == pytest.approx(
            solver.transfer_resistance(die_node(names[0]), die_node(names[1])),
            abs=TOL,
        )

    def test_unknown_block_rejected(self, operator):
        with pytest.raises(ThermalModelError, match="unknown block"):
            operator.index_of("nope")
        with pytest.raises(ThermalModelError, match="unknown block"):
            operator.power_vector({"nope": 1.0})

    def test_negative_power_rejected(self, soc, operator):
        name = soc.floorplan.block_names[0]
        with pytest.raises(ThermalModelError, match="non-negative"):
            operator.power_vector({name: -1.0})
        with pytest.raises(ThermalModelError, match="non-negative"):
            operator.power_matrix([{name: -1.0}])

    def test_empty_batch_rejected(self, operator):
        with pytest.raises(ThermalModelError, match="at least one"):
            operator.power_matrix([])

    def test_batched_temperatures_are_columnwise_matvecs(self, soc, operator):
        maps = [
            {soc.floorplan.block_names[0]: 5.0},
            {name: 2.0 for name in soc.floorplan.block_names},
        ]
        powers = operator.power_matrix(maps)
        batched = operator.temperatures(powers)
        for j, power_map in enumerate(maps):
            single = operator.temperatures(operator.power_vector(power_map))
            # GEMM and GEMV accumulate in different orders, so the
            # agreement is to precision, not bit-exact.
            np.testing.assert_allclose(batched[:, j], single, rtol=0, atol=TOL)


class TestSimulatorFastPath:
    def test_block_steady_state_matches_dense(self, soc, simulator):
        power = soc.test_power_map()
        dense = simulator.steady_state(power)
        fast = simulator.block_steady_state(power)
        for name in soc.floorplan.block_names:
            assert fast.temperature_c(name) == pytest.approx(
                dense.temperature_c(name), abs=TOL
            )
        assert fast.max_temperature_c() == pytest.approx(
            dense.max_temperature_c(), abs=TOL
        )
        assert fast.hottest_block() == dense.hottest_block()

    def test_block_field_api(self, soc, simulator):
        power = soc.test_power_map()
        fast = simulator.block_steady_state(power)
        assert isinstance(fast, BlockTemperatureField)
        temps = fast.block_temperatures_c()
        assert set(temps) == set(soc.floorplan.block_names)
        name = soc.floorplan.block_names[0]
        assert temps[name] == pytest.approx(fast.temperature_c(name))
        assert fast.rise_of(name) == pytest.approx(
            fast.temperature_c(name) - fast.ambient_c
        )
        gathered = fast.temperatures_for([name, soc.floorplan.block_names[1]])
        assert gathered[0] == pytest.approx(fast.temperature_c(name))
        with pytest.raises(ThermalModelError, match="unknown block"):
            fast.temperature_c("nope")

    def test_batch_matches_singles(self, soc, simulator):
        names = list(soc.core_names)
        maps = [{n: soc[n].test_power_w} for n in names]
        batch = simulator.block_steady_state_batch(maps)
        assert isinstance(batch, BlockTemperatureBatch)
        assert len(batch) == len(maps)
        for j, power_map in enumerate(maps):
            single = simulator.block_steady_state(power_map)
            field = batch.field(j)
            np.testing.assert_allclose(
                field.block_rises, single.block_rises, rtol=0, atol=TOL
            )
        own = batch.own_temperatures_c(names)
        for j, n in enumerate(names):
            assert own[j] == pytest.approx(batch.field(j).temperature_c(n))
        np.testing.assert_array_equal(
            batch.max_temperatures_c(),
            [batch.field(j).max_temperature_c() for j in range(len(batch))],
        )

    def test_batch_own_temperatures_length_mismatch(self, soc, simulator):
        maps = [{n: soc[n].test_power_w} for n in soc.core_names]
        batch = simulator.block_steady_state_batch(maps)
        with pytest.raises(ThermalModelError, match="one block per power map"):
            batch.own_temperatures_c(list(soc.core_names)[:-1])
        with pytest.raises(ThermalModelError, match="unknown block"):
            batch.own_temperatures_c(["nope"] * len(batch))

    def test_unknown_block_in_power_map(self, simulator):
        with pytest.raises(ThermalModelError, match="unknown block"):
            simulator.block_steady_state({"nope": 1.0})
        with pytest.raises(ThermalModelError, match="unknown block"):
            simulator.block_steady_state_batch([{"nope": 1.0}])

    def test_solve_counting(self, soc):
        sim = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
        assert sim.steady_solve_count == 0
        sim.block_steady_state(soc.test_power_map())
        assert sim.steady_solve_count == 1
        sim.block_steady_state_batch(
            [{n: soc[n].test_power_w} for n in soc.core_names]
        )
        assert sim.steady_solve_count == 1 + len(soc)

    def test_operator_is_lazy_and_cached(self, soc):
        sim = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
        first = sim.reduced_operator
        assert sim.reduced_operator is first

    def test_from_handles_shares_operator(self, soc, simulator):
        shared = ThermalSimulator.from_handles(
            simulator.model, simulator.steady_solver, simulator.reduced_operator
        )
        assert shared.reduced_operator is simulator.reduced_operator
        assert shared.steady_solve_count == 0

    def test_foreign_operator_rejected(self, soc, simulator):
        other = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
        with pytest.raises(ThermalModelError, match="different network"):
            ThermalSimulator.from_handles(
                simulator.model,
                simulator.steady_solver,
                other.reduced_operator,
            )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_cores=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
    subset_seed=st.integers(min_value=0, max_value=10_000),
)
def test_reduced_matches_dense_on_random_floorplans(n_cores, seed, subset_seed):
    """Property: block_steady_state == steady_state (blocks) within 1e-9."""
    plan = slicing_floorplan(n_cores, seed=seed)
    profile = generate_power_profile(plan, PowerGeneratorConfig(seed=seed))
    simulator = ThermalSimulator(plan)
    rng = np.random.default_rng(subset_seed)
    names = list(plan.block_names)
    active = [n for n in names if rng.random() < 0.6] or [names[0]]
    power = {n: profile[n].test_w for n in active}

    dense = simulator.steady_state(power)
    fast = simulator.block_steady_state(power)
    for name in names:
        assert abs(fast.temperature_c(name) - dense.temperature_c(name)) <= TOL
    assert abs(fast.max_temperature_c() - dense.max_temperature_c()) <= TOL


def test_alpha15_reduced_matches_dense_exhaustively():
    """Every singleton and the all-active map on the calibrated platform."""
    soc = alpha15_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    maps = [{n: soc[n].test_power_w} for n in soc.core_names]
    maps.append(soc.test_power_map())
    batch = simulator.block_steady_state_batch(maps)
    for j, power_map in enumerate(maps):
        dense = simulator.steady_state(power_map)
        field = batch.field(j)
        for name in soc.floorplan.block_names:
            assert abs(field.temperature_c(name) - dense.temperature_c(name)) <= TOL

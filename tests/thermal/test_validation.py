"""Tests for the M1 (steady-bounds-transient) validation machinery."""

from __future__ import annotations

import pytest

from repro.core.baselines import sequential_schedule
from repro.errors import ThermalModelError
from repro.floorplan.generator import grid_floorplan
from repro.power.generator import uniform_test_power_profile
from repro.soc.system import SocUnderTest
from repro.thermal.simulator import ThermalSimulator
from repro.thermal.validation import check_schedule_bound, check_session_bound


@pytest.fixture(scope="module")
def soc():
    plan = grid_floorplan(2, 2)
    return SocUnderTest.from_profile(
        plan, uniform_test_power_profile(plan, 30.0)
    )


@pytest.fixture(scope="module")
def simulator(soc):
    return ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)


class TestSessionBound:
    def test_bound_holds_from_ambient(self, soc, simulator):
        check = check_session_bound(simulator, soc, ["C0_0", "C1_1"])
        assert check.holds
        assert check.min_margin_c >= 0.0
        assert check.max_margin_c >= check.min_margin_c

    def test_margins_positive_for_short_sessions(self, soc, simulator):
        """1 s sessions vs a package with ~minute time constants: the
        steady-state prediction must be far above the transient peak."""
        check = check_session_bound(simulator, soc, ["C0_0"])
        assert check.min_margin_c > 1.0

    def test_empty_session_rejected(self, soc, simulator):
        with pytest.raises(ThermalModelError):
            check_session_bound(simulator, soc, [])


class TestScheduleBound:
    def test_back_to_back_bound(self, soc, simulator):
        schedule = sequential_schedule(soc)
        check = check_schedule_bound(simulator, schedule, cooling_gap_s=0.0)
        assert len(check.sessions) == len(schedule)
        assert check.holds
        assert check.min_margin_c > 0.0

    def test_cooling_gap_increases_margin(self, soc, simulator):
        schedule = sequential_schedule(soc)
        hot = check_schedule_bound(simulator, schedule, cooling_gap_s=0.0)
        cooled = check_schedule_bound(simulator, schedule, cooling_gap_s=2.0)
        assert cooled.min_margin_c >= hot.min_margin_c

    def test_negative_gap_rejected(self, soc, simulator):
        schedule = sequential_schedule(soc)
        with pytest.raises(ThermalModelError):
            check_schedule_bound(simulator, schedule, cooling_gap_s=-1.0)

    def test_carry_over_reduces_margin_vs_ambient(self, soc, simulator):
        """Later sessions start warmer than ambient, so the continuous
        schedule's margins are no better than the from-ambient ones."""
        schedule = sequential_schedule(soc)
        continuous = check_schedule_bound(simulator, schedule, cooling_gap_s=0.0)
        for index, session in enumerate(schedule):
            ambient_check = check_session_bound(
                simulator, soc, list(session.cores)
            )
            assert (
                continuous.sessions[index].min_margin_c
                <= ambient_check.min_margin_c + 1e-6
            )

"""Unit tests for the floorplan-to-RC-network builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.floorplan.adjacency import AdjacencyMap
from repro.floorplan.generator import grid_floorplan
from repro.floorplan.library import alpha15, hypothetical7
from repro.thermal.builder import (
    SINK_CENTER,
    SINK_PERIPHERY,
    SPREADER_CENTER,
    build_thermal_network,
    die_node,
)
from repro.thermal.package import DEFAULT_PACKAGE, PackageConfig
from repro.thermal.resistances import (
    lateral_interface_resistance,
    vertical_stack_resistance,
)


@pytest.fixture(scope="module")
def built_alpha():
    return build_thermal_network(alpha15(), DEFAULT_PACKAGE)


class TestTopology:
    def test_node_count_is_blocks_plus_package(self, built_alpha):
        # 15 die nodes + spreader centre + 4 spreader edges + 2 sink nodes.
        assert len(built_alpha.network) == 15 + 7

    def test_every_block_has_a_node(self, built_alpha):
        for name in alpha15().block_names:
            assert die_node(name) in built_alpha.network.node_names

    def test_package_nodes_exist(self, built_alpha):
        names = built_alpha.network.node_names
        assert SPREADER_CENTER in names
        assert SINK_CENTER in names
        assert SINK_PERIPHERY in names
        for side in ("north", "south", "east", "west"):
            assert f"spreader:{side}" in names

    def test_conductance_symmetric_positive_definite(self, built_alpha):
        g = built_alpha.network.conductance
        assert np.allclose(g, g.T)
        eigenvalues = np.linalg.eigvalsh(g)
        assert eigenvalues.min() > 0.0

    def test_non_tiled_floorplan_builds(self):
        built = build_thermal_network(hypothetical7(), DEFAULT_PACKAGE)
        assert len(built.network) == 7 + 7

    def test_single_block_floorplan_builds(self):
        built = build_thermal_network(grid_floorplan(1, 1), DEFAULT_PACKAGE)
        assert die_node("C0_0") in built.network.node_names


class TestCapacitances:
    def test_die_capacitance_matches_silicon_volume(self, built_alpha):
        plan = alpha15()
        network = built_alpha.network
        pkg = DEFAULT_PACKAGE
        for block in plan:
            index = network.index_of(die_node(block.name))
            expected = pkg.die_material.slab_capacitance(
                pkg.die_thickness, block.area
            )
            assert network.capacitance[index] == pytest.approx(expected)

    def test_all_capacitances_positive(self, built_alpha):
        assert np.all(built_alpha.network.capacitance > 0.0)

    def test_sink_holds_most_heat_capacity(self, built_alpha):
        network = built_alpha.network
        sink_cap = (
            network.capacitance[network.index_of(SINK_CENTER)]
            + network.capacitance[network.index_of(SINK_PERIPHERY)]
        )
        die_cap = sum(
            network.capacitance[network.index_of(die_node(n))]
            for n in alpha15().block_names
        )
        assert sink_cap > 10.0 * die_cap


class TestResistanceScaling:
    def test_lateral_resistance_decreases_with_shared_length(self):
        """Longer shared edges conduct better."""
        plan = grid_floorplan(1, 2, die_width=2e-3, die_height=1e-3)
        tall = grid_floorplan(1, 2, die_width=2e-3, die_height=4e-3)
        pkg = DEFAULT_PACKAGE
        amap_short = AdjacencyMap(plan)
        amap_tall = AdjacencyMap(tall)
        r_short = lateral_interface_resistance(
            plan["C0_0"], plan["C0_1"], amap_short.interfaces[0], pkg
        )
        r_tall = lateral_interface_resistance(
            tall["C0_0"], tall["C0_1"], amap_tall.interfaces[0], pkg
        )
        assert r_tall < r_short

    def test_vertical_resistance_decreases_with_area(self):
        """Bigger blocks couple into the spreader better — the power
        density mechanism behind the paper's Figure 1."""
        small = grid_floorplan(4, 4)["C0_0"]
        large = grid_floorplan(2, 2)["C0_0"]
        assert vertical_stack_resistance(
            large, DEFAULT_PACKAGE
        ) < vertical_stack_resistance(small, DEFAULT_PACKAGE)

    def test_rim_coefficient_weakens_edge_paths(self):
        plan = grid_floorplan(2, 2)
        weak_rim = build_thermal_network(
            plan, PackageConfig(rim_coefficient=1.0)
        )
        strong_rim = build_thermal_network(
            plan, PackageConfig(rim_coefficient=0.01)
        )
        # Same power map solved on both: stronger rim -> cooler corner.
        from repro.thermal.steady_state import SteadyStateSolver

        power = weak_rim.network.power_vector({die_node("C0_0"): 10.0})
        t_weak = SteadyStateSolver(weak_rim.network).solve(power)
        power2 = strong_rim.network.power_vector({die_node("C0_0"): 10.0})
        t_strong = SteadyStateSolver(strong_rim.network).solve(power2)
        i = weak_rim.network.index_of(die_node("C0_0"))
        j = strong_rim.network.index_of(die_node("C0_0"))
        assert t_strong[j] < t_weak[i]

"""Unit tests for the shared resistance formulas.

These formulas feed both the full RC network and the session thermal
model, so their correctness underwrites the paper's claim that the
session model is *derived from* the accurate model.
"""

from __future__ import annotations

import math

import pytest

from repro.floorplan.adjacency import AdjacencyMap
from repro.floorplan.floorplan import Block, Floorplan
from repro.floorplan.geometry import Rect
from repro.thermal.package import DEFAULT_PACKAGE, PackageConfig
from repro.thermal.resistances import (
    boundary_edge_resistance,
    lateral_interface_resistance,
    shared_path_resistance,
    spreading_resistance,
    spreader_centre_to_edge_resistance,
    spreader_to_sink_resistance,
    vertical_die_resistance,
    vertical_stack_resistance,
    vertical_tim_resistance,
)


@pytest.fixture(scope="module")
def pair():
    """Two 2 mm x 4 mm blocks side by side, sharing a 4 mm edge."""
    plan = Floorplan(
        [
            Block("a", Rect(0.0, 0.0, 2e-3, 4e-3)),
            Block("b", Rect(2e-3, 0.0, 2e-3, 4e-3)),
        ]
    )
    return plan, AdjacencyMap(plan)


class TestLateral:
    def test_symmetric_pair_analytic_value(self, pair):
        plan, amap = pair
        interface = amap.interfaces[0]
        r = lateral_interface_resistance(plan["a"], plan["b"], interface, DEFAULT_PACKAGE)
        # Each half: (2mm/2) / (k * t * L) = 1e-3 / (100 * 0.5e-3 * 4e-3)
        half = 1e-3 / (100.0 * 0.5e-3 * 4e-3)
        assert r == pytest.approx(2.0 * half)

    def test_order_independent(self, pair):
        plan, amap = pair
        interface = amap.interfaces[0]
        r_ab = lateral_interface_resistance(plan["a"], plan["b"], interface, DEFAULT_PACKAGE)
        r_ba = lateral_interface_resistance(plan["b"], plan["a"], interface, DEFAULT_PACKAGE)
        assert r_ab == pytest.approx(r_ba)

    def test_thicker_die_conducts_better(self, pair):
        plan, amap = pair
        interface = amap.interfaces[0]
        thin = lateral_interface_resistance(
            plan["a"], plan["b"], interface, PackageConfig(die_thickness=0.2e-3)
        )
        thick = lateral_interface_resistance(
            plan["a"], plan["b"], interface, PackageConfig(die_thickness=1.0e-3)
        )
        assert thick < thin


class TestBoundary:
    def test_rim_dominates_half_path(self, pair):
        plan, amap = pair
        segment = next(
            s for s in amap.boundary_segments("a") if s.side.name == "WEST"
        )
        r = boundary_edge_resistance(plan["a"], segment, DEFAULT_PACKAGE)
        rim_only = DEFAULT_PACKAGE.rim_coefficient / segment.length
        assert r > rim_only  # half-path adds on top
        assert rim_only / r > 0.5  # but the rim is the dominant term

    def test_longer_edge_escapes_better(self, pair):
        plan, amap = pair
        west = next(s for s in amap.boundary_segments("a") if s.side.name == "WEST")
        south = next(s for s in amap.boundary_segments("a") if s.side.name == "SOUTH")
        # West edge is 4 mm, south edge 2 mm.
        r_west = boundary_edge_resistance(plan["a"], west, DEFAULT_PACKAGE)
        r_south = boundary_edge_resistance(plan["a"], south, DEFAULT_PACKAGE)
        assert r_west < r_south


class TestVertical:
    def test_die_resistance_formula(self, pair):
        plan, _ = pair
        r = vertical_die_resistance(plan["a"], DEFAULT_PACKAGE)
        assert r == pytest.approx(0.5e-3 / (100.0 * 8e-6))

    def test_tim_resistance_formula(self, pair):
        plan, _ = pair
        r = vertical_tim_resistance(plan["a"], DEFAULT_PACKAGE)
        assert r == pytest.approx(20e-6 / (4.0 * 8e-6))

    def test_spreading_scales_as_inverse_sqrt_area(self):
        r1 = spreading_resistance(1e-6, DEFAULT_PACKAGE)
        r4 = spreading_resistance(4e-6, DEFAULT_PACKAGE)
        assert r1 / r4 == pytest.approx(2.0)

    def test_spreading_rejects_bad_area(self):
        with pytest.raises(ValueError):
            spreading_resistance(0.0, DEFAULT_PACKAGE)

    def test_stack_is_sum_of_parts(self, pair):
        plan, _ = pair
        block = plan["a"]
        total = vertical_stack_resistance(block, DEFAULT_PACKAGE)
        parts = (
            vertical_die_resistance(block, DEFAULT_PACKAGE)
            + vertical_tim_resistance(block, DEFAULT_PACKAGE)
            + spreading_resistance(block.area, DEFAULT_PACKAGE)
        )
        assert total == pytest.approx(parts)


class TestPackagePaths:
    def test_shared_path_composition(self):
        assert shared_path_resistance(DEFAULT_PACKAGE) == pytest.approx(
            spreader_to_sink_resistance(DEFAULT_PACKAGE)
            + DEFAULT_PACKAGE.convection_resistance
        )

    def test_spreader_centre_to_edge_positive(self):
        assert spreader_centre_to_edge_resistance(DEFAULT_PACKAGE) > 0.0

    def test_all_paths_finite(self, pair):
        plan, amap = pair
        for block in plan:
            assert math.isfinite(vertical_stack_resistance(block, DEFAULT_PACKAGE))
            for segment in amap.boundary_segments(block.name):
                assert math.isfinite(
                    boundary_edge_resistance(block, segment, DEFAULT_PACKAGE)
                )

"""Unit + integration tests for the grid-mode thermal simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.floorplan.generator import grid_floorplan
from repro.floorplan.library import hypothetical7
from repro.soc.library import alpha15_soc
from repro.thermal.grid import GridThermalSimulator
from repro.thermal.package import PackageConfig
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture(scope="module")
def quad_grid():
    return GridThermalSimulator(grid_floorplan(2, 2), nx=16, ny=16)


class TestConstruction:
    def test_too_coarse_mesh_rejected(self):
        with pytest.raises(ThermalModelError):
            GridThermalSimulator(grid_floorplan(2, 2), nx=1, ny=16)

    def test_uncoverable_block_rejected(self):
        # 16 tiny blocks on a 2x2 mesh: most blocks cover no cell centre.
        with pytest.raises(ThermalModelError, match="resolution"):
            GridThermalSimulator(grid_floorplan(4, 4), nx=2, ny=2)

    def test_resolution_property(self, quad_grid):
        assert quad_grid.resolution == (16, 16)


class TestSteadyState:
    def test_zero_power_is_ambient(self, quad_grid):
        field = quad_grid.steady_state({})
        assert field.max_temperature_c() == pytest.approx(quad_grid.ambient_c)
        assert np.allclose(field.rises, 0.0)

    def test_heated_block_is_hottest(self, quad_grid):
        field = quad_grid.steady_state({"C1_1": 20.0})
        assert field.block_max_c("C1_1") == pytest.approx(
            field.max_temperature_c()
        )
        assert field.block_mean_c("C1_1") > field.block_mean_c("C0_0")

    def test_linearity(self, quad_grid):
        f1 = quad_grid.steady_state({"C0_0": 10.0})
        f2 = quad_grid.steady_state({"C0_0": 20.0})
        assert np.allclose(f2.rises, 2.0 * f1.rises, rtol=1e-9)

    def test_unknown_block_rejected(self, quad_grid):
        with pytest.raises(ThermalModelError):
            quad_grid.steady_state({"nope": 1.0})

    def test_negative_power_rejected(self, quad_grid):
        with pytest.raises(ThermalModelError):
            quad_grid.steady_state({"C0_0": -1.0})

    def test_field_unknown_block_rejected(self, quad_grid):
        field = quad_grid.steady_state({})
        with pytest.raises(ThermalModelError):
            field.block_max_c("nope")


class TestIntraBlockResolution:
    def test_gradient_positive_for_heated_block(self, quad_grid):
        """Grid mode resolves what block mode lumps: the heated block's
        interior is hotter than its rim."""
        field = quad_grid.steady_state({"C0_0": 30.0})
        assert field.intra_block_gradient_c("C0_0") > 0.1

    def test_gradient_zero_when_cold(self, quad_grid):
        field = quad_grid.steady_state({})
        assert field.intra_block_gradient_c("C0_0") == pytest.approx(0.0)

    def test_uncovered_silicon_conducts(self):
        """On a sparse layout (hypothetical7), whitespace cells exist
        and carry heat: cells outside all blocks warm up."""
        sim = GridThermalSimulator(hypothetical7(), nx=24, ny=24)
        field = sim.steady_state({"C1": 30.0})
        whitespace = field.rises[field.cell_cover == -1]
        assert whitespace.size > 0
        assert whitespace.max() > 0.1


class TestAgainstBlockMode:
    """The cross-validation that matters: both solvers, same physics."""

    @pytest.fixture(scope="class")
    def soc(self):
        return alpha15_soc()

    @pytest.fixture(scope="class")
    def both(self, soc):
        return (
            ThermalSimulator(soc.floorplan, soc.package, soc.adjacency),
            GridThermalSimulator(soc.floorplan, soc.package, nx=48, ny=48),
        )

    def test_block_mode_is_conservative(self, soc, both):
        """Block-mode peaks sit at or slightly above grid-mode peaks
        (the lumped model concentrates heat)."""
        block_sim, grid_sim = both
        for session in (["IntReg"], ["IntReg", "FPAdd", "L2"], ["Bpred", "DTB"]):
            power = soc.session_power_map(session)
            block_peak = max(
                block_sim.steady_state(power).temperature_c(c) for c in session
            )
            grid_peak = max(
                grid_sim.steady_state(power).block_max_c(c) for c in session
            )
            assert block_peak >= grid_peak * 0.95  # never wildly optimistic
            assert block_peak <= grid_peak * 1.35  # never wildly pessimistic

    def test_same_hottest_core(self, soc, both):
        block_sim, grid_sim = both
        session = ["IntReg", "L2", "Dcache", "FPMul"]
        power = soc.session_power_map(session)
        block_field = block_sim.steady_state(power)
        grid_field = grid_sim.steady_state(power)
        block_hottest = max(session, key=block_field.temperature_c)
        grid_hottest = max(session, key=grid_field.block_max_c)
        assert block_hottest == grid_hottest

    def test_fig1_ordering_preserved(self):
        from repro.soc.library import hypothetical7_soc

        soc = hypothetical7_soc()
        sim = GridThermalSimulator(soc.floorplan, soc.package, nx=48, ny=48)
        hot = sim.steady_state(soc.session_power_map(["C2", "C3", "C4"]))
        cool = sim.steady_state(soc.session_power_map(["C5", "C6", "C7"]))
        assert hot.max_temperature_c() > cool.max_temperature_c() + 10.0


class TestRimConfig:
    def test_stronger_rim_cools_boundary(self):
        plan = grid_floorplan(2, 2)
        weak = GridThermalSimulator(
            plan, PackageConfig(rim_coefficient=1.0), nx=16, ny=16
        )
        strong = GridThermalSimulator(
            plan, PackageConfig(rim_coefficient=0.01), nx=16, ny=16
        )
        p = {"C0_0": 20.0}
        assert (
            strong.steady_state(p).block_max_c("C0_0")
            < weak.steady_state(p).block_max_c("C0_0")
        )

"""Unit tests for the ASCII heatmap renderers."""

from __future__ import annotations

import pytest

from repro.errors import ThermalModelError
from repro.floorplan.generator import grid_floorplan
from repro.floorplan.library import hypothetical7
from repro.thermal.heatmap import HEAT_RAMP, render_heatmap, render_power_density_map
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture(scope="module")
def sim():
    return ThermalSimulator(grid_floorplan(2, 2))


class TestRenderHeatmap:
    def test_hot_block_gets_hottest_glyph(self, sim):
        field = sim.steady_state({"C1_1": 50.0})
        text = render_heatmap(sim.floorplan, field, width=16, height=8)
        # C1_1 is the north-east cell; row 1 (top), right half must show
        # the hottest glyph.
        top_row = text.splitlines()[1]
        assert HEAT_RAMP[-1] in top_row[9:]
        assert "degC" in text

    def test_legend_sorted_hottest_first(self, sim):
        field = sim.steady_state({"C0_0": 50.0})
        text = render_heatmap(sim.floorplan, field, width=8, height=4)
        legend_lines = [l for l in text.splitlines() if "degC" in l and "[" in l]
        assert legend_lines[0].strip().startswith("C0_0")

    def test_legend_toggle(self, sim):
        field = sim.steady_state({})
        text = render_heatmap(
            sim.floorplan, field, width=8, height=4, show_legend=False
        )
        assert "[" not in text

    def test_whitespace_rendered_blank(self):
        plan = hypothetical7()
        sim = ThermalSimulator(plan)
        field = sim.steady_state({"C1": 10.0})
        text = render_heatmap(plan, field, width=24, height=12, show_legend=False)
        interior = [line[1:-1] for line in text.splitlines()[1:13]]
        assert any(" " in row for row in interior)  # uncovered die visible

    def test_too_small_raster_rejected(self, sim):
        field = sim.steady_state({})
        with pytest.raises(ThermalModelError):
            render_heatmap(sim.floorplan, field, width=1, height=5)


class TestPowerDensityMap:
    def test_denser_block_darker(self):
        plan = hypothetical7()
        # C2 (4 mm^2) and C5 (16 mm^2) at equal power: C2 is 4x denser.
        text = render_power_density_map(
            plan, {"C2": 15.0, "C5": 15.0}, width=24, height=12
        )
        assert HEAT_RAMP[-1] in text  # the dense block saturates the ramp
        assert "W/cm^2" in text

    def test_empty_power_map_rejected(self):
        with pytest.raises(ThermalModelError):
            render_power_density_map(hypothetical7(), {})

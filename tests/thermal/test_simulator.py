"""Unit + integration tests for the ThermalSimulator facade."""

from __future__ import annotations

import pytest

from repro.errors import ThermalModelError
from repro.floorplan.generator import grid_floorplan
from repro.thermal.builder import die_node
from repro.thermal.package import PackageConfig
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture(scope="module")
def grid_sim():
    return ThermalSimulator(grid_floorplan(3, 3))


class TestSteadyState:
    def test_zero_power_is_ambient_everywhere(self, grid_sim):
        field = grid_sim.steady_state({})
        for name in grid_sim.floorplan.block_names:
            assert field.temperature_c(name) == pytest.approx(
                grid_sim.ambient_c
            )

    def test_heated_block_is_hottest(self, grid_sim):
        field = grid_sim.steady_state({"C1_1": 20.0})
        assert field.hottest_block() == "C1_1"
        assert field.max_temperature_c() == field.temperature_c("C1_1")

    def test_neighbours_warmer_than_corners(self, grid_sim):
        """Heat injected at the centre decays with distance."""
        field = grid_sim.steady_state({"C1_1": 20.0})
        assert field.temperature_c("C0_1") > field.temperature_c("C0_0")

    def test_linearity_in_power(self, grid_sim):
        f1 = grid_sim.steady_state({"C0_0": 10.0})
        f2 = grid_sim.steady_state({"C0_0": 20.0})
        rise1 = f1.temperature_c("C0_0") - grid_sim.ambient_c
        rise2 = f2.temperature_c("C0_0") - grid_sim.ambient_c
        assert rise2 == pytest.approx(2.0 * rise1, rel=1e-9)

    def test_unknown_block_rejected(self, grid_sim):
        with pytest.raises(ThermalModelError, match="unknown block"):
            grid_sim.steady_state({"nope": 1.0})

    def test_field_unknown_block_rejected(self, grid_sim):
        field = grid_sim.steady_state({})
        with pytest.raises(ThermalModelError):
            field.temperature_c("nope")

    def test_block_temperatures_map(self, grid_sim):
        field = grid_sim.steady_state({"C0_0": 5.0})
        temps = field.block_temperatures_c()
        assert set(temps) == set(grid_sim.floorplan.block_names)

    def test_ambient_configurable(self):
        hot_ambient = ThermalSimulator(
            grid_floorplan(2, 2), PackageConfig(ambient_c=85.0)
        )
        field = hot_ambient.steady_state({})
        assert field.temperature_c("C0_0") == pytest.approx(85.0)


class TestEffortAccounting:
    def test_simulate_session_charges_duration(self):
        sim = ThermalSimulator(grid_floorplan(2, 2))
        assert sim.simulated_time_s == 0.0
        sim.simulate_session({"C0_0": 5.0}, duration_s=1.0)
        sim.simulate_session({"C0_1": 5.0}, duration_s=2.5)
        assert sim.simulated_time_s == pytest.approx(3.5)

    def test_steady_state_does_not_charge_effort(self):
        sim = ThermalSimulator(grid_floorplan(2, 2))
        sim.steady_state({"C0_0": 5.0})
        assert sim.simulated_time_s == 0.0
        assert sim.steady_solve_count == 1

    def test_reset_effort(self):
        sim = ThermalSimulator(grid_floorplan(2, 2))
        sim.simulate_session({"C0_0": 5.0}, duration_s=1.0)
        sim.reset_effort()
        assert sim.simulated_time_s == 0.0
        assert sim.steady_solve_count == 0

    def test_nonpositive_duration_rejected(self):
        sim = ThermalSimulator(grid_floorplan(2, 2))
        with pytest.raises(ThermalModelError):
            sim.simulate_session({"C0_0": 5.0}, duration_s=0.0)


class TestTransientFacade:
    def test_transient_approaches_steady_state(self, grid_sim):
        power = {"C1_1": 20.0}
        steady = grid_sim.steady_state(power)
        result = grid_sim.transient(power, duration_s=500.0, dt=0.5)
        final = result.final_rises()[
            result.node_names.index(die_node("C1_1"))
        ]
        steady_rise = steady.temperature_c("C1_1") - grid_sim.ambient_c
        assert final == pytest.approx(steady_rise, rel=0.02)

    def test_peak_transient_below_steady(self, grid_sim):
        """The M1 justification at facade level."""
        power = {"C1_1": 20.0}
        steady = grid_sim.steady_state(power)
        peaks = grid_sim.block_peak_transient_c(power, duration_s=5.0, dt=0.05)
        for name in grid_sim.floorplan.block_names:
            assert peaks[name] <= steady.temperature_c(name) + 1e-6

    def test_transient_schedule_concatenates(self, grid_sim):
        result = grid_sim.transient_schedule(
            [({"C0_0": 10.0}, 1.0), ({}, 1.0)], dt=0.1
        )
        assert result.times[-1] == pytest.approx(2.0)

    def test_solver_cache_reused(self, grid_sim):
        grid_sim.transient({"C0_0": 1.0}, duration_s=0.5, dt=0.25)
        first = grid_sim._transient_solvers[0.25]
        grid_sim.transient({"C0_0": 2.0}, duration_s=0.5, dt=0.25)
        assert grid_sim._transient_solvers[0.25] is first


class TestPowerDensityEffect:
    def test_equal_power_smaller_block_runs_hotter(self):
        """The paper's central physical premise, on the full simulator:
        same power into a smaller block yields a higher temperature."""
        plan = grid_floorplan(1, 2, die_width=12e-3, die_height=12e-3)
        # Make an uneven variant: 1/4 vs 3/4 split.
        from repro.floorplan.floorplan import Block, Floorplan
        from repro.floorplan.geometry import Rect

        uneven = Floorplan(
            [
                Block("small", Rect(0.0, 0.0, 3e-3, 12e-3)),
                Block("big", Rect(3e-3, 0.0, 9e-3, 12e-3)),
            ],
            outline=Rect(0.0, 0.0, 12e-3, 12e-3),
        )
        sim = ThermalSimulator(uneven)
        hot_small = sim.steady_state({"small": 15.0}).temperature_c("small")
        hot_big = sim.steady_state({"big": 15.0}).temperature_c("big")
        assert hot_small > hot_big


class TestFromHandles:
    def test_shared_handles_reproduce_fresh_build(self, grid_sim):
        shared = ThermalSimulator.from_handles(
            grid_sim.model, grid_sim.steady_solver
        )
        power = {"C1_1": 20.0, "C0_0": 5.0}
        assert shared.steady_state(power).max_temperature_c() == pytest.approx(
            grid_sim.steady_state(power).max_temperature_c()
        )
        assert shared.model is grid_sim.model
        assert shared.steady_solver is grid_sim.steady_solver

    def test_effort_counters_are_per_facade(self, grid_sim):
        shared = ThermalSimulator.from_handles(
            grid_sim.model, grid_sim.steady_solver
        )
        before = grid_sim.steady_solve_count
        shared.steady_state({"C0_0": 1.0})
        assert shared.steady_solve_count == 1
        assert grid_sim.steady_solve_count == before

    def test_model_without_solver_refactorises(self, grid_sim):
        rebuilt = ThermalSimulator.from_handles(grid_sim.model)
        assert rebuilt.steady_solver is not grid_sim.steady_solver
        assert rebuilt.steady_state({"C0_0": 7.0}).temperature_c(
            "C0_0"
        ) == pytest.approx(
            grid_sim.steady_state({"C0_0": 7.0}).temperature_c("C0_0")
        )

    def test_floorplan_and_model_are_exclusive(self, grid_sim):
        with pytest.raises(ThermalModelError, match="not both"):
            ThermalSimulator(grid_floorplan(2, 2), model=grid_sim.model)
        with pytest.raises(ThermalModelError, match="required"):
            ThermalSimulator()

    def test_package_alongside_model_rejected(self, grid_sim):
        with pytest.raises(ThermalModelError, match="already fixes"):
            ThermalSimulator(package=PackageConfig(ambient_c=20.0), model=grid_sim.model)

    def test_foreign_solver_rejected(self, grid_sim):
        other = ThermalSimulator(grid_floorplan(2, 2))
        with pytest.raises(ThermalModelError, match="different network"):
            ThermalSimulator.from_handles(grid_sim.model, other.steady_solver)

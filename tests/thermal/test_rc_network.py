"""Unit tests for the RC network builder and its validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal.rc_network import ThermalNetwork


def simple_two_node() -> ThermalNetwork:
    net = ThermalNetwork()
    net.add_node("a", capacitance=1.0)
    net.add_node("b", capacitance=2.0)
    net.add_resistance("a", "b", 2.0)
    net.add_ground_resistance("b", 4.0)
    return net


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(ThermalModelError, match="duplicate"):
            net.add_node("a")

    def test_negative_capacitance_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(ThermalModelError):
            net.add_node("a", capacitance=-1.0)

    def test_edge_to_unknown_node_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(ThermalModelError, match="unknown"):
            net.add_resistance("a", "b", 1.0)

    def test_self_loop_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        with pytest.raises(ThermalModelError, match="self-loop"):
            net.add_resistance("a", "a", 1.0)

    def test_nonpositive_resistance_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        net.add_node("b")
        with pytest.raises(ThermalModelError):
            net.add_resistance("a", "b", 0.0)
        with pytest.raises(ThermalModelError):
            net.add_ground_resistance("a", -1.0)

    def test_has_node(self):
        net = ThermalNetwork()
        net.add_node("a")
        assert net.has_node("a")
        assert not net.has_node("b")


class TestCompilationValidation:
    def test_empty_network_rejected(self):
        with pytest.raises(ThermalModelError, match="empty"):
            ThermalNetwork().compile()

    def test_no_ground_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_resistance("a", "b", 1.0)
        with pytest.raises(ThermalModelError, match="ambient"):
            net.compile()

    def test_floating_island_rejected(self):
        net = ThermalNetwork()
        net.add_node("a")
        net.add_node("island")
        net.add_ground_resistance("a", 1.0)
        with pytest.raises(ThermalModelError, match="island"):
            net.compile()

    def test_valid_network_compiles(self):
        compiled = simple_two_node().compile()
        assert len(compiled) == 2
        assert compiled.node_names == ("a", "b")


class TestCompiledMatrices:
    def test_conductance_matrix_values(self):
        compiled = simple_two_node().compile()
        g = compiled.conductance
        # g_ab = 0.5, ground on b = 0.25
        assert g[0, 0] == pytest.approx(0.5)
        assert g[0, 1] == pytest.approx(-0.5)
        assert g[1, 0] == pytest.approx(-0.5)
        assert g[1, 1] == pytest.approx(0.75)

    def test_conductance_symmetric(self):
        compiled = simple_two_node().compile()
        assert np.allclose(compiled.conductance, compiled.conductance.T)

    def test_capacitance_vector(self):
        compiled = simple_two_node().compile()
        assert compiled.capacitance.tolist() == [1.0, 2.0]

    def test_parallel_resistances_accumulate(self):
        net = ThermalNetwork()
        net.add_node("a")
        net.add_node("b")
        net.add_resistance("a", "b", 2.0)
        net.add_resistance("a", "b", 2.0)  # parallel pair -> 1 K/W
        net.add_ground_resistance("b", 1.0)
        g = net.compile().conductance
        assert g[0, 0] == pytest.approx(1.0)

    def test_index_of(self):
        compiled = simple_two_node().compile()
        assert compiled.index_of("b") == 1
        with pytest.raises(ThermalModelError):
            compiled.index_of("zz")


class TestPowerVector:
    def test_assembly(self):
        compiled = simple_two_node().compile()
        p = compiled.power_vector({"a": 3.0})
        assert p.tolist() == [3.0, 0.0]

    def test_unknown_node_rejected(self):
        compiled = simple_two_node().compile()
        with pytest.raises(ThermalModelError):
            compiled.power_vector({"zz": 1.0})

    def test_negative_power_rejected(self):
        compiled = simple_two_node().compile()
        with pytest.raises(ThermalModelError, match="non-negative"):
            compiled.power_vector({"a": -1.0})

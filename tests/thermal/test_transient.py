"""Unit tests for the transient solver.

The key physical property tested here is the one the paper's
modification M1 rests on: for a step power input from ambient, the
transient response rises monotonically toward the steady state and
never overshoots it.  This is what justifies validating test sessions
against steady-state temperatures only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.thermal.rc_network import ThermalNetwork
from repro.thermal.steady_state import SteadyStateSolver
from repro.thermal.transient import TransientSolver


def rc_single(r: float = 2.0, c: float = 3.0) -> ThermalNetwork:
    net = ThermalNetwork()
    net.add_node("x", capacitance=c)
    net.add_ground_resistance("x", r)
    return net


class TestAnalyticRC:
    def test_exponential_charging(self):
        """Single RC node: dT(t) = P R (1 - exp(-t / RC))."""
        r, c, p = 2.0, 3.0, 5.0
        tau = r * c
        solver = TransientSolver(rc_single(r, c).compile(), dt=tau / 2000.0)
        result = solver.simulate(np.array([p]), duration=3.0 * tau)
        expected = p * r * (1.0 - np.exp(-result.times / tau))
        # Backward Euler at tau/2000 tracks the analytic curve closely.
        assert np.allclose(result.rises[:, 0], expected, rtol=2e-3, atol=1e-4)

    def test_steady_state_is_the_limit(self):
        net = rc_single()
        compiled = net.compile()
        steady = SteadyStateSolver(compiled).solve(np.array([5.0]))
        transient = TransientSolver(compiled, dt=0.01).simulate(
            np.array([5.0]), duration=100.0
        )
        assert transient.final_rises() == pytest.approx(steady, rel=1e-6)

    def test_monotone_rise_no_overshoot(self):
        """The M1 bound: transient from ambient never exceeds steady state."""
        net = ThermalNetwork()
        net.add_node("a", 1.0)
        net.add_node("b", 2.0)
        net.add_resistance("a", "b", 1.5)
        net.add_ground_resistance("b", 0.5)
        compiled = net.compile()
        power = np.array([4.0, 1.0])
        steady = SteadyStateSolver(compiled).solve(power)
        result = TransientSolver(compiled, dt=0.01).simulate(power, duration=50.0)
        for col in range(2):
            trajectory = result.rises[:, col]
            assert np.all(np.diff(trajectory) >= -1e-12)  # monotone rise
            assert trajectory.max() <= steady[col] + 1e-9  # bounded by steady


class TestCoolingAndSchedules:
    def test_cooling_from_hot_state(self):
        net = rc_single(r=1.0, c=1.0)
        solver = TransientSolver(net.compile(), dt=0.001)
        hot = np.array([10.0])
        result = solver.simulate(np.zeros(1), duration=5.0, initial_rises=hot)
        # Exponential decay toward ambient.
        assert result.final_rises()[0] < 0.1
        assert np.all(np.diff(result.rises[:, 0]) <= 1e-12)

    def test_schedule_carries_state_across_intervals(self):
        net = rc_single(r=1.0, c=1.0)
        solver = TransientSolver(net.compile(), dt=0.001)
        intervals = [(np.array([10.0]), 2.0), (np.zeros(1), 2.0)]
        result = solver.simulate_schedule(intervals)
        # Peak occurs at the heat/cool boundary, then decays.
        peak_index = int(np.argmax(result.rises[:, 0]))
        boundary_index = int(np.searchsorted(result.times, 2.0)) - 1
        assert abs(peak_index - boundary_index) <= 1
        assert result.rises[-1, 0] < result.rises[peak_index, 0]

    def test_schedule_times_are_increasing(self):
        net = rc_single()
        solver = TransientSolver(net.compile(), dt=0.01)
        result = solver.simulate_schedule(
            [(np.array([1.0]), 0.5), (np.array([2.0]), 0.5)]
        )
        assert np.all(np.diff(result.times) > 0)

    def test_empty_schedule_rejected(self):
        solver = TransientSolver(rc_single().compile(), dt=0.01)
        with pytest.raises(SolverError):
            solver.simulate_schedule([])


class TestResultQueries:
    def test_peak_and_trajectory_queries(self):
        net = rc_single(r=2.0, c=1.0)
        solver = TransientSolver(net.compile(), dt=0.01)
        result = solver.simulate(np.array([1.0]), duration=20.0)
        assert result.peak_rise("x") == pytest.approx(2.0, rel=1e-3)
        assert result.rise_of("x").shape == result.times.shape


class TestValidation:
    def test_nonpositive_dt_rejected(self):
        with pytest.raises(SolverError):
            TransientSolver(rc_single().compile(), dt=0.0)

    def test_all_zero_capacitance_rejected(self):
        net = ThermalNetwork()
        net.add_node("x", capacitance=0.0)
        net.add_ground_resistance("x", 1.0)
        with pytest.raises(SolverError, match="capacitance"):
            TransientSolver(net.compile(), dt=0.01)

    def test_massless_junction_tolerated(self):
        net = ThermalNetwork()
        net.add_node("mass", capacitance=1.0)
        net.add_node("junction", capacitance=0.0)
        net.add_resistance("mass", "junction", 1.0)
        net.add_ground_resistance("junction", 1.0)
        solver = TransientSolver(net.compile(), dt=0.01)
        result = solver.simulate(np.array([1.0, 0.0]), duration=20.0)
        assert result.final_rises()[0] == pytest.approx(2.0, rel=1e-2)

    def test_bad_power_shape_rejected(self):
        solver = TransientSolver(rc_single().compile(), dt=0.01)
        with pytest.raises(SolverError, match="shape"):
            solver.simulate(np.zeros(5), duration=1.0)

    def test_bad_duration_rejected(self):
        solver = TransientSolver(rc_single().compile(), dt=0.01)
        with pytest.raises(SolverError):
            solver.simulate(np.zeros(1), duration=-1.0)

"""Unit + property tests for the steady-state solver.

Analytic cases first (hand-solvable ladder networks), then the physical
invariants: superposition (the system is linear), reciprocity (G is
symmetric), and positivity (heating any node warms every connected
node).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.thermal.rc_network import ThermalNetwork
from repro.thermal.steady_state import SteadyStateSolver


def ladder(r_ab: float = 2.0, r_bg: float = 4.0) -> SteadyStateSolver:
    """a --r_ab-- b --r_bg-- ground."""
    net = ThermalNetwork()
    net.add_node("a", 1.0)
    net.add_node("b", 1.0)
    net.add_resistance("a", "b", r_ab)
    net.add_ground_resistance("b", r_bg)
    return SteadyStateSolver(net.compile())


class TestAnalyticCases:
    def test_single_node(self):
        net = ThermalNetwork()
        net.add_node("x", 1.0)
        net.add_ground_resistance("x", 3.0)
        solver = SteadyStateSolver(net.compile())
        rises = solver.solve_by_name({"x": 2.0})
        # dT = P * R = 2 * 3
        assert rises["x"] == pytest.approx(6.0)

    def test_two_node_ladder(self):
        solver = ladder(r_ab=2.0, r_bg=4.0)
        rises = solver.solve_by_name({"a": 1.0})
        # All 1 W flows a->b->ground: dT_b = 4, dT_a = 4 + 2.
        assert rises["b"] == pytest.approx(4.0)
        assert rises["a"] == pytest.approx(6.0)

    def test_zero_power_means_ambient(self):
        solver = ladder()
        rises = solver.solve_by_name({})
        assert rises["a"] == pytest.approx(0.0)
        assert rises["b"] == pytest.approx(0.0)

    def test_parallel_paths_split_heat(self):
        # a has two routes to ground: direct (2 K/W) and via b (1+1 K/W).
        net = ThermalNetwork()
        net.add_node("a", 1.0)
        net.add_node("b", 1.0)
        net.add_resistance("a", "b", 1.0)
        net.add_ground_resistance("a", 2.0)
        net.add_ground_resistance("b", 1.0)
        solver = SteadyStateSolver(net.compile())
        rises = solver.solve_by_name({"a": 1.0})
        # Requivalent at a = 2 || (1 + 1) = 1.0
        assert rises["a"] == pytest.approx(1.0)

    def test_self_resistance_query(self):
        solver = ladder(r_ab=2.0, r_bg=4.0)
        assert solver.input_output_resistance("a") == pytest.approx(6.0)
        assert solver.input_output_resistance("b") == pytest.approx(4.0)

    def test_transfer_resistance_reciprocity(self):
        solver = ladder()
        assert solver.transfer_resistance("a", "b") == pytest.approx(
            solver.transfer_resistance("b", "a")
        )


class TestErrorHandling:
    def test_shape_mismatch_rejected(self):
        solver = ladder()
        with pytest.raises(SolverError, match="shape"):
            solver.solve(np.zeros(3))


def random_grounded_network(draw) -> ThermalNetwork:
    """Strategy helper: a random connected network with ground ties."""
    n = draw(st.integers(min_value=2, max_value=8))
    net = ThermalNetwork()
    for i in range(n):
        net.add_node(f"n{i}", capacitance=1.0)
    # Spanning chain guarantees connectivity.
    for i in range(n - 1):
        r = draw(st.floats(min_value=0.1, max_value=10.0))
        net.add_resistance(f"n{i}", f"n{i + 1}", r)
    # A few extra random edges.
    extras = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extras):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1))
        if i != j:
            net.add_resistance(
                f"n{i}", f"n{j}", draw(st.floats(min_value=0.1, max_value=10.0))
            )
    net.add_ground_resistance("n0", draw(st.floats(min_value=0.1, max_value=10.0)))
    return net


@st.composite
def grounded_networks(draw):
    return random_grounded_network(draw)


@settings(max_examples=40, deadline=None)
@given(net=grounded_networks(), power=st.floats(min_value=0.0, max_value=100.0))
def test_property_positivity(net, power):
    """Injecting non-negative power never cools any node below ambient."""
    solver = SteadyStateSolver(net.compile())
    rises = solver.solve_by_name({"n0": power})
    assert all(r >= -1e-9 for r in rises.values())


@settings(max_examples=40, deadline=None)
@given(net=grounded_networks())
def test_property_superposition(net):
    """solve(P1 + P2) == solve(P1) + solve(P2): the system is linear."""
    solver = SteadyStateSolver(net.compile())
    n = len(solver.network)
    rng = np.random.default_rng(0)
    p1 = rng.uniform(0.0, 5.0, n)
    p2 = rng.uniform(0.0, 5.0, n)
    combined = solver.solve(p1 + p2)
    separate = solver.solve(p1) + solver.solve(p2)
    assert np.allclose(combined, separate, rtol=1e-9, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(net=grounded_networks())
def test_property_reciprocity(net):
    """Transfer resistances are symmetric for any topology."""
    solver = SteadyStateSolver(net.compile())
    names = solver.network.node_names
    a, b = names[0], names[-1]
    assert solver.transfer_resistance(a, b) == pytest.approx(
        solver.transfer_resistance(b, a), rel=1e-9
    )


@settings(max_examples=40, deadline=None)
@given(net=grounded_networks())
def test_property_self_resistance_dominates_transfer(net):
    """dT at the source is at least the dT anywhere else (max principle)."""
    solver = SteadyStateSolver(net.compile())
    names = solver.network.node_names
    source = names[0]
    rises = solver.solve_by_name({source: 1.0})
    assert rises[source] >= max(rises.values()) - 1e-12

"""Wire-frame codec tests for the JSONL protocol."""

from __future__ import annotations

import json

import pytest

from repro.api import ScheduleRequest
from repro.engine import ScenarioSpec
from repro.errors import ProtocolError
from repro.service import (
    decode_frame,
    encode_frame,
    error_frame,
    parse_submit_frame,
    ping_frame,
    stats_frame,
    submit_frame,
)

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)
SCENARIO_REQUEST = ScheduleRequest(
    scenario=ScenarioSpec(kind="grid", rows=2, cols=2),
    tl_headroom=1.3,
    stcl_headroom=2.0,
    solver="thermal_aware",
    params={"weight_factor": 1.2},
)


class TestFrameCodec:
    def test_encode_is_one_newline_terminated_line(self):
        wire = encode_frame(ping_frame("p1"))
        assert wire.endswith(b"\n")
        assert wire.count(b"\n") == 1

    def test_round_trip(self):
        frame = submit_frame("c1", REQUEST, timeout_s=5.0)
        assert decode_frame(encode_frame(frame)) == frame

    def test_decode_accepts_str_and_bytes(self):
        frame = stats_frame("s1")
        assert decode_frame(encode_frame(frame)) == frame
        assert decode_frame(json.dumps(frame)) == frame

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_frame(b"{not json}\n")

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_frame(b"[1, 2]\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_frame(b'{"type": "teleport"}\n')

    def test_missing_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            decode_frame(b'{"id": "x"}\n')

    def test_non_utf8_rejected(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_frame(b'\xff\xfe{"type": "ping"}\n')


class TestSubmitFrames:
    @pytest.mark.parametrize("request_", [REQUEST, SCENARIO_REQUEST])
    def test_request_round_trips_through_submit_frame(self, request_):
        frame = decode_frame(encode_frame(submit_frame("c7", request_)))
        parsed, timeout_s, stream = parse_submit_frame(frame)
        assert parsed == request_
        assert parsed.content_hash() == request_.content_hash()
        assert timeout_s is None
        assert stream is False

    def test_timeout_parsed(self):
        parsed, timeout_s, _ = parse_submit_frame(submit_frame("c1", REQUEST, 2.5))
        assert parsed == REQUEST
        assert timeout_s == 2.5

    def test_stream_flag_round_trips(self):
        frame = decode_frame(
            encode_frame(submit_frame("c1", REQUEST, stream=True))
        )
        _, _, stream = parse_submit_frame(frame)
        assert stream is True

    def test_plain_submit_carries_no_stream_key(self):
        assert "stream" not in submit_frame("c1", REQUEST)

    @pytest.mark.parametrize("bad", [1, "yes", None])
    def test_bad_stream_rejected(self, bad):
        frame = submit_frame("c1", REQUEST)
        frame["stream"] = bad
        with pytest.raises(ProtocolError, match="stream"):
            parse_submit_frame(frame)

    def test_missing_request_rejected(self):
        with pytest.raises(ProtocolError, match="no request"):
            parse_submit_frame({"type": "submit", "id": "c1"})

    def test_invalid_request_rejected(self):
        frame = submit_frame("c1", REQUEST)
        frame["request"]["soc"] = "not-a-platform"
        with pytest.raises(ProtocolError, match="bad request"):
            parse_submit_frame(frame)

    def test_malformed_request_payload_rejected(self):
        frame = submit_frame("c1", REQUEST)
        frame["request"]["no_such_field"] = 1
        with pytest.raises(ProtocolError, match="malformed request"):
            parse_submit_frame(frame)

    @pytest.mark.parametrize("bad", [0.0, -1.0, "soon"])
    def test_bad_timeout_rejected(self, bad):
        frame = submit_frame("c1", REQUEST)
        frame["timeout_s"] = bad
        with pytest.raises(ProtocolError, match="timeout_s"):
            parse_submit_frame(frame)


class TestErrorFrames:
    def test_error_frame_carries_type_and_hash(self):
        frame = error_frame(
            "c9", "boom", "SchedulingError", request_hash="abc123"
        )
        decoded = decode_frame(encode_frame(frame))
        assert decoded["error_type"] == "SchedulingError"
        assert decoded["request_hash"] == "abc123"
        assert decoded["id"] == "c9"

"""Service stress/soak tests: many clients, repetitive traffic, real TCP.

The shape the answer cache exists for: a fleet of dashboards asking a
handful of questions over and over.  A burst of concurrent connections
with ~80% repeated requests must resolve with

* exactly one report per submission (nothing lost, nothing duplicated),
* exactly one worker execution per *distinct* content hash (in-flight
  dedup catches concurrent repeats, the answer cache catches later
  ones),
* a 100% cache-hit rate once every answer is warm, and
* a clean drain while submissions (and their cache writes) are still
  in flight.
"""

from __future__ import annotations

import asyncio
import random

from repro.api import ScheduleRequest
from repro.service import (
    AsyncServiceClient,
    ScheduleServer,
    ScheduleService,
)

#: Concurrent client connections in the burst.
N_CLIENTS = 6

#: Submissions per client.
PER_CLIENT = 20

#: The distinct questions; everything else is repetition (~80%).
DISTINCT = [
    ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0),
    ScheduleRequest(soc="worked_example6", tl_c=84.0, stcl=60.0),
    ScheduleRequest(soc="worked_example6", tl_c=80.0, solver="sequential"),
    ScheduleRequest(soc="worked_example6", tl_c=80.0, solver="random"),
]


def burst_for(seed: int) -> list[ScheduleRequest]:
    """PER_CLIENT requests, every distinct one present, rest repeats."""
    rng = random.Random(seed)
    requests = list(DISTINCT)
    requests += [rng.choice(DISTINCT) for _ in range(PER_CLIENT - len(DISTINCT))]
    rng.shuffle(requests)
    return requests


class TestRepeatTrafficBurst:
    def test_multi_client_burst_solves_each_hash_once(self):
        """N clients x ~80% repeats: one solve per distinct hash, total."""

        async def main():
            async with ScheduleService(backend="thread", max_workers=4) as svc:
                server = ScheduleServer(svc, port=0)
                await server.start()
                try:

                    async def one_client(seed: int):
                        requests = burst_for(seed)
                        async with await AsyncServiceClient.connect(
                            port=server.port
                        ) as client:
                            frames = await client.submit_many(
                                requests, decode=False
                            )
                        return requests, frames

                    results = await asyncio.gather(
                        *(one_client(seed) for seed in range(N_CLIENTS))
                    )
                    stats = svc.metrics()
                finally:
                    await server.stop()
            return results, stats

        results, stats = asyncio.run(main())

        # One report per submission, correlated per client by hash.
        total = N_CLIENTS * PER_CLIENT
        expected: dict[str, int] = {}
        answered: dict[str, int] = {}
        for requests, frames in results:
            assert len(frames) == len(requests)
            assert all(f["type"] == "report" for f in frames)
            for request in requests:
                key = request.content_hash()
                expected[key] = expected.get(key, 0) + 1
            for frame in frames:
                key = frame["request_hash"]
                answered[key] = answered.get(key, 0) + 1
        assert answered == expected
        assert len(expected) == len(DISTINCT)

        # No duplicate solves for identical hashes: every repeat was
        # absorbed by in-flight dedup or the answer cache.
        assert stats.submitted == total
        assert stats.solves_started == len(DISTINCT)
        assert stats.deduped + stats.answer_hits == total - len(DISTINCT)
        assert stats.errors == 0

    def test_warm_second_wave_hits_the_cache_entirely(self):
        """Wave 1 populates; wave 2 (all repeats) must be 100% hits."""

        async def main():
            async with ScheduleService(backend="thread", max_workers=4) as svc:
                server = ScheduleServer(svc, port=0)
                await server.start()
                try:
                    async with await AsyncServiceClient.connect(
                        port=server.port
                    ) as client:
                        await client.submit_many(DISTINCT)  # warm
                        before = await client.stats()
                        wave = [
                            DISTINCT[i % len(DISTINCT)] for i in range(40)
                        ]
                        frames = await client.submit_many(wave, decode=False)
                        after = await client.stats()
                finally:
                    await server.stop()
            return before, frames, after

        before, frames, after = asyncio.run(main())
        # Every wave-2 answer came from memory, flagged as such.
        assert all(f["report"]["cached"] for f in frames)
        assert after["answer_hits"] - before["answer_hits"] == 40
        assert after["solves_started"] == before["solves_started"]
        hit_rate = after["answer_cache"]["hits"] / (
            after["answer_cache"]["hits"] + after["answer_cache"]["misses"]
        )
        assert hit_rate >= 0.8  # 40 hits over 44 lookups

    def test_drain_with_inflight_submissions_and_cache_writes(self):
        """Stop(drain=True) while a burst is mid-queue: everything lands."""

        async def main():
            svc = ScheduleService(backend="thread", max_workers=2)
            await svc.start()
            requests = [
                ScheduleRequest(
                    soc="worked_example6", tl_c=80.0 + i % 3, stcl=60.0
                )
                for i in range(12)
            ]
            jobs = [await svc.submit(request) for request in requests]
            # Drain immediately: queued jobs, running jobs and their
            # pending answer-cache writes must all complete.
            await svc.stop(drain=True)
            assert all(job.done for job in jobs)
            outcomes = [job.future.result() for job in jobs]
            assert all(o.ok for o in outcomes)
            metrics = svc.metrics()
            assert metrics.queue_depth == 0
            assert metrics.in_flight == 0
            # The cache saw every resolved distinct answer even though
            # the service stopped right after the burst.
            assert metrics.answer_cache.entries == 3
            assert svc.answer_cache.get(requests[0].content_hash()) is not None

        asyncio.run(main())

    def test_soak_rounds_keep_counters_consistent(self):
        """Several sequential bursts: invariants hold round after round."""

        async def main():
            async with ScheduleService(backend="thread", max_workers=4) as svc:
                server = ScheduleServer(svc, port=0)
                await server.start()
                try:
                    for round_no in range(3):
                        async with await AsyncServiceClient.connect(
                            port=server.port
                        ) as client:
                            wave = burst_for(seed=100 + round_no)
                            frames = await client.submit_many(
                                wave, decode=False
                            )
                            assert len(frames) == len(wave)
                            stats = await client.stats()
                            assert (
                                stats["solves_started"]
                                + stats["deduped"]
                                + stats["answer_hits"]
                                == stats["submitted"]
                            )
                            assert stats["errors"] == 0
                    final = svc.metrics()
                finally:
                    await server.stop()
            return final

        final = asyncio.run(main())
        # Across all rounds each distinct hash solved exactly once: the
        # cache carried answers across waves and connections.
        assert final.solves_started == len(DISTINCT)
        assert final.submitted == 3 * PER_CLIENT

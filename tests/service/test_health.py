"""Circuit breaker and shard health, stepped with an injected clock."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service import CircuitBreaker, ShardHealth
from repro.service.fleet.health import BREAKER_STATES


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("cooldown_s", 5.0)
    kwargs.setdefault("recovery_threshold", 2)
    breaker = CircuitBreaker(clock=clock, **kwargs)
    return breaker, clock


class TestClosedState:
    def test_starts_closed_and_allowing(self):
        breaker, _clock = make_breaker()
        assert breaker.state == "closed"
        assert breaker.allows()

    def test_scattered_failures_do_not_trip(self):
        breaker, _clock = make_breaker()
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()  # resets the consecutive count
        assert breaker.state == "closed"

    def test_consecutive_failures_trip_open(self):
        breaker, _clock = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows()


class TestOpenState:
    def trip(self) -> tuple[CircuitBreaker, FakeClock]:
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        return breaker, clock

    def test_cooldown_moves_to_half_open(self):
        breaker, clock = self.trip()
        clock.advance(4.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half_open"
        assert breaker.allows()

    def test_in_flight_success_while_open_goes_to_probation(self):
        breaker, _clock = self.trip()
        breaker.record_success()
        assert breaker.state == "half_open"


class TestHalfOpenState:
    def half_open(self) -> tuple[CircuitBreaker, FakeClock]:
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == "half_open"
        return breaker, clock

    def test_recovery_threshold_closes(self):
        breaker, _clock = self.half_open()
        breaker.record_success()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_any_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self.half_open()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(4.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half_open"

    def test_full_outage_recovery_cycle(self):
        # The scenario the fleet-smoke job replays with a real SIGKILL.
        breaker, clock = make_breaker()
        for _ in range(3):
            breaker.record_failure()  # shard dies
        assert not breaker.allows()
        clock.advance(5.0)  # shard relaunches during cooldown
        for _ in range(2):
            breaker.record_success()  # probation probes pass
        assert breaker.state == "closed"
        assert breaker.allows()


class TestValidation:
    def test_states_catalogue(self):
        assert set(BREAKER_STATES) == {"closed", "open", "half_open"}

    def test_thresholds_must_be_positive(self):
        with pytest.raises(ServiceError, match="thresholds"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ServiceError, match="thresholds"):
            CircuitBreaker(recovery_threshold=0)

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ServiceError, match="cooldown"):
            CircuitBreaker(cooldown_s=-1.0)


class TestShardHealth:
    def test_probe_bookkeeping_and_last_error(self):
        clock = FakeClock()
        health = ShardHealth("127.0.0.1:7788", clock=clock)
        health.record_probe(True)
        health.record_probe(False, "ConnectionRefusedError: [Errno 111]")
        assert health.probes == 2
        assert health.probe_failures == 1
        assert "Refused" in health.last_error
        assert health.healthy  # one failure does not trip the breaker

    def test_unhealthy_explains_why_then_recovers_clean(self):
        clock = FakeClock()
        health = ShardHealth(
            "s1", failure_threshold=2, cooldown_s=1.0, recovery_threshold=1,
            clock=clock,
        )
        health.record_probe(False, "boom")
        health.record_probe(False, "boom")
        assert not health.healthy
        snapshot = health.to_dict()
        assert snapshot["healthy"] is False
        assert snapshot["breaker"] == "open"
        assert snapshot["last_error"] == "boom"
        clock.advance(1.0)
        health.record_probe(True)
        assert health.healthy
        assert health.to_dict()["breaker"] == "closed"
        assert health.last_error is None

    def test_to_dict_shape_matches_the_fleet_frame(self):
        health = ShardHealth("s1")
        assert set(health.to_dict()) == {
            "name",
            "healthy",
            "breaker",
            "probes",
            "probe_failures",
            "last_error",
        }

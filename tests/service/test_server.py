"""TCP server + client tests, driving a real in-process server over localhost."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.api import ScheduleRequest
from repro.engine import ScenarioSpec
from repro.errors import ProtocolError, ServiceError
from repro.service import (
    AsyncServiceClient,
    ScheduleServer,
    ScheduleService,
    ServiceClient,
    encode_frame,
    submit_frame,
)

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)
INFEASIBLE = ScheduleRequest(soc="worked_example6", tl_c=30.0, stcl=60.0)


def run_with_server(test_coro, **service_kwargs):
    """Start service + TCP server, run *test_coro(server, service)*, tear down."""

    async def main():
        service_kwargs.setdefault("backend", "thread")
        service_kwargs.setdefault("max_workers", 2)
        async with ScheduleService(**service_kwargs) as service:
            server = ScheduleServer(service, host="127.0.0.1", port=0)
            await server.start()
            try:
                return await test_coro(server, service)
            finally:
                await server.stop()

    return asyncio.run(main())


class TestAsyncClient:
    def test_submit_decodes_a_report(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(port=server.port) as client:
                report = await client.submit(REQUEST)
                assert report.solver == "thermal_aware"
                assert report.request == REQUEST
                assert report.request_hash == REQUEST.content_hash()
                assert report.max_temperature_c < 80.0

        run_with_server(scenario)

    def test_raw_frames_carry_hash_and_report(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(port=server.port) as client:
                frame = await client.submit(REQUEST, decode=False)
                assert frame["type"] == "report"
                assert frame["request_hash"] == REQUEST.content_hash()
                assert frame["report"]["solver"] == "thermal_aware"

        run_with_server(scenario)

    def test_solve_failure_raises_with_origin_type(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(port=server.port) as client:
                with pytest.raises(ServiceError, match="CoreThermalViolation"):
                    await client.submit(INFEASIBLE)

        run_with_server(scenario)

    def test_ping_and_stats(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(port=server.port) as client:
                assert await client.ping() < 5.0
                await client.submit(REQUEST)
                stats = await client.stats()
                assert stats["submitted"] == 1
                assert stats["completed"] == 1
                assert stats["backend"] == "thread"
                assert stats["cache"]["entries"] == 1

        run_with_server(scenario)

    def test_stream_yields_in_completion_order(self):
        async def scenario(server, service):
            requests = [
                ScheduleRequest(soc="worked_example6", tl_c=80.0 + i, stcl=60.0)
                for i in range(3)
            ]
            async with await AsyncServiceClient.connect(port=server.port) as client:
                seen = {}
                async for index, result in client.stream(requests):
                    seen[index] = result
                assert sorted(seen) == [0, 1, 2]
                assert all(r.n_sessions >= 1 for r in seen.values())

        run_with_server(scenario)

    def test_submit_after_connection_loss_reconnects(self):
        async def scenario(server, service):
            from repro.errors import ServiceConnectionError

            client = await AsyncServiceClient.connect(port=server.port)
            await client.submit(REQUEST)
            # Sever the connection abruptly (a dead network path, a
            # killed server box): in-flight calls at the moment of loss
            # fail fast with the typed retryable error — not a hang on
            # a write the dead transport buffers silently.
            pending = asyncio.ensure_future(client.submit(INFEASIBLE))
            await asyncio.sleep(0)  # let the submit reach the wire
            client._writer.transport.abort()
            with pytest.raises(ServiceConnectionError, match="closed"):
                await asyncio.wait_for(pending, 10)
            assert client.connection_lost
            # The client object is not poisoned: with the server still
            # alive, the next call re-dials transparently (even with no
            # retry policy) and completes.
            report = await asyncio.wait_for(client.submit(REQUEST), 10)
            assert report.n_sessions >= 1
            assert not client.connection_lost
            await client.close()

        run_with_server(scenario)

    def test_submit_against_a_dead_server_raises_typed_retryable(self):
        async def scenario(server, service):
            from repro.errors import ServiceConnectionError

            client = await AsyncServiceClient.connect(port=server.port)
            await client.submit(REQUEST)
            # Kill the listener too: the reconnect attempt must surface
            # the typed, retryable connection error, not a raw OSError.
            await server.stop()
            client._writer.transport.abort()
            await asyncio.sleep(0.05)  # let the loss reach the read loop
            with pytest.raises(ServiceConnectionError, match="cannot connect"):
                await asyncio.wait_for(client.submit(REQUEST), 10)
            assert ServiceConnectionError("x").retryable
            await client.close()

        run_with_server(scenario)

    def test_busy_resolved_job_yields_an_error_frame_not_a_hang(self):
        """A job future resolved with ServiceBusyError (a dedup waiter
        whose originating submission was cancelled) must come back as
        an error frame — the answer task dying silently would leave
        the client waiting forever."""

        async def scenario(server, service):
            from repro.errors import ServiceBusyError
            from repro.service import ServiceJob

            loop = asyncio.get_running_loop()

            async def pre_failed_submit(request, *, timeout_s=None, stream=False):
                job = ServiceJob(
                    request, request.content_hash(), None, loop.create_future()
                )
                job.future.set_exception(
                    ServiceBusyError("the queue was full; retry")
                )
                job.future.exception()
                return job

            service.submit = pre_failed_submit  # type: ignore[method-assign]
            async with await AsyncServiceClient.connect(port=server.port) as client:
                with pytest.raises(ServiceBusyError, match="retry"):
                    await asyncio.wait_for(client.submit(REQUEST), 10)

        run_with_server(scenario)

    def test_connect_refused_is_a_service_error(self):
        async def main():
            with pytest.raises(ServiceError, match="cannot connect"):
                await AsyncServiceClient.connect(port=1)  # nothing listens

        asyncio.run(main())


class TestProtocolOverTcp:
    def test_garbage_line_gets_error_frame_not_disconnect(self):
        async def scenario(server, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"this is not json\n")
            await writer.drain()
            frame = json.loads(await reader.readline())
            assert frame["type"] == "error"
            assert frame["error_type"] == "ProtocolError"
            # The connection survives: a valid frame still works.
            writer.write(encode_frame(submit_frame("ok1", REQUEST)))
            await writer.drain()
            frame = json.loads(await reader.readline())
            assert frame["type"] == "report"
            assert frame["id"] == "ok1"
            writer.close()
            await writer.wait_closed()

        run_with_server(scenario)

    def test_server_side_frame_type_rejected(self):
        async def scenario(server, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(encode_frame({"type": "report", "id": "x"}))
            await writer.drain()
            frame = json.loads(await reader.readline())
            assert frame["type"] == "error"
            assert "may not send" in frame["error"]
            writer.close()
            await writer.wait_closed()

        run_with_server(scenario)

    def test_bad_request_payload_gets_error_frame(self):
        async def scenario(server, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            frame = submit_frame("b1", REQUEST)
            frame["request"]["soc"] = "atlantis"
            writer.write(encode_frame(frame))
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["type"] == "error"
            assert response["id"] == "b1"
            assert response["error_type"] == "ProtocolError"
            writer.close()
            await writer.wait_closed()

        run_with_server(scenario)


class TestSyncClient:
    def test_sync_submit_and_stats_from_another_thread(self):
        async def scenario(server, service):
            port = server.port
            results = {}

            def blocking_calls():
                with ServiceClient(port=port) as client:
                    results["report"] = client.submit(REQUEST)
                    results["rtt"] = client.ping()
                    results["stats"] = client.stats()
                    results["many"] = client.submit_many(
                        [REQUEST, INFEASIBLE], return_errors=True
                    )

            # The sync client owns its own loop; run it off-loop the
            # way a script or the CLI would.
            await asyncio.to_thread(blocking_calls)
            assert results["report"].solver == "thermal_aware"
            assert results["rtt"] < 5.0
            assert results["stats"]["completed"] >= 1
            ok, err = results["many"]
            assert ok.solver == "thermal_aware"
            assert isinstance(err, ServiceError)

        run_with_server(scenario)


class TestAcceptanceBurst:
    """The ISSUE's acceptance scenario, verbatim.

    An in-process ScheduleService with *process* workers sustains a
    100-request mixed-solver burst over the TCP protocol with zero
    lost or duplicated reports, deduplicates identical concurrent
    requests to a single solve (asserted via solve counters), and
    drains cleanly on shutdown (no pending futures, executor joined).
    """

    def distinct_requests(self) -> list[ScheduleRequest]:
        grid = ScenarioSpec(kind="grid", rows=2, cols=2)
        return [
            ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0),
            ScheduleRequest(soc="worked_example6", tl_c=85.0, stcl=60.0),
            ScheduleRequest(soc="worked_example6", tl_c=80.0, solver="sequential"),
            ScheduleRequest(soc="worked_example6", tl_c=80.0, solver="random"),
            ScheduleRequest(
                soc="worked_example6",
                tl_c=80.0,
                solver="power_constrained",
                params={"power_limit_w": 25.0},
            ),
            ScheduleRequest(scenario=grid, tl_headroom=1.3, stcl_headroom=2.0),
            ScheduleRequest(scenario=grid, tl_headroom=1.3, solver="sequential"),
            ScheduleRequest(scenario=grid, tl_headroom=1.4, stcl_headroom=2.0),
        ]

    def test_100_request_mixed_solver_burst(self):
        distinct = self.distinct_requests()
        burst = [distinct[i % len(distinct)] for i in range(100)]

        async def scenario(server, service):
            async with await AsyncServiceClient.connect(port=server.port) as client:
                frames = await client.submit_many(burst, decode=False)
                stats = await client.stats()
            return frames, stats

        service = ScheduleService(backend="process", max_workers=2)

        async def main():
            async with service:
                server = ScheduleServer(service, host="127.0.0.1", port=0)
                await server.start()
                try:
                    return await scenario(server, service)
                finally:
                    await server.stop()

        frames, stats = asyncio.run(main())

        # Zero lost, zero duplicated: exactly one report frame per
        # submission, and per distinct request exactly as many frames
        # as submissions of it.
        assert len(frames) == 100
        assert all(f["type"] == "report" for f in frames)
        by_hash: dict[str, int] = {}
        for frame in frames:
            by_hash[frame["request_hash"]] = by_hash.get(frame["request_hash"], 0) + 1
        expected: dict[str, int] = {}
        for request in burst:
            key = request.content_hash()
            expected[key] = expected.get(key, 0) + 1
        assert by_hash == expected

        # Dedup + answer cache asserted via the solve counters:
        # identical concurrent requests collapsed to one in-flight
        # solve, identical *later* requests were answered from the
        # cache; every distinct request solved at least once.
        assert stats["submitted"] == 100
        assert (
            stats["solves_started"] + stats["deduped"] + stats["answer_hits"]
            == 100
        )
        assert len(distinct) <= stats["solves_started"] < 100
        # `completed` counts resolved *jobs* (unique solves): every
        # solve that ran succeeded, none errored.
        assert stats["completed"] == stats["solves_started"]
        assert stats["errors"] == 0

        # Drained cleanly: nothing pending, nothing queued, and the
        # executor is joined (refuses new work).
        metrics = service.metrics()
        assert metrics.queue_depth == 0
        assert metrics.in_flight == 0
        assert metrics.solves_completed == metrics.solves_started
        with pytest.raises(RuntimeError):
            service._executor.submit(int)
        assert not service.running

"""Fleet router: affinity, failover, health, and the chaos acceptance run."""

from __future__ import annotations

import asyncio
import random
from contextlib import AsyncExitStack

import pytest

from repro.api import ScheduleRequest
from repro.errors import ServiceConnectionError, ServiceError
from repro.service import (
    AsyncServiceClient,
    ChaosProxy,
    FleetRouter,
    RetryPolicy,
    ScheduleServer,
    ScheduleService,
)
from repro.service.fleet.router import parse_shard

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)


async def instant_sleep(_delay: float) -> None:
    await asyncio.sleep(0)


def fast_policy(attempts: int = 2) -> RetryPolicy:
    return RetryPolicy(
        max_attempts=attempts, rng=random.Random(0), sleep=instant_sleep
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def run_fleet(scenario, n_shards: int = 3, **router_kwargs):
    """Start *n_shards* servers + a router, run scenario, tear down."""

    async def main():
        async with AsyncExitStack() as stack:
            services = []
            servers = []
            for _ in range(n_shards):
                service = await stack.enter_async_context(
                    ScheduleService(backend="thread", max_workers=2)
                )
                server = ScheduleServer(service, host="127.0.0.1", port=0)
                await server.start()
                stack.push_async_callback(server.stop)
                services.append(service)
                servers.append(server)
            shards = [f"127.0.0.1:{s.port}" for s in servers]
            router_kwargs.setdefault("probe_interval_s", None)
            router_kwargs.setdefault("retry_policy", fast_policy())
            router = FleetRouter(shards, **router_kwargs)
            await router.start()
            stack.push_async_callback(router.stop)
            return await scenario(router, servers, services)

    return asyncio.run(main())


def service_by_shard(router, servers, services):
    """Map shard name -> its backing service."""
    return {
        f"127.0.0.1:{server.port}": service
        for server, service in zip(servers, services)
    }


class TestParseShard:
    def test_host_port(self):
        assert parse_shard("10.1.2.3:7788") == ("10.1.2.3", 7788)

    def test_bare_port_means_localhost(self):
        assert parse_shard("7788") == ("127.0.0.1", 7788)

    def test_garbage_rejected(self):
        with pytest.raises(ServiceError, match="shard spec"):
            parse_shard("host:seven")
        with pytest.raises(ServiceError, match="port"):
            parse_shard("host:0")

    def test_empty_fleet_rejected(self):
        with pytest.raises(ServiceError, match="at least one"):
            FleetRouter([])

    def test_duplicate_shards_rejected(self):
        with pytest.raises(ServiceError, match="duplicate"):
            FleetRouter(["127.0.0.1:7788", "7788"])


class TestRouting:
    def test_identical_requests_share_one_shard_and_one_solve(self):
        async def scenario(router, servers, services):
            by_shard = service_by_shard(router, servers, services)
            owner = router.ring.owner(REQUEST.content_hash())
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                first = await client.submit(REQUEST)
                second = await client.submit(REQUEST)
            assert first.request_hash == second.request_hash
            assert second.cached  # answered from the owner's cache
            solves = {
                name: svc.metrics().solves_started
                for name, svc in by_shard.items()
            }
            assert solves[owner] == 1
            assert all(n == 0 for name, n in solves.items() if name != owner)
            counters = router.router_counters()
            assert counters["submits"] == 2
            assert counters["routed"] == 2
            assert counters["failovers"] == 0

        run_fleet(scenario)

    def test_stats_frame_aggregates_the_fleet(self):
        async def scenario(router, servers, services):
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                await client.submit(REQUEST)
                stats = await client.stats()
            assert stats["backend"] == "fleet"
            assert stats["shard_count"] == 3
            assert stats["healthy_shards"] == 3
            assert stats["submitted"] == 1

        run_fleet(scenario)

    def test_fleet_stats_frame_breaks_out_every_shard(self):
        async def scenario(router, servers, services):
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                await client.submit(REQUEST)
                fleet = await client.fleet_stats()
            assert set(fleet["shards"]) == set(router.shards)
            for entry in fleet["shards"].values():
                assert entry["healthy"] is True
                assert entry["breaker"] == "closed"
                assert entry["stats"] is not None
            assert fleet["aggregate"]["solves_started"] == 1
            assert fleet["router"]["routed"] == 1

        run_fleet(scenario)

    def test_solve_errors_relay_verbatim_without_failover(self):
        # A deterministic solver failure fails identically on every
        # shard; bouncing it around the ring would just triple the cost.
        infeasible = ScheduleRequest(
            soc="worked_example6", tl_c=30.0, stcl=60.0
        )

        async def scenario(router, servers, services):
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                with pytest.raises(ServiceError, match="CoreThermalViolation"):
                    await client.submit(infeasible)
            counters = router.router_counters()
            assert counters["failovers"] == 0
            assert counters["relayed_errors"] == 1

        run_fleet(scenario)


class TestFailover:
    def test_dead_owner_fails_over_along_the_ring(self):
        async def scenario(router, servers, services):
            by_shard = service_by_shard(router, servers, services)
            key = REQUEST.content_hash()
            preference = list(router.ring.preference(key))
            owner, second = preference[0], preference[1]
            # Kill the owner before any connection is pooled to it.
            dead = next(
                s for s in servers if f"127.0.0.1:{s.port}" == owner
            )
            await dead.stop()
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                report = await asyncio.wait_for(client.submit(REQUEST), 60)
            assert report.n_sessions >= 1
            assert by_shard[second].metrics().solves_started == 1
            counters = router.router_counters()
            assert counters["failovers"] == 1
            assert counters["routed"] == 1
            assert router.health(owner).last_error is not None

        run_fleet(scenario)

    def test_whole_ring_dark_is_an_honest_retryable_error(self):
        async def scenario(router, servers, services):
            for server in servers:
                await server.stop()
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                frame = await asyncio.wait_for(
                    client.submit_raw(REQUEST), 60
                )
                assert frame["type"] == "error"
                assert frame["error_type"] == "ServiceConnectionError"
                assert frame["retryable"] is True
                assert frame["request_hash"] == REQUEST.content_hash()
                assert "no healthy shard" in frame["error"]
                # The decoding path raises the typed class.
                with pytest.raises(
                    ServiceConnectionError, match="no healthy shard"
                ):
                    await client.submit(REQUEST)
            assert router.router_counters()["unrouted"] == 2

        run_fleet(scenario, n_shards=2)

    def test_probes_trip_the_breaker_and_probation_readmits(self):
        clock = FakeClock()

        async def scenario(router, servers, services):
            victim_server = servers[0]
            victim = f"127.0.0.1:{victim_server.port}"
            port = victim_server.port
            await victim_server.stop()
            for _ in range(3):
                await router.probe_once()
            health = router.health(victim)
            assert not health.healthy
            assert health.breaker.state == "open"
            assert health.probe_failures == 3
            others = [s for s in router.shards if s != victim]
            assert all(router.health(s).healthy for s in others)

            # Relaunch on the same port, step past the cooldown, and
            # let two probation probes readmit the shard.
            relaunched = ScheduleServer(services[0], host="127.0.0.1", port=port)
            await relaunched.start()
            try:
                clock.advance(5.0)
                await router.probe_once()
                await router.probe_once()
                assert router.health(victim).healthy
                assert router.health(victim).breaker.state == "closed"
                assert router.health(victim).last_error is None
            finally:
                await relaunched.stop()

        run_fleet(scenario, clock=clock, cooldown_s=5.0)

    def test_open_breaker_is_skipped_without_a_dial(self):
        clock = FakeClock()

        async def scenario(router, servers, services):
            key = REQUEST.content_hash()
            owner = router.ring.owner(key)
            owner_server = next(
                s for s in servers if f"127.0.0.1:{s.port}" == owner
            )
            await owner_server.stop()
            for _ in range(3):
                await router.probe_once()
            assert not router.health(owner).healthy
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                report = await asyncio.wait_for(client.submit(REQUEST), 60)
            assert report.n_sessions >= 1
            # The breaker short-circuited the dead shard: the submit
            # moved straight past it (failover) without another error.
            assert router.router_counters()["failovers"] == 1

        run_fleet(scenario, clock=clock)


class TestRouterEndpoint:
    def test_ping_answers_locally_and_metrics_label_shards(self):
        async def scenario(router, servers, services):
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                assert await client.ping() < 5.0
                text = await client.metrics_text()
            assert "repro_router_submits_total" in text
            for shard in router.shards:
                assert f'repro_shard_healthy{{shard="{shard}"}} 1' in text

        run_fleet(scenario)

    def test_server_side_frames_are_rejected(self):
        async def scenario(router, servers, services):
            from repro.service import encode_frame
            import json

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", router.port
            )
            writer.write(encode_frame({"type": "report", "id": "x"}))
            await writer.drain()
            frame = json.loads(await reader.readline())
            assert frame["type"] == "error"
            assert "may not send" in frame["error"]
            writer.close()
            await writer.wait_closed()

        run_fleet(scenario, n_shards=1)


class TestChaosAcceptance:
    """The ISSUE's acceptance scenario: one of three shards SIGKILLed
    mid-burst; 100% of requests terminate (failover or typed retryable
    error), zero hangs, zero duplicated solves for hashes already
    cached on surviving shards."""

    def distinct_requests(self) -> list[ScheduleRequest]:
        return [
            ScheduleRequest(soc="worked_example6", tl_c=80.0 + i, stcl=60.0)
            for i in range(6)
        ]

    def test_shard_kill_mid_burst(self):
        distinct = self.distinct_requests()
        burst = [distinct[i % len(distinct)] for i in range(30)]

        async def main():
            async with AsyncExitStack() as stack:
                services = []
                servers = []
                for _ in range(3):
                    service = await stack.enter_async_context(
                        ScheduleService(backend="thread", max_workers=2)
                    )
                    server = ScheduleServer(service, host="127.0.0.1", port=0)
                    await server.start()
                    stack.push_async_callback(server.stop)
                    services.append(service)
                    servers.append(server)
                # Shard 0 sits behind a severable chaos proxy: cutting
                # it gives the router a genuine connection-reset (the
                # SIGKILL signature), not a polite shutdown.
                proxy = await stack.enter_async_context(
                    ChaosProxy("127.0.0.1", servers[0].port)
                )
                shards = [
                    f"127.0.0.1:{proxy.port}",
                    f"127.0.0.1:{servers[1].port}",
                    f"127.0.0.1:{servers[2].port}",
                ]
                by_shard = {
                    shards[i]: services[i] for i in range(3)
                }
                router = FleetRouter(
                    shards,
                    probe_interval_s=None,
                    retry_policy=fast_policy(),
                )
                await router.start()
                stack.push_async_callback(router.stop)

                client = await AsyncServiceClient.connect(port=router.port)
                # Warm every distinct request onto its owner: one solve
                # each, now cached fleet-wide.
                warm = await asyncio.wait_for(
                    client.submit_many(distinct), 120
                )
                assert len(warm) == len(distinct)
                solves_before = {
                    name: svc.metrics().solves_started
                    for name, svc in by_shard.items()
                }
                assert sum(solves_before.values()) == len(distinct)
                victim = shards[0]
                owned_by_victim = sum(
                    1
                    for r in distinct
                    if router.ring.owner(r.content_hash()) == victim
                )

                # The burst, pipelined; the victim dies mid-flight.
                pending = asyncio.ensure_future(
                    client.submit_many(burst, return_errors=True)
                )
                await asyncio.sleep(0)  # submits reach the wire
                proxy.sever()
                await servers[0].stop()

                results = await asyncio.wait_for(pending, 120)

                # 100% of requests terminate: a report or an honest
                # typed retryable error — zero hangs.
                assert len(results) == len(burst)
                reports = []
                for result in results:
                    if isinstance(result, Exception):
                        assert isinstance(result, ServiceError)
                        assert getattr(result, "retryable", False)
                    else:
                        reports.append(result)
                # Two of three shards stayed up, so failover must have
                # answered the overwhelming majority (every submit that
                # reached the router after the kill).
                assert len(reports) >= len(burst) - len(distinct)

                # Zero duplicated solves for already-cached hashes:
                # survivors re-solved at most the victim's keys (their
                # own cached answers were reused), and each stolen key
                # at most once thanks to per-shard dedup.
                survivor_delta = sum(
                    by_shard[name].metrics().solves_started
                    - solves_before[name]
                    for name in shards[1:]
                )
                assert survivor_delta <= owned_by_victim
                await client.close()

        asyncio.run(main())

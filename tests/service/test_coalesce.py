"""Request-coalescing dispatcher tests: grouping, identity, isolation.

The dispatcher drains compatible neighbours of a popped job (same
thermal network, same effective timeout) and solves each group as one
executor task against shared model builds and memoised GEMMs.  These
tests pin the service-level contract: counters account per job, the
``batch_size`` histogram records dispatch widths, group members resolve
independently (errors and timeouts included), and a coalesced answer is
bit-identical to the uncoalesced service's.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api import ScheduleRequest, Solver, register_solver
from repro.api.request import report_to_dict
from repro.core.baselines import sequential_schedule
from repro.engine.scenarios import ScenarioSpec
from repro.errors import ServiceError
from repro.service import ScheduleService

GRID = ScenarioSpec(kind="grid", rows=3, cols=3, power_seed=7)
OTHER = ScenarioSpec(kind="slicing", n_blocks=6, floorplan_seed=2)


def tl_varied(headroom: float, scenario: ScenarioSpec = GRID) -> ScheduleRequest:
    """Distinct content hashes, one thermal network: always coalescible."""
    return ScheduleRequest(
        scenario=scenario, tl_headroom=headroom, stcl_headroom=5.0
    )


@register_solver
class CoalesceSleepySolver(Solver):
    """Sequential schedule after a nap (group-timeout tests).

    Thread-backend only: the registration lives in this test process.
    """

    name = "test_coalesce_sleepy"
    param_names = frozenset({"sleep_s"})

    def solve(self, context, params):
        time.sleep(float(params.get("sleep_s", 0.2)))
        return (
            self.baseline_result(context, sequential_schedule(context.soc)),
            {},
        )


def canonical(report) -> dict:
    """Deterministic report content (wall clocks and provenance off)."""
    data = report_to_dict(report)
    for field in ("elapsed_s", "timings", "cache_hit", "cached"):
        data.pop(field, None)
    return data


async def burst(svc: ScheduleService, requests) -> list:
    """Submit everything before awaiting anything, then gather."""
    jobs = [await svc.submit(request) for request in requests]
    return await asyncio.gather(*(job.outcome() for job in jobs))


class TestCoalescingDispatch:
    def test_burst_coalesces_and_counts_per_job(self):
        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=1,
                max_batch=8,
                coalesce_window_ms=50.0,
            ) as svc:
                outcomes = await burst(
                    svc, [tl_varied(8.0 + i) for i in range(6)]
                )
                assert all(o.ok for o in outcomes)
                metrics = svc.metrics()
                # Per-job accounting survives grouping...
                assert metrics.submitted == 6
                assert metrics.solves_started == 6
                assert metrics.solves_completed == 6
                assert metrics.completed == 6
                # ...and the single worker genuinely grouped: 6 jobs
                # cannot have taken 6 dispatches (the first may go
                # solo before the burst lands, the rest coalesce).
                assert metrics.coalesced_batches >= 1
                assert metrics.coalesced_solves >= 2
                assert metrics.coalesced_solves > metrics.coalesced_batches
                snap = (metrics.latency or {}).get("batch_size") or {}
                assert snap.get("count", 0) >= 1
                assert snap.get("max", 0.0) >= 2.0

        asyncio.run(main())

    def test_disabled_coalescing_keeps_counters_zero(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=1) as svc:
                outcomes = await burst(svc, [tl_varied(8.0 + i) for i in range(4)])
                assert all(o.ok for o in outcomes)
                metrics = svc.metrics()
                assert metrics.coalesced_batches == 0
                assert metrics.coalesced_solves == 0
                snap = (metrics.latency or {}).get("batch_size") or {}
                assert snap.get("count", 0) == 0

        asyncio.run(main())

    def test_coalesced_answers_bit_identical_to_solo_service(self):
        requests = [tl_varied(8.0 + 2 * i) for i in range(4)]

        async def run(**kwargs):
            async with ScheduleService(
                backend="thread", max_workers=1, **kwargs
            ) as svc:
                return await burst(svc, requests)

        grouped = asyncio.run(run(max_batch=8, coalesce_window_ms=50.0))
        solo = asyncio.run(run())
        for a, b in zip(grouped, solo):
            assert a.ok and b.ok
            assert canonical(a.report) == canonical(b.report)
            assert a.steady_solves == b.steady_solves

    def test_incompatible_networks_group_apart_but_all_answer(self):
        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=1,
                max_batch=8,
                coalesce_window_ms=50.0,
            ) as svc:
                mixed = [
                    tl_varied(8.0),
                    tl_varied(9.0, OTHER),
                    tl_varied(10.0),
                    tl_varied(11.0, OTHER),
                ]
                outcomes = await burst(svc, mixed)
                assert all(o.ok for o in outcomes)
                metrics = svc.metrics()
                assert metrics.completed == 4
                # A group never mixes thermal networks, so at most one
                # dispatch per network can be a coalesced batch here.
                assert metrics.coalesced_batches <= 2

        asyncio.run(main())

    def test_mid_group_infeasible_request_errors_alone(self):
        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=1,
                max_batch=8,
                coalesce_window_ms=50.0,
            ) as svc:
                bad = ScheduleRequest(scenario=GRID, tl_c=1.0, stcl=60.0)
                outcomes = await burst(
                    svc, [tl_varied(8.0), bad, tl_varied(12.0)]
                )
                assert outcomes[0].ok and outcomes[2].ok
                assert not outcomes[1].ok
                assert outcomes[1].error_type == "CoreThermalViolationError"
                metrics = svc.metrics()
                assert metrics.completed == 2
                assert metrics.errors == 1

        asyncio.run(main())

    def test_group_timeout_times_out_every_member(self):
        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=1,
                max_batch=8,
                coalesce_window_ms=50.0,
                default_timeout_s=0.15,
            ) as svc:
                naps = [
                    ScheduleRequest(
                        soc="worked_example6",
                        tl_c=80.0 + i,
                        solver="test_coalesce_sleepy",
                        params={"sleep_s": 0.4},
                    )
                    for i in range(2)
                ]
                outcomes = await burst(svc, naps)
                assert all(o.error_type == "TimeoutError" for o in outcomes)
                assert svc.metrics().timeouts == 2
            # Drained: the zombie group was still counted on its way out.
            assert svc.metrics().solves_completed == 2

        asyncio.run(main())

    def test_knob_validation(self):
        with pytest.raises(ServiceError, match="max_batch"):
            ScheduleService(backend="thread", max_batch=0)
        with pytest.raises(ServiceError, match="coalesce_window_ms"):
            ScheduleService(backend="thread", coalesce_window_ms=-1.0)

    def test_describe_config_mentions_coalescing_only_when_on(self):
        on = ScheduleService(
            backend="thread", max_batch=4, coalesce_window_ms=5.0
        )
        off = ScheduleService(backend="thread")
        assert "coalesce <=4 jobs/5 ms" in on.describe_config()
        assert "coalesce" not in off.describe_config()


class TestBusyRetryHint:
    def test_measured_zero_p50_is_not_discarded(self):
        """Regression: ``or`` treated a measured p50 of 0.0 s as absent.

        A histogram whose every solve observation is exactly 0.0 has
        p50 == 0.0 (quantiles clamp to [min, max]); the hint must use
        it — idle queue, sub-resolution solves → the 0.05 s floor —
        instead of falling back to the 0.5 s prior.
        """

        async def main():
            async with ScheduleService(backend="thread", max_workers=1) as svc:
                svc.latency_histograms.observe("solve", 0.0)
                snap = svc.latency_histograms.snapshot()["solve"]
                assert snap["p50"] == 0.0  # the premise of the bug
                assert svc._busy_retry_after_s() == pytest.approx(0.05)

        asyncio.run(main())

    def test_absent_p50_still_uses_the_prior(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=1) as svc:
                # No solve observed yet: the 0.5 s prior applies
                # (empty queue, one worker -> one median solve).
                assert svc._busy_retry_after_s() == pytest.approx(0.5)

        asyncio.run(main())

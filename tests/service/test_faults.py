"""Deterministic fault injection: the seeded chaos TCP proxy.

The low-level tests drive the proxy against a trivial line-echo backend
(the faults are byte-stream surgery; they need no solver).  The
restart-survival test at the bottom is the ISSUE's satellite scenario:
a pipelined burst through the proxy with the server killed and
relaunched mid-burst must complete every request — retried report or
honest typed error, zero hangs.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.api import ScheduleRequest
from repro.errors import ServiceError
from repro.service import (
    AsyncServiceClient,
    ChaosProxy,
    FaultPlan,
    RetryPolicy,
    ScheduleServer,
    ScheduleService,
)

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)


async def instant_sleep(_delay: float) -> None:
    await asyncio.sleep(0)


class EchoBackend:
    """A line-echo TCP server (optionally transforming each line)."""

    def __init__(self, transform=None) -> None:
        self.transform = transform or (lambda line: line)
        self._server = None

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def __aenter__(self) -> "EchoBackend":
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self

    async def __aexit__(self, *exc_info) -> None:
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                writer.write(self.transform(line))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


class TestSeededFaults:
    def test_transparent_by_default(self):
        async def main():
            async with EchoBackend() as backend:
                async with ChaosProxy("127.0.0.1", backend.port) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    writer.write(b"hello\n")
                    await writer.drain()
                    assert await reader.readline() == b"hello\n"
                    writer.close()
            assert proxy.frames_forwarded == 1
            assert proxy.frames_dropped == 0
            assert proxy.connections == 1

        asyncio.run(main())

    def test_drops_replay_identically_under_a_seed(self):
        plan = FaultPlan(seed=1234, drop_frame_rate=0.5)
        # The proxy slices one draw per backend frame, in stream order,
        # so the surviving indices are a pure function of the seed.
        rng = random.Random(plan.seed)
        survivors = [i for i in range(20) if rng.random() >= 0.5]
        assert survivors and len(survivors) < 20  # the seed bites

        async def run_once() -> list[bytes]:
            async with EchoBackend() as backend:
                async with ChaosProxy(
                    "127.0.0.1", backend.port, plan=plan
                ) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    for i in range(20):
                        writer.write(b"frame-%02d\n" % i)
                    await writer.drain()
                    received = [
                        await asyncio.wait_for(reader.readline(), 10)
                        for _ in survivors
                    ]
                    writer.close()
                    assert proxy.frames_dropped == 20 - len(survivors)
                    return received

        first = asyncio.run(run_once())
        second = asyncio.run(run_once())
        assert first == second == [b"frame-%02d\n" % i for i in survivors]

    def test_close_mid_frame_tears_the_line_and_resets(self):
        async def main():
            async with EchoBackend() as backend:
                async with ChaosProxy(
                    "127.0.0.1",
                    backend.port,
                    plan=FaultPlan(seed=0, close_rate=1.0),
                ) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    writer.write(b"hello-world\n")
                    await writer.drain()
                    # The victim sees exactly the torn prefix, then EOF
                    # or a reset — never a complete line.
                    try:
                        torn = await asyncio.wait_for(reader.read(), 10)
                    except ConnectionResetError:
                        torn = b""
                    assert b"\n" not in torn
                    assert b"hello-world\n".startswith(torn)
                    writer.close()
                    assert proxy.closes_injected == 1

        asyncio.run(main())

    def test_delays_go_through_the_injected_sleeper(self):
        slept: list[float] = []

        async def recording_sleep(delay: float) -> None:
            slept.append(delay)

        async def main():
            plan = FaultPlan(seed=0, delay_rate=1.0, delay_s=0.25)
            async with EchoBackend() as backend:
                async with ChaosProxy(
                    "127.0.0.1", backend.port, plan=plan, sleep=recording_sleep
                ) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    for i in range(3):
                        writer.write(b"line-%d\n" % i)
                    await writer.drain()
                    lines = [await reader.readline() for _ in range(3)]
                    writer.close()
                    assert lines == [b"line-%d\n" % i for i in range(3)]
                    assert proxy.frames_delayed == 3
                    assert slept == [0.25, 0.25, 0.25]

        asyncio.run(main())

    def test_blackhole_answers_nothing_until_severed(self):
        async def main():
            async with EchoBackend() as backend:
                async with ChaosProxy(
                    "127.0.0.1", backend.port, plan=FaultPlan(blackhole=True)
                ) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    writer.write(b"anyone-there\n")
                    await writer.drain()
                    with pytest.raises(asyncio.TimeoutError):
                        await asyncio.wait_for(reader.readline(), 0.2)
                    proxy.sever()
                    try:
                        assert await asyncio.wait_for(reader.read(), 10) == b""
                    except ConnectionResetError:
                        pass
                    writer.close()

        asyncio.run(main())

    def test_sever_kills_live_pipes_but_not_the_front_port(self):
        async def main():
            async with EchoBackend() as backend:
                async with ChaosProxy("127.0.0.1", backend.port) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    writer.write(b"ok\n")
                    await writer.drain()
                    assert await reader.readline() == b"ok\n"
                    proxy.sever()
                    try:
                        assert await asyncio.wait_for(reader.read(), 10) == b""
                    except ConnectionResetError:
                        pass
                    writer.close()
                    # The front port survives: a redial works.
                    reader2, writer2 = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    writer2.write(b"again\n")
                    await writer2.drain()
                    assert await reader2.readline() == b"again\n"
                    writer2.close()

        asyncio.run(main())

    def test_retarget_points_new_connections_at_the_new_backend(self):
        async def main():
            async with EchoBackend() as a:
                async with EchoBackend(transform=bytes.upper) as b:
                    async with ChaosProxy("127.0.0.1", a.port) as proxy:
                        reader, writer = await asyncio.open_connection(
                            "127.0.0.1", proxy.port
                        )
                        writer.write(b"ping\n")
                        await writer.drain()
                        assert await reader.readline() == b"ping\n"
                        writer.close()
                        proxy.retarget("127.0.0.1", b.port)
                        assert proxy.backend == ("127.0.0.1", b.port)
                        reader2, writer2 = await asyncio.open_connection(
                            "127.0.0.1", proxy.port
                        )
                        writer2.write(b"ping\n")
                        await writer2.drain()
                        assert await reader2.readline() == b"PING\n"
                        writer2.close()

        asyncio.run(main())


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ServiceError, match="within"):
            FaultPlan(drop_frame_rate=1.5)
        with pytest.raises(ServiceError, match="within"):
            FaultPlan(close_rate=-0.1)

    def test_rates_are_slices_of_one_draw(self):
        with pytest.raises(ServiceError, match="sum"):
            FaultPlan(drop_frame_rate=0.6, close_rate=0.6)

    def test_negative_delay_rejected(self):
        with pytest.raises(ServiceError, match="delay_s"):
            FaultPlan(delay_s=-1.0)


class TestClientAcrossServerRestart:
    """Satellite scenario: pipelined burst across a kill + relaunch."""

    def test_pipelined_burst_survives_a_mid_burst_restart(self):
        requests = [
            ScheduleRequest(soc="worked_example6", tl_c=80.0 + i, stcl=60.0)
            for i in range(8)
        ]

        async def main():
            async with ScheduleService(
                backend="thread", max_workers=2
            ) as service:
                server_a = ScheduleServer(service, host="127.0.0.1", port=0)
                await server_a.start()
                async with ChaosProxy("127.0.0.1", server_a.port) as proxy:
                    policy = RetryPolicy(
                        max_attempts=8,
                        rng=random.Random(0),
                        sleep=instant_sleep,
                    )
                    client = await AsyncServiceClient.connect(
                        port=proxy.port, retry_policy=policy
                    )
                    # Prove the path, then launch the burst pipelined.
                    await asyncio.wait_for(client.submit(REQUEST), 60)
                    burst = asyncio.ensure_future(
                        client.submit_many(requests, return_errors=True)
                    )
                    await asyncio.sleep(0)  # submits reach the wire

                    # Kill the server mid-burst: relaunch on a NEW port
                    # (same service keeps its caches, like a warm
                    # restart), retarget the proxy, then cut every live
                    # pipe — the SIGKILL signature.
                    await server_a.stop()
                    server_b = ScheduleServer(service, host="127.0.0.1", port=0)
                    await server_b.start()
                    proxy.retarget("127.0.0.1", server_b.port)
                    proxy.sever()

                    # Every request completes: the retry policy re-dials
                    # through the stable proxy port onto the relaunched
                    # server.  Zero hangs (bounded by wait_for, belt and
                    # braces under the global test alarm).
                    results = await asyncio.wait_for(burst, 90)
                    assert len(results) == len(requests)
                    for result in results:
                        if isinstance(result, Exception):
                            # An honest, typed, retryable error is an
                            # acceptable outcome; silence is not.
                            assert isinstance(result, ServiceError)
                            assert getattr(result, "retryable", False)
                        else:
                            assert result.n_sessions >= 1
                    # The burst landed after the restart, not around it.
                    reports = [
                        r for r in results if not isinstance(r, Exception)
                    ]
                    assert reports, "no request survived the restart"
                    await client.close()
                    await server_b.stop()

        asyncio.run(main())

"""RetryPolicy: seeded jitter, server hints, retryability classing."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.errors import (
    ProtocolError,
    ServiceBusyError,
    ServiceConnectionError,
    ServiceError,
)
from repro.service import RetryPolicy
from repro.service.fleet.retry import is_retryable


class TestIsRetryable:
    def test_service_errors_carry_their_own_flag(self):
        assert is_retryable(ServiceBusyError("queue full"))
        assert is_retryable(ServiceConnectionError("reset"))
        assert not is_retryable(ServiceError("solve failed"))
        assert not is_retryable(ProtocolError("bad frame"))

    def test_raw_socket_failures_are_retryable_by_nature(self):
        assert is_retryable(ConnectionResetError())
        assert is_retryable(OSError(111, "refused"))
        assert is_retryable(asyncio.TimeoutError())

    def test_arbitrary_exceptions_are_not(self):
        assert not is_retryable(ValueError("nope"))


class TestBackoff:
    def test_full_jitter_is_deterministic_under_a_seed(self):
        a = RetryPolicy(rng=random.Random(42))
        b = RetryPolicy(rng=random.Random(42))
        assert [a.backoff_s(n) for n in (1, 2, 3)] == [
            b.backoff_s(n) for n in (1, 2, 3)
        ]

    def test_jitter_stays_under_the_exponential_cap(self):
        policy = RetryPolicy(
            base_delay_s=0.1,
            max_delay_s=1.0,
            multiplier=2.0,
            rng=random.Random(7),
        )
        for attempt, cap in ((1, 0.1), (2, 0.2), (3, 0.4), (4, 0.8), (5, 1.0)):
            for _ in range(50):
                assert 0.0 <= policy.backoff_s(attempt) <= cap

    def test_cap_never_exceeds_max_delay(self):
        policy = RetryPolicy(
            base_delay_s=0.5, max_delay_s=1.0, rng=random.Random(0)
        )
        assert all(policy.backoff_s(10) <= 1.0 for _ in range(100))

    def test_server_hint_wins_over_the_schedule(self):
        policy = RetryPolicy(base_delay_s=0.05, max_delay_s=2.0)
        assert policy.backoff_s(1, retry_after_s=0.75) == 0.75

    def test_server_hint_is_capped_at_max_delay(self):
        policy = RetryPolicy(max_delay_s=2.0)
        assert policy.backoff_s(1, retry_after_s=60.0) == 2.0

    def test_negative_hint_falls_back_to_jitter(self):
        policy = RetryPolicy(
            base_delay_s=0.1, max_delay_s=0.1, rng=random.Random(3)
        )
        assert policy.backoff_s(1, retry_after_s=-1.0) <= 0.1


class TestBudget:
    def test_should_retry_spends_the_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_single_attempt_never_retries(self):
        assert not RetryPolicy(max_attempts=1).should_retry(1)


class TestPause:
    def test_pause_uses_the_injected_sleeper_and_no_wall_time(self):
        slept: list[float] = []

        async def instant(delay: float) -> None:
            slept.append(delay)

        async def main():
            policy = RetryPolicy(
                rng=random.Random(9), sleep=instant, max_delay_s=2.0
            )
            used = await policy.pause(2, retry_after_s=0.3)
            assert used == 0.3
            assert slept == [0.3]

        asyncio.run(main())


class TestValidation:
    def test_zero_attempts_rejected(self):
        with pytest.raises(ServiceError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_inverted_delays_rejected(self):
        with pytest.raises(ServiceError, match="base_delay_s"):
            RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)

    def test_shrinking_multiplier_rejected(self):
        with pytest.raises(ServiceError, match="multiplier"):
            RetryPolicy(multiplier=0.5)

"""Service archive writer + `repro report` aggregation tests."""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.api import ScheduleRequest
from repro.engine import JobSpec, ScenarioSpec, BatchRunner
from repro.errors import SchedulingError
from repro.service import (
    ReportArchive,
    ScheduleService,
    load_service_archive,
    outcome_record,
    record_stats,
    render_summary_table,
    solve_request_outcome,
    summarize_archives,
    summarize_records,
)

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)
SEQUENTIAL = ScheduleRequest(soc="worked_example6", tl_c=80.0, solver="sequential")
INFEASIBLE = ScheduleRequest(soc="worked_example6", tl_c=30.0, stcl=60.0)


class TestReportArchive:
    def test_creates_missing_parent_directories(self, tmp_path):
        # A fresh results dir must not kill the first append.
        path = tmp_path / "results" / "nested" / "served.jsonl"
        archive = ReportArchive(path)
        archive.append_outcome(REQUEST, solve_request_outcome(REQUEST))
        assert path.exists()
        assert archive.count == 1

    def test_appends_are_cumulative_across_writers(self, tmp_path):
        path = tmp_path / "served.jsonl"
        ReportArchive(path).append_outcome(REQUEST, solve_request_outcome(REQUEST))
        second = ReportArchive(path)  # a restarted service reopens it
        second.append_outcome(
            SEQUENTIAL, solve_request_outcome(SEQUENTIAL)
        )
        records = load_service_archive(path)
        assert len(records) == 2
        assert second.count == 1  # own appends only

    def test_record_shape(self):
        outcome = solve_request_outcome(REQUEST)
        record = outcome_record(REQUEST, outcome)
        assert record["kind"] == "service"
        assert record["status"] == "ok"
        assert record["solver"] == "thermal_aware"
        assert record["request_hash"] == REQUEST.content_hash()
        assert record["report"]["tl_c"] == pytest.approx(80.0)

    def test_error_record_shape(self):
        outcome = solve_request_outcome(INFEASIBLE)
        record = outcome_record(INFEASIBLE, outcome)
        assert record["status"] == "error"
        assert record["report"] is None
        assert "CoreThermalViolationError" in record["error"]

    def test_service_archives_every_resolved_outcome(self, tmp_path):
        path = tmp_path / "fresh-dir" / "served.jsonl"

        async def main():
            async with ScheduleService(
                backend="thread", max_workers=2, archive=path
            ) as svc:
                await svc.solve(REQUEST)
                job = await svc.submit(INFEASIBLE)
                await job.outcome()

        asyncio.run(main())
        records = load_service_archive(path)
        assert {r["status"] for r in records} == {"ok", "error"}
        # One record per solve, not per waiter.
        assert len(records) == 2


class TestAggregation:
    def make_service_records(self):
        return [
            outcome_record(REQUEST, solve_request_outcome(REQUEST)),
            outcome_record(SEQUENTIAL, solve_request_outcome(SEQUENTIAL)),
            outcome_record(INFEASIBLE, solve_request_outcome(INFEASIBLE)),
        ]

    def test_summaries_per_solver(self):
        summaries = summarize_records(self.make_service_records())
        by_name = {s.solver: s for s in summaries}
        assert set(by_name) == {"thermal_aware", "sequential"}
        thermal = by_name["thermal_aware"]
        assert thermal.jobs == 2
        assert thermal.errors == 1
        assert thermal.error_rate == pytest.approx(0.5)
        # The successful thermal-aware solve stayed under TL.
        assert thermal.hot_spot_rate == pytest.approx(0.0)
        assert thermal.mean_headroom_c > 0.0
        assert thermal.mean_length_s > 0.0
        sequential = by_name["sequential"]
        assert sequential.jobs == 1
        assert sequential.errors == 0

    def test_batch_and_service_dialects_aggregate_together(self, tmp_path):
        service_path = tmp_path / "served.jsonl"
        archive = ReportArchive(service_path)
        for record in self.make_service_records():
            archive.append_record(record)

        batch_path = tmp_path / "batch.jsonl"
        jobs = [
            JobSpec(
                job_id=f"j{i}",
                scenario=ScenarioSpec(kind="grid", rows=2, cols=2),
                tl_headroom=1.3,
                stcl_headroom=2.0,
            )
            for i in range(2)
        ]
        # Same scenario twice -> distinct ids, identical stats.
        BatchRunner().run(jobs, jsonl_path=batch_path)

        summaries = summarize_archives([service_path, batch_path])
        by_name = {s.solver: s for s in summaries}
        assert by_name["thermal_aware"].jobs == 4  # 2 service + 2 batch
        assert by_name["sequential"].jobs == 1

    def test_unknown_record_shape_rejected(self):
        with pytest.raises(SchedulingError, match="unrecognised archive record"):
            record_stats({"hello": "world"})

    def test_empty_archives_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(SchedulingError, match="no records"):
            summarize_archives([empty])

    def test_error_only_solver_renders_dashes(self):
        records = [outcome_record(INFEASIBLE, solve_request_outcome(INFEASIBLE))]
        summaries = summarize_records(records)
        assert len(summaries) == 1
        assert math.isnan(summaries[0].mean_length_s)
        table = render_summary_table(summaries)
        assert "-" in table.splitlines()[2]

    def test_table_lists_every_solver(self):
        table = render_summary_table(summarize_records(self.make_service_records()))
        assert "thermal_aware" in table
        assert "sequential" in table
        assert table.splitlines()[0].startswith("solver")


class TestTornTailArchives:
    """Reporting a live archive races its appender: the final record
    may be half-written.  `repro report` skips it with a warning; the
    library default stays strict."""

    def make_torn_archive(self, tmp_path):
        path = tmp_path / "served.jsonl"
        archive = ReportArchive(path)
        archive.append_outcome(REQUEST, solve_request_outcome(REQUEST))
        archive.append_outcome(
            SEQUENTIAL, solve_request_outcome(SEQUENTIAL)
        )
        # Simulate an append caught mid-write: a truncated final line.
        with path.open("a") as handle:
            handle.write('{"kind": "service", "status": "ok", "repo')
        return path

    def test_summarize_raises_by_default(self, tmp_path):
        path = self.make_torn_archive(tmp_path)
        with pytest.raises(SchedulingError, match="corrupt JSONL record"):
            summarize_archives([path])

    def test_summarize_tolerates_torn_tail_with_warning(self, tmp_path):
        path = self.make_torn_archive(tmp_path)
        with pytest.warns(UserWarning, match="torn final JSONL record"):
            summaries = summarize_archives([path], tolerate_torn_tail=True)
        by_name = {s.solver: s for s in summaries}
        assert by_name["thermal_aware"].jobs == 1
        assert by_name["sequential"].jobs == 1

    def test_report_cli_skips_torn_tail(self, tmp_path, capsys):
        from repro.cli import report_main

        path = self.make_torn_archive(tmp_path)
        with pytest.warns(UserWarning, match="torn final JSONL record"):
            code = report_main([str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "thermal_aware" in out
        assert "sequential" in out

"""AnswerCache unit tests: TTL, LRU bound, counters — no sleeps.

Every time-dependent behaviour runs against an injected fake clock, so
expiry and hysteresis are asserted deterministically; the service-level
tests inject the same clock into a running :class:`ScheduleService` to
prove a stale entry triggers a *fresh solve* rather than stale data.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import ScheduleRequest
from repro.errors import ServiceError
from repro.service import (
    AnswerCache,
    ReportArchive,
    ScheduleService,
    SolveOutcome,
    solve_request_outcome,
    warm_cache_from_archive,
)

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def ok_outcome(tag: float = 0.0) -> SolveOutcome:
    """A real solved outcome (the cache stores reports, not stubs)."""
    request = ScheduleRequest(soc="worked_example6", tl_c=80.0 + tag, stcl=60.0)
    outcome = solve_request_outcome(request)
    assert outcome.ok
    return outcome


@pytest.fixture(scope="module")
def outcome():
    return ok_outcome()


class TestTtl:
    def test_entry_expires_after_ttl(self, outcome):
        clock = FakeClock()
        cache = AnswerCache(max_entries=4, ttl_s=10.0, clock=clock)
        cache.put("k", outcome)
        clock.advance(9.999)
        assert cache.get("k") is outcome
        clock.advance(0.001)  # exactly at the deadline: stale
        assert cache.get("k") is None
        stats = cache.stats
        assert stats.expirations == 1
        assert stats.entries == 0  # removed, not just hidden
        assert stats.hits == 1
        assert stats.misses == 1

    def test_hit_does_not_refresh_ttl(self, outcome):
        clock = FakeClock()
        cache = AnswerCache(max_entries=4, ttl_s=10.0, clock=clock)
        cache.put("k", outcome)
        clock.advance(6.0)
        assert cache.get("k") is outcome  # popular...
        clock.advance(6.0)
        assert cache.get("k") is None  # ...but staleness counts from put

    def test_put_refreshes_ttl(self, outcome):
        clock = FakeClock()
        cache = AnswerCache(max_entries=4, ttl_s=10.0, clock=clock)
        cache.put("k", outcome)
        clock.advance(6.0)
        cache.put("k", outcome)  # re-solved: answer is fresh again
        clock.advance(6.0)
        assert cache.get("k") is outcome

    def test_no_ttl_never_expires(self, outcome):
        clock = FakeClock()
        cache = AnswerCache(max_entries=4, ttl_s=None, clock=clock)
        cache.put("k", outcome)
        clock.advance(1e9)
        assert cache.get("k") is outcome


class TestLruBound:
    def test_bound_evicts_oldest(self, outcome):
        cache = AnswerCache(max_entries=3)
        for key in ("a", "b", "c", "d"):
            cache.put(key, outcome)
        assert len(cache) == 3
        assert cache.get("a") is None
        assert cache.get("d") is outcome
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self, outcome):
        cache = AnswerCache(max_entries=2)
        cache.put("a", outcome)
        cache.put("b", outcome)
        assert cache.get("a") is outcome  # touch a: b is now oldest
        cache.put("c", outcome)
        assert cache.get("b") is None
        assert cache.get("a") is outcome

    def test_counters_and_clear(self, outcome):
        cache = AnswerCache(max_entries=2)
        assert cache.get("missing") is None
        cache.put("a", outcome)
        assert cache.get("a") is outcome
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)
        cache.clear()
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)

    def test_error_outcomes_are_not_stored(self):
        cache = AnswerCache(max_entries=2)
        failed = SolveOutcome(
            status="error",
            report=None,
            error="boom",
            error_type="RuntimeError",
            elapsed_s=0.0,
        )
        cache.put("k", failed)
        assert len(cache) == 0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServiceError, match="max_entries"):
            AnswerCache(max_entries=0)
        with pytest.raises(ServiceError, match="ttl_s"):
            AnswerCache(ttl_s=0.0)
        # A negative service-level size is a typo, not a disable.
        with pytest.raises(ServiceError, match="answer_cache_size"):
            ScheduleService(backend="thread", answer_cache_size=-5)


class TestServiceIntegration:
    """The cache inside a live service, driven by a fake clock."""

    def test_stale_entry_triggers_a_fresh_solve(self):
        clock = FakeClock()
        cache = AnswerCache(max_entries=8, ttl_s=30.0, clock=clock)

        async def main():
            async with ScheduleService(
                backend="thread", answer_cache=cache
            ) as svc:
                first = await svc.solve(REQUEST)
                hit = await svc.solve(REQUEST)
                assert not first.cached and hit.cached
                assert svc.metrics().solves_started == 1
                clock.advance(31.0)
                refreshed = await svc.solve(REQUEST)
                # Expired data is never served: the third answer came
                # from a second worker execution, unflagged.
                assert not refreshed.cached
                metrics = svc.metrics()
                assert metrics.solves_started == 2
                assert metrics.answer_hits == 1
                assert metrics.answer_cache.expirations == 1
                # The fresh solve re-populated the cache.
                hit2 = await svc.solve(REQUEST)
                assert hit2.cached

        asyncio.run(main())

    def test_eviction_bounds_a_busy_service(self):
        cache = AnswerCache(max_entries=2)

        async def main():
            async with ScheduleService(
                backend="thread", answer_cache=cache
            ) as svc:
                for marker in range(3):
                    await svc.solve(
                        ScheduleRequest(
                            soc="worked_example6",
                            tl_c=80.0 + marker,
                            stcl=60.0,
                        )
                    )
                metrics = svc.metrics()
                assert metrics.answer_cache.entries == 2
                assert metrics.answer_cache.evictions == 1
                # The evicted (oldest) question solves again...
                await svc.solve(REQUEST)
                assert svc.metrics().solves_started == 4
                # ...the still-cached newest one does not.
                await svc.solve(
                    ScheduleRequest(
                        soc="worked_example6", tl_c=82.0, stcl=60.0
                    )
                )
                assert svc.metrics().solves_started == 4

        asyncio.run(main())


class TestWarmStart:
    def test_warm_from_archive_populates_and_serves(self, tmp_path):
        archive_path = tmp_path / "served.jsonl"

        async def first_life():
            async with ScheduleService(
                backend="thread", archive=ReportArchive(archive_path)
            ) as svc:
                await svc.solve(REQUEST)

        asyncio.run(first_life())
        assert archive_path.exists()

        async def second_life():
            svc = ScheduleService(backend="thread", warm_from=archive_path)
            async with svc:
                report = await svc.solve(REQUEST)
                # Answered from memory before the first solve ever ran.
                assert report.cached
                metrics = svc.metrics()
                assert metrics.solves_started == 0
                assert metrics.answer_hits == 1
                assert metrics.answer_cache.warmed == 1
                # Pure repeat traffic still registers as throughput.
                assert metrics.requests_per_s > 0.0
            # A restart must not replay the archive: the cache already
            # holds the answers, and `warmed` must not double-count.
            await svc.start()
            try:
                assert (await svc.solve(REQUEST)).cached
                assert svc.metrics().answer_cache.warmed == 1
            finally:
                await svc.stop()

        asyncio.run(second_life())

    def test_warm_loader_skips_error_and_foreign_records(self, tmp_path):
        archive_path = tmp_path / "served.jsonl"

        async def serve():
            async with ScheduleService(
                backend="thread", archive=ReportArchive(archive_path)
            ) as svc:
                await svc.solve(REQUEST)
                with pytest.raises(Exception):
                    await svc.solve(
                        ScheduleRequest(
                            soc="worked_example6", tl_c=30.0, stcl=60.0
                        )
                    )

        asyncio.run(serve())
        with archive_path.open("a") as handle:
            handle.write('{"kind": "something-else"}\n')
            handle.write("\n")
            # A decodable report under a malformed top-level field: the
            # loader must skip it, not take the boot down.
            import json as json_module

            records = [
                json_module.loads(line)
                for line in archive_path.read_text().splitlines()
                if line.strip() and '"status":"ok"' in line
            ]
            nulled = dict(records[0])
            nulled["elapsed_s"] = None  # null: coerced to 0.0, tolerated
            nulled["request_hash"] = "deadbeef" * 8
            handle.write(json_module.dumps(nulled) + "\n")
            garbage = dict(records[0])
            garbage["elapsed_s"] = "fast"  # uncoercible: skipped
            garbage["request_hash"] = "cafebabe" * 8
            handle.write(json_module.dumps(garbage) + "\n")

        cache = AnswerCache(max_entries=8)
        loaded = warm_cache_from_archive(cache, archive_path)
        assert loaded == 2  # the real ok record + the tolerated null
        assert cache.get(REQUEST.content_hash()) is not None
        assert cache.get("deadbeef" * 8) is not None
        assert cache.get("cafebabe" * 8) is None

    def test_warm_counts_distinct_hashes_not_records(self, tmp_path):
        """An archive holding N re-solves of one question warms one
        entry and reports one — the count reflects the cache, not the
        archive's length."""
        archive_path = tmp_path / "served.jsonl"
        lines = archive_path.read_text() if archive_path.exists() else ""
        assert lines == ""

        async def serve_twice():
            # Answer cache off: the same question solves (and is
            # archived) twice in one life.
            async with ScheduleService(
                backend="thread",
                answer_cache_size=0,
                archive=ReportArchive(archive_path),
            ) as svc:
                await svc.solve(REQUEST)
                await svc.solve(REQUEST)

        asyncio.run(serve_twice())
        assert len(archive_path.read_text().strip().splitlines()) == 2

        cache = AnswerCache(max_entries=8)
        loaded = warm_cache_from_archive(cache, archive_path)
        assert loaded == 1
        assert len(cache) == 1
        assert cache.stats.warmed == 1

    def test_warm_survives_a_torn_trailing_append(self, tmp_path):
        """A previous life killed mid-append leaves a partial last
        line; the next warm boot must skip it, not crash."""
        archive_path = tmp_path / "served.jsonl"

        async def serve():
            async with ScheduleService(
                backend="thread", archive=ReportArchive(archive_path)
            ) as svc:
                await svc.solve(REQUEST)

        asyncio.run(serve())
        intact = archive_path.read_text()
        # Simulate the crash: append a record torn mid-JSON, no newline.
        archive_path.write_text(intact + intact.strip()[: len(intact) // 3])

        cache = AnswerCache(max_entries=8)
        loaded = warm_cache_from_archive(cache, archive_path)
        assert loaded == 1
        assert cache.get(REQUEST.content_hash()) is not None

    def test_warm_backfills_past_undecodable_newest_records(self, tmp_path):
        """Schema-drifted newest records must not consume the selection
        budget: older decodable answers behind them still warm."""
        import json as json_module

        archive_path = tmp_path / "served.jsonl"

        async def serve():
            async with ScheduleService(
                backend="thread", archive=ReportArchive(archive_path)
            ) as svc:
                await svc.solve(REQUEST)

        asyncio.run(serve())
        good = json_module.loads(archive_path.read_text().strip())
        drifted = dict(good)
        drifted["report"] = dict(good["report"], schema_version=99)
        drifted["request_hash"] = "feedface" * 8
        with archive_path.open("a") as handle:
            handle.write(json_module.dumps(drifted) + "\n")

        cache = AnswerCache(max_entries=1)  # budget of exactly one
        loaded = warm_cache_from_archive(cache, archive_path)
        assert loaded == 1
        assert cache.get(REQUEST.content_hash()) is not None

    def test_warm_missing_archive_still_fails_loudly(self, tmp_path):
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError, match="cannot load"):
            warm_cache_from_archive(
                AnswerCache(max_entries=8), tmp_path / "missing.jsonl"
            )

    def test_warm_decodes_at_most_the_cache_bound(self, tmp_path, monkeypatch):
        """An archive larger than the cache warms exactly max_entries
        newest distinct answers — superseded and overflow records are
        dropped before the expensive decode."""
        archive_path = tmp_path / "served.jsonl"

        async def serve():
            async with ScheduleService(
                backend="thread",
                answer_cache_size=0,
                archive=ReportArchive(archive_path),
            ) as svc:
                for marker in range(4):  # 4 distinct answers archived
                    await svc.solve(
                        ScheduleRequest(
                            soc="worked_example6",
                            tl_c=80.0 + marker,
                            stcl=60.0,
                        )
                    )
                await svc.solve(REQUEST)  # re-solve of the first: 5 records

        asyncio.run(serve())
        assert len(archive_path.read_text().strip().splitlines()) == 5

        import repro.service.answer_cache as answer_cache_module

        real_decode = answer_cache_module.report_from_dict
        decodes = []
        monkeypatch.setattr(
            answer_cache_module,
            "report_from_dict",
            lambda data: (decodes.append(1), real_decode(data))[1],
        )
        cache = AnswerCache(max_entries=2)
        loaded = warm_cache_from_archive(cache, archive_path)
        assert loaded == 2
        assert len(decodes) == 2  # not 5: selection happened pre-decode
        assert len(cache) == 2
        assert cache.stats.evictions == 0  # never over-filled
        # The two *newest* distinct answers survived: the re-solved
        # REQUEST (last record) and the marker=3 variant.
        assert cache.get(REQUEST.content_hash()) is not None
        newest = ScheduleRequest(soc="worked_example6", tl_c=83.0, stcl=60.0)
        assert cache.get(newest.content_hash()) is not None

    def test_warm_from_without_cache_is_rejected(self, tmp_path):
        with pytest.raises(ServiceError, match="warm_from"):
            ScheduleService(
                backend="thread",
                answer_cache_size=0,
                warm_from=tmp_path / "x.jsonl",
            )

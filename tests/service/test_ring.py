"""Property tests for the consistent-hash ring."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service import HashRing
from repro.service.fleet.ring import stable_hash

NODES = ["10.0.0.1:7788", "10.0.0.2:7788", "10.0.0.3:7788"]

node_names = st.lists(
    st.text(
        alphabet="abcdefghij0123456789.:", min_size=1, max_size=20
    ),
    min_size=1,
    max_size=6,
    unique=True,
)
keys = st.lists(st.text(min_size=1, max_size=32), min_size=1, max_size=64)


def many_keys(n: int = 2000) -> list[str]:
    return [f"request-hash-{i:05d}" for i in range(n)]


class TestStableHash:
    def test_is_process_independent(self):
        # Pinned values: any change here scrambles every deployed
        # fleet's placement, so it must be deliberate.
        assert stable_hash("") == 16406829232824261652
        assert stable_hash("a") == 14598278634844962250

    def test_is_64_bit(self):
        for key in many_keys(200):
            assert 0 <= stable_hash(key) < 2**64


class TestPlacement:
    def test_owner_is_deterministic_across_instances(self):
        a = HashRing(NODES)
        b = HashRing(list(reversed(NODES)))
        for key in many_keys(500):
            assert a.owner(key) == b.owner(key)

    def test_balance_within_a_factor_of_fair(self):
        ring = HashRing(NODES, replicas=128)
        counts = ring.load_counts(many_keys())
        fair = 2000 / len(NODES)
        for node, count in counts.items():
            assert fair / 2 <= count <= fair * 2, (node, counts)

    @settings(max_examples=30, deadline=None)
    @given(nodes=node_names, sample=keys)
    def test_every_key_lands_on_a_member(self, nodes, sample):
        ring = HashRing(nodes)
        for key in sample:
            assert ring.owner(key) in ring.nodes


class TestMinimalRemap:
    def test_adding_a_node_only_steals_keys_for_itself(self):
        before = HashRing(NODES)
        owners_before = {k: before.owner(k) for k in many_keys()}
        before.add_node("10.0.0.4:7788")
        moved = {
            k: (owners_before[k], before.owner(k))
            for k in owners_before
            if before.owner(k) != owners_before[k]
        }
        assert moved  # the new node must take *some* load
        assert all(new == "10.0.0.4:7788" for _old, new in moved.values())

    def test_removing_a_node_only_moves_its_own_keys(self):
        ring = HashRing(NODES)
        owners_before = {k: ring.owner(k) for k in many_keys()}
        ring.remove_node(NODES[1])
        for key, old in owners_before.items():
            if old == NODES[1]:
                assert ring.owner(key) in (NODES[0], NODES[2])
            else:
                assert ring.owner(key) == old

    @settings(max_examples=20, deadline=None)
    @given(nodes=node_names, sample=keys)
    def test_add_then_remove_round_trips(self, nodes, sample):
        ring = HashRing(nodes)
        owners = {k: ring.owner(k) for k in sample}
        ring.add_node("transient-node-zz")
        ring.remove_node("transient-node-zz")
        assert {k: ring.owner(k) for k in sample} == owners


class TestPreference:
    def test_starts_with_the_owner_and_covers_all_nodes_once(self):
        ring = HashRing(NODES)
        for key in many_keys(100):
            order = list(ring.preference(key))
            assert order[0] == ring.owner(key)
            assert sorted(order) == sorted(NODES)

    def test_is_stable_per_key(self):
        ring = HashRing(NODES)
        for key in many_keys(50):
            assert list(ring.preference(key)) == list(ring.preference(key))

    def test_survives_the_owner_leaving(self):
        # The failover contract: when the owner dies, the second
        # preference is exactly the new owner after a remove.
        ring = HashRing(NODES)
        key = "some-request-hash"
        first, second = list(ring.preference(key))[:2]
        ring.remove_node(first)
        assert ring.owner(key) == second


class TestValidation:
    def test_empty_ring_has_no_owner(self):
        with pytest.raises(ServiceError, match="empty"):
            HashRing().owner("key")

    def test_duplicate_add_rejected(self):
        ring = HashRing(NODES)
        with pytest.raises(ServiceError, match="already contains"):
            ring.add_node(NODES[0])

    def test_remove_of_stranger_rejected(self):
        with pytest.raises(ServiceError, match="does not contain"):
            HashRing(NODES).remove_node("10.9.9.9:1")

    def test_empty_name_rejected(self):
        with pytest.raises(ServiceError, match="non-empty"):
            HashRing().add_node("")

    def test_bad_replicas_rejected(self):
        with pytest.raises(ServiceError, match="replicas"):
            HashRing(replicas=0)

"""In-process ScheduleService tests: queue, dedup, timeouts, drain."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api import ScheduleRequest, Solver, register_solver
from repro.core.baselines import sequential_schedule
from repro.errors import (
    ServiceBusyError,
    ServiceClosedError,
    ServiceError,
)
from repro.service import ScheduleService

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)
SEQUENTIAL = ScheduleRequest(soc="worked_example6", tl_c=80.0, solver="sequential")
#: TL below the singleton peak: every solve fails with a violation.
INFEASIBLE = ScheduleRequest(soc="worked_example6", tl_c=30.0, stcl=60.0)


@register_solver
class SleepySolver(Solver):
    """Sequential schedule after a configurable nap (timing tests).

    Thread-backend only: the registration lives in this test process.
    """

    name = "test_sleepy"
    param_names = frozenset({"sleep_s"})

    def solve(self, context, params):
        time.sleep(float(params.get("sleep_s", 0.2)))
        return self.baseline_result(context, sequential_schedule(context.soc)), {}


def sleepy(sleep_s: float, marker: int = 0) -> ScheduleRequest:
    """A sleepy request; distinct *marker* values defeat deduplication."""
    return ScheduleRequest(
        soc="worked_example6",
        tl_c=80.0 + marker,  # marker folded into the content hash
        solver="test_sleepy",
        params={"sleep_s": sleep_s},
    )


class TestSolvePath:
    def test_solve_returns_report(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                report = await svc.solve(REQUEST)
                assert report.solver == "thermal_aware"
                assert report.request == REQUEST
                assert report.n_sessions >= 1
                assert report.max_temperature_c < 80.0

        asyncio.run(main())

    def test_mixed_solvers_share_one_service(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                thermal = await svc.solve(REQUEST)
                baseline = await svc.solve(SEQUENTIAL)
                assert thermal.solver == "thermal_aware"
                assert baseline.solver == "sequential"
                metrics = svc.metrics()
                assert metrics.completed == 2
                assert metrics.solves_started == 2
                # Same platform, sequential solves: the second one
                # reuses the first's thermal model.
                assert metrics.cache_hits == 1

        asyncio.run(main())

    def test_solve_failure_raises_service_error(self):
        async def main():
            async with ScheduleService(backend="thread") as svc:
                with pytest.raises(ServiceError, match="CoreThermalViolation"):
                    await svc.solve(INFEASIBLE)
                metrics = svc.metrics()
                assert metrics.errors == 1
                assert metrics.completed == 0

        asyncio.run(main())

    def test_outcome_records_failure_without_raising(self):
        async def main():
            async with ScheduleService(backend="thread") as svc:
                job = await svc.submit(INFEASIBLE)
                outcome = await job.outcome()
                assert not outcome.ok
                assert outcome.error_type == "CoreThermalViolationError"
                assert outcome.report is None

        asyncio.run(main())

    def test_rejects_non_request_submissions(self):
        async def main():
            async with ScheduleService(backend="thread") as svc:
                with pytest.raises(ServiceError, match="ScheduleRequest"):
                    await svc.submit({"soc": "alpha15"})  # type: ignore[arg-type]

        asyncio.run(main())


class TestDeduplication:
    def test_identical_inflight_requests_share_one_solve(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                request = sleepy(0.3)
                jobs = [await svc.submit(request) for _ in range(5)]
                outcomes = await asyncio.gather(*(j.outcome() for j in jobs))
                assert all(o.ok for o in outcomes)
                # All five submissions share one ServiceJob...
                assert len({id(j.future) for j in jobs}) == 1
                metrics = svc.metrics()
                # ...and exactly one worker execution happened.
                assert metrics.submitted == 5
                assert metrics.deduped == 4
                assert metrics.solves_started == 1
                assert metrics.dedup_rate == pytest.approx(0.8)

        asyncio.run(main())

    def test_distinct_requests_are_not_deduplicated(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=4) as svc:
                jobs = [await svc.submit(sleepy(0.05, marker=i)) for i in range(3)]
                await asyncio.gather(*(j.outcome() for j in jobs))
                assert svc.metrics().solves_started == 3
                assert svc.metrics().deduped == 0

        asyncio.run(main())

    def test_dedup_window_is_in_flight_only(self):
        async def main():
            # Answer cache off: dedup alone governs repeats.
            async with ScheduleService(
                backend="thread", answer_cache_size=0
            ) as svc:
                first = await svc.solve(REQUEST)
                second = await svc.solve(REQUEST)
                assert first.length_s == second.length_s
                # The first job resolved before the second arrived, so
                # both ran (a completed answer is not in-flight dedup's
                # business — absorbing it is the answer cache's).
                assert svc.metrics().solves_started == 2
                assert svc.metrics().deduped == 0
                assert svc.answer_cache is None

        asyncio.run(main())

    def test_completed_answers_are_served_from_the_answer_cache(self):
        async def main():
            async with ScheduleService(backend="thread") as svc:
                first = await svc.solve(REQUEST)
                second = await svc.solve(REQUEST)
                assert first.length_s == second.length_s
                # The repeat never reached a worker: one solve, one
                # answer-cache hit, provenance flagged on the report.
                assert not first.cached
                assert second.cached
                metrics = svc.metrics()
                assert metrics.solves_started == 1
                assert metrics.answer_hits == 1
                assert metrics.deduped == 0
                assert metrics.answer_cache is not None
                assert metrics.answer_cache.hits == 1
                assert metrics.answer_hit_rate == pytest.approx(0.5)

        asyncio.run(main())

    def test_failed_solves_are_not_cached(self):
        async def main():
            async with ScheduleService(backend="thread") as svc:
                for _ in range(2):
                    outcome = await (await svc.submit(INFEASIBLE)).outcome()
                    assert not outcome.ok
                # Both attempts ran: an error answer is never pinned.
                assert svc.metrics().solves_started == 2
                assert svc.metrics().answer_hits == 0

        asyncio.run(main())


class TestBackpressure:
    def test_submit_nowait_raises_when_full(self):
        async def main():
            async with ScheduleService(
                backend="thread", max_workers=1, queue_size=1
            ) as svc:
                running = await svc.submit(sleepy(0.5, marker=0))
                await asyncio.sleep(0.05)  # let the dispatcher start it
                queued = await svc.submit(sleepy(0.5, marker=1))
                with pytest.raises(ServiceBusyError, match="queue is full"):
                    svc.submit_nowait(sleepy(0.5, marker=2))
                metrics = svc.metrics()
                assert metrics.rejected == 1
                assert metrics.queue_depth == 1
                # Dedup-attaching to an in-flight request needs no slot.
                attached = svc.submit_nowait(sleepy(0.5, marker=1))
                assert attached.future is queued.future
                await asyncio.gather(running.outcome(), queued.outcome())

        asyncio.run(main())

    def test_cancelled_submit_does_not_poison_dedup_or_drain(self):
        async def main():
            svc = ScheduleService(backend="thread", max_workers=1, queue_size=1)
            await svc.start()
            # Fill the worker and the queue, then cancel a submission
            # that is stuck waiting for queue space.
            running = await svc.submit(sleepy(0.4, marker=0))
            await asyncio.sleep(0.05)
            queued = await svc.submit(sleepy(0.4, marker=1))
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(svc.submit(sleepy(0.4, marker=2)), 0.05)
            # The cancelled job must not linger: a re-submission starts
            # a fresh solve instead of attaching to a dead future...
            retried = await svc.submit(sleepy(0.05, marker=2))
            outcome = await retried.outcome()
            assert outcome.ok
            await asyncio.gather(running.outcome(), queued.outcome())
            # ...the accounting identity survives the cancellation
            # (the never-admitted submission does not stay counted)...
            metrics = svc.metrics()
            assert (
                metrics.solves_started + metrics.deduped + metrics.answer_hits
                == metrics.submitted
            )
            # ...and drain terminates instead of waiting forever.
            await asyncio.wait_for(svc.stop(drain=True), 30)

        asyncio.run(main())

    def test_cancelled_submit_does_not_kill_attached_waiters_silently(self):
        """B dedup-attaches to A's not-yet-queued job; A's cancellation
        must leave B with a clean, typed outcome — never a bare
        'service closed' lie from a healthy service, never a hang."""

        async def main():
            async with ScheduleService(
                backend="thread", max_workers=1, queue_size=1
            ) as svc:
                running = await svc.submit(sleepy(0.4, marker=0))
                await asyncio.sleep(0.05)
                queued = await svc.submit(sleepy(0.4, marker=1))
                # A parks on the full queue with marker=2 in the dedup
                # map; B attaches to it.
                submit_a = asyncio.ensure_future(
                    svc.submit(sleepy(0.4, marker=2))
                )
                await asyncio.sleep(0.05)
                job_b = await svc.submit(sleepy(0.4, marker=2))
                assert svc.metrics().deduped == 1
                submit_a.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await submit_a
                # The queue was still full, so the job could not be
                # rescued: B gets a retryable busy error, not "closed".
                with pytest.raises(ServiceBusyError, match="retry"):
                    await job_b.report()
                await asyncio.gather(running.outcome(), queued.outcome())
                # The accounting identity survives the whole episode,
                # and B's busy refusal shows up where operators look
                # for load-shedding — rejected, not deduped.
                metrics = svc.metrics()
                assert metrics.rejected == 1
                assert metrics.deduped == 0
                assert (
                    metrics.solves_started
                    + metrics.deduped
                    + metrics.answer_hits
                    == metrics.submitted
                )

        asyncio.run(main())

    def test_waiters_on_a_stopping_service_get_closed_not_busy(self):
        """Same episode during shutdown: 'retry' would be a lie, and
        shutdown fallout must not pollute the load-shedding gauge."""

        async def main():
            svc = ScheduleService(backend="thread", max_workers=1, queue_size=1)
            await svc.start()
            running = await svc.submit(sleepy(0.4, marker=0))
            await asyncio.sleep(0.05)
            queued = await svc.submit(sleepy(0.4, marker=1))
            submit_a = asyncio.ensure_future(svc.submit(sleepy(0.4, marker=2)))
            await asyncio.sleep(0.05)
            job_b = await svc.submit(sleepy(0.4, marker=2))
            stop_task = asyncio.ensure_future(svc.stop(drain=True))
            await asyncio.sleep(0.05)  # intake is now closed
            submit_a.cancel()
            with pytest.raises(asyncio.CancelledError):
                await submit_a
            with pytest.raises(ServiceClosedError):
                await job_b.report()
            await asyncio.gather(running.outcome(), queued.outcome())
            await asyncio.wait_for(stop_task, 30)
            metrics = svc.metrics()
            assert metrics.rejected == 0  # not a load-shedding event
            assert (
                metrics.solves_started + metrics.deduped + metrics.answer_hits
                == metrics.submitted
            )

        asyncio.run(main())

    def test_awaiting_submit_rides_out_a_full_queue(self):
        async def main():
            async with ScheduleService(
                backend="thread", max_workers=1, queue_size=1
            ) as svc:
                jobs = [
                    await svc.submit(sleepy(0.05, marker=i)) for i in range(4)
                ]
                outcomes = await asyncio.gather(*(j.outcome() for j in jobs))
                assert [o.ok for o in outcomes] == [True] * 4

        asyncio.run(main())


class TestTimeouts:
    def test_per_request_timeout_times_out(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=1) as svc:
                job = await svc.submit(sleepy(1.0), timeout_s=0.2)
                outcome = await job.outcome()
                assert outcome.error_type == "TimeoutError"
                metrics = svc.metrics()
                assert metrics.timeouts == 1
                assert metrics.errors == 1
            # Context exit drained: the zombie solve finished inside
            # executor shutdown, and its completion was counted.
            assert svc.metrics().solves_completed == 1

        asyncio.run(main())

    def test_default_timeout_applies_when_submit_names_none(self):
        async def main():
            async with ScheduleService(
                backend="thread", default_timeout_s=0.2
            ) as svc:
                outcome = await (await svc.submit(sleepy(1.0))).outcome()
                assert outcome.error_type == "TimeoutError"

        asyncio.run(main())

    def test_bad_timeouts_rejected(self):
        with pytest.raises(ServiceError, match="default_timeout_s"):
            ScheduleService(default_timeout_s=0.0)

        async def main():
            async with ScheduleService(backend="thread") as svc:
                with pytest.raises(ServiceError, match="timeout_s"):
                    await svc.submit(REQUEST, timeout_s=-1.0)

        asyncio.run(main())


class TestLifecycle:
    def test_bad_queue_size_rejected(self):
        with pytest.raises(ServiceError, match="queue_size"):
            ScheduleService(queue_size=0)

    def test_submit_before_start_rejected(self):
        async def main():
            svc = ScheduleService(backend="thread")
            with pytest.raises(ServiceClosedError):
                await svc.submit(REQUEST)

        asyncio.run(main())

    def test_drain_finishes_everything_and_joins_executor(self):
        async def main():
            svc = ScheduleService(backend="thread", max_workers=2)
            await svc.start()
            jobs = [await svc.submit(sleepy(0.1, marker=i)) for i in range(5)]
            await svc.stop(drain=True)
            # No pending futures...
            assert all(job.done for job in jobs)
            outcomes = [job.future.result() for job in jobs]
            assert all(o.ok for o in outcomes)
            metrics = svc.metrics()
            assert metrics.queue_depth == 0
            assert metrics.in_flight == 0
            assert metrics.completed == 5
            # ...the service refuses new work...
            with pytest.raises(ServiceClosedError):
                await svc.submit(REQUEST)
            # ...and the executor is joined (refuses new work too).
            with pytest.raises(RuntimeError):
                svc._executor.submit(time.sleep, 0)

        asyncio.run(main())

    def test_stop_without_drain_fails_queued_jobs(self):
        async def main():
            svc = ScheduleService(backend="thread", max_workers=1, queue_size=8)
            await svc.start()
            jobs = [await svc.submit(sleepy(0.3, marker=i)) for i in range(4)]
            await asyncio.sleep(0.05)  # first job reaches a worker
            await svc.stop(drain=False)
            assert all(job.done for job in jobs)
            states = []
            for job in jobs:
                exc = job.future.exception()
                states.append("closed" if exc is not None else "resolved")
                if exc is not None:
                    assert isinstance(exc, ServiceClosedError)
            # The job already on a worker finished; the queued ones
            # were failed fast instead of being waited for.
            assert states[0] == "resolved"
            assert "closed" in states

        asyncio.run(main())

    def test_in_flight_counts_jobs_not_archive_writes(self, tmp_path):
        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=2,
                archive=tmp_path / "served.jsonl",
            ) as svc:
                job = await svc.submit(sleepy(0.3))
                await asyncio.sleep(0.1)
                assert svc.metrics().in_flight == 1  # the solve, nothing else
                await job.outcome()
            assert svc.metrics().in_flight == 0

        asyncio.run(main())

    def test_stop_start_cycle_leaks_no_worker_slots(self):
        """The pool outlives a stop (unlike the per-start queue): the
        dispatcher's parked slot must come back, or a restarted
        1-worker service would hang forever."""

        async def main():
            # Cache off so every cycle's solve must reach a worker —
            # a leaked slot hangs immediately instead of being masked
            # by a cache hit.
            svc = ScheduleService(
                backend="thread", max_workers=1, answer_cache_size=0
            )
            for cycle in range(3):
                await svc.start()
                report = await asyncio.wait_for(
                    svc.solve(sleepy(0.01, marker=cycle)), 30
                )
                assert report.n_sessions >= 1
                await svc.stop()
                assert svc.worker_pool.busy_workers == 0

        asyncio.run(main())

    def test_stop_is_idempotent(self):
        async def main():
            svc = ScheduleService(backend="thread")
            await svc.start()
            await svc.stop()
            await svc.stop()
            assert not svc.running

        asyncio.run(main())

    def test_double_start_rejected(self):
        async def main():
            async with ScheduleService(backend="thread") as svc:
                with pytest.raises(ServiceError, match="already started"):
                    await svc.start()

        asyncio.run(main())


class TestProcessBackend:
    def test_process_workers_solve_and_dedup(self):
        async def main():
            async with ScheduleService(backend="process", max_workers=2) as svc:
                jobs = [await svc.submit(REQUEST) for _ in range(4)]
                jobs.append(await svc.submit(SEQUENTIAL))
                outcomes = await asyncio.gather(*(j.outcome() for j in jobs))
                assert all(o.ok for o in outcomes)
                assert outcomes[0].report.solver == "thermal_aware"
                assert outcomes[-1].report.solver == "sequential"
                metrics = svc.metrics()
                assert metrics.submitted == 5
                assert metrics.solves_started == 2
                assert metrics.deduped == 3
                # Process workers keep per-process caches; the shared
                # cache snapshot is absent by design.
                assert metrics.cache is None

        asyncio.run(main())

"""AdaptiveWorkerPool tests: scaling policy units + a live service.

The policy is a pure function of the observed (queue depth, busy
workers, clock) sequence — no background timers — so the unit tests
drive it step by step with a fake clock; the service tests then verify
the wiring: a burst grows ``current_workers`` toward the max, idle
observations shrink it back to the floor, and the shed watermark turns
over-pressure submits into :class:`~repro.errors.ServiceBusyError`.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.api import ScheduleRequest
from repro.errors import ServiceBusyError, ServiceError
from repro.service import AdaptiveWorkerPool, ScheduleService

from .test_service import sleepy


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestPolicyUnits:
    def test_validation(self):
        with pytest.raises(ServiceError, match="min_workers"):
            AdaptiveWorkerPool(0, 4)
        with pytest.raises(ServiceError, match="max_workers"):
            AdaptiveWorkerPool(4, 2)
        with pytest.raises(ServiceError, match="scale_down_idle_s"):
            AdaptiveWorkerPool(1, 2, scale_down_idle_s=0.0)

    def test_starts_at_the_floor(self):
        pool = AdaptiveWorkerPool(2, 8)
        assert pool.current_workers == 2
        assert (pool.min_workers, pool.max_workers) == (2, 8)

    def test_scales_up_one_step_per_pressured_observation(self):
        async def main():
            pool = AdaptiveWorkerPool(1, 3, clock=FakeClock())
            await pool.acquire()  # the single slot is busy
            pool.observe(queue_depth=5)
            assert pool.current_workers == 2
            await pool.acquire()  # both busy
            pool.observe(queue_depth=4)
            assert pool.current_workers == 3
            pool.observe(queue_depth=3)  # at max: no further growth
            assert pool.current_workers == 3
            assert pool.scale_ups == 2

        asyncio.run(main())

    def test_no_scale_up_while_spare_capacity_covers_the_backlog(self):
        async def main():
            pool = AdaptiveWorkerPool(2, 4, clock=FakeClock())
            await pool.acquire()  # 1 busy of target 2: one spare slot
            pool.observe(queue_depth=1)  # backlog fits the spare slot
            assert pool.current_workers == 2
            pool.observe(queue_depth=3)  # backlog exceeds it: grow
            assert pool.current_workers == 3

        asyncio.run(main())

    def test_scales_down_after_continuous_idle(self):
        clock = FakeClock()
        pool = AdaptiveWorkerPool(1, 4, scale_down_idle_s=2.0, clock=clock)
        pool._target = 3  # as if a burst had grown it
        pool.observe(0)  # idle timer starts
        clock.advance(1.9)
        pool.observe(0)
        assert pool.current_workers == 3  # hysteresis not elapsed
        clock.advance(0.1)
        pool.observe(0)
        assert pool.current_workers == 2
        # One step per idle period, not a collapse:
        pool.observe(0)
        assert pool.current_workers == 2
        clock.advance(2.0)
        pool.observe(0)
        assert pool.current_workers == 1
        clock.advance(100.0)
        pool.observe(0)
        assert pool.current_workers == 1  # floor holds
        assert pool.scale_downs == 2

    def test_pressure_resets_the_idle_timer(self):
        clock = FakeClock()
        pool = AdaptiveWorkerPool(1, 4, scale_down_idle_s=2.0, clock=clock)
        pool._target = 2
        pool.observe(0)
        clock.advance(1.5)
        pool.observe(2)  # work arrived (within spare): not idle any more
        clock.advance(1.5)
        pool.observe(0)  # timer restarted here
        assert pool.current_workers == 2
        clock.advance(2.0)
        pool.observe(0)
        assert pool.current_workers == 1

    def test_shrink_below_busy_pauses_admission_without_preemption(self):
        async def main():
            clock = FakeClock()
            pool = AdaptiveWorkerPool(1, 2, scale_down_idle_s=1.0, clock=clock)
            pool._target = 2
            await pool.acquire()
            # One running, queue quiet long enough: give one back.
            pool.observe(0)
            clock.advance(1.0)
            pool.observe(0)
            assert pool.current_workers == 1
            assert pool.busy_workers == 1
            # The next acquire must wait until the running job releases.
            acquired = asyncio.ensure_future(pool.acquire())
            await asyncio.sleep(0.01)
            assert not acquired.done()
            pool.release()
            await asyncio.wait_for(acquired, 1.0)

        asyncio.run(main())

    def test_acquire_release_cycle_is_semaphore_like(self):
        async def main():
            pool = AdaptiveWorkerPool(2, 2)
            await pool.acquire()
            await pool.acquire()
            assert pool.busy_workers == 2
            third = asyncio.ensure_future(pool.acquire())
            await asyncio.sleep(0.01)
            assert not third.done()
            pool.release()
            await asyncio.wait_for(third, 1.0)
            assert pool.busy_workers == 2

        asyncio.run(main())


class TestServiceIntegration:
    def test_burst_grows_the_pool_toward_max(self):
        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=3,
                min_workers=1,
            ) as svc:
                assert svc.metrics().current_workers == 1
                jobs = [
                    await svc.submit(sleepy(0.3, marker=i)) for i in range(6)
                ]
                await asyncio.sleep(0.1)  # submissions observed, burst running
                grown = svc.metrics().current_workers
                assert grown == 3
                assert svc.metrics().scale_ups == 2
                await asyncio.gather(*(j.outcome() for j in jobs))

        asyncio.run(main())

    def test_sequential_traffic_does_not_grow_the_pool(self):
        """One-at-a-time requests to an idle pool fit the free worker
        the parked dispatcher already holds: no spurious scale-up."""

        async def main():
            async with ScheduleService(
                backend="thread", max_workers=4, min_workers=1
            ) as svc:
                await asyncio.sleep(0.01)  # let the dispatcher park
                for i in range(3):
                    outcome = await (
                        await svc.submit(sleepy(0.05, marker=i))
                    ).outcome()
                    assert outcome.ok
                metrics = svc.metrics()
                assert metrics.current_workers == 1
                assert metrics.scale_ups == 0

        asyncio.run(main())

    def test_idle_service_scales_back_to_the_floor(self):
        clock = FakeClock()
        pool = AdaptiveWorkerPool(1, 3, scale_down_idle_s=5.0, clock=clock)

        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=3,
                worker_pool=pool,
            ) as svc:
                jobs = [
                    await svc.submit(sleepy(0.1, marker=i)) for i in range(6)
                ]
                await asyncio.gather(*(j.outcome() for j in jobs))
                assert svc.metrics().current_workers > 1
                # Metrics polls are the idle heartbeat: one shrink step
                # per elapsed hysteresis window.
                svc.metrics()  # idle timer starts
                while svc.metrics().current_workers > 1:
                    clock.advance(5.0)
                metrics = svc.metrics()
                assert metrics.current_workers == 1
                assert metrics.scale_downs == metrics.scale_ups
                # The shrunken pool still answers correctly.
                outcome = await (await svc.submit(sleepy(0.05, marker=99))).outcome()
                assert outcome.ok

        asyncio.run(main())

    def test_fixed_pool_when_min_equals_max(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                jobs = [
                    await svc.submit(sleepy(0.1, marker=i)) for i in range(4)
                ]
                await asyncio.gather(*(j.outcome() for j in jobs))
                metrics = svc.metrics()
                assert metrics.current_workers == 2
                assert metrics.scale_ups == 0
                assert metrics.scale_downs == 0

        asyncio.run(main())

    def test_shed_watermark_rejects_both_submit_paths(self):
        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=1,
                min_workers=1,
                queue_size=8,
                shed_watermark=2,
            ) as svc:
                running = await svc.submit(sleepy(0.4, marker=0))
                await asyncio.sleep(0.05)  # on a worker
                queued = [await svc.submit(sleepy(0.4, marker=i)) for i in (1, 2)]
                # Depth reached the watermark: the awaiting path sheds
                # instead of queueing...
                with pytest.raises(ServiceBusyError, match="shed watermark"):
                    await svc.submit(sleepy(0.4, marker=3))
                # ...and so does submit_nowait, well before QueueFull.
                with pytest.raises(ServiceBusyError, match="shed watermark"):
                    svc.submit_nowait(sleepy(0.4, marker=4))
                metrics = svc.metrics()
                assert metrics.shed == 2
                assert metrics.rejected == 2
                # Dedup-attach and cache hits stay exempt (no new slot).
                attached = svc.submit_nowait(sleepy(0.4, marker=2))
                assert attached.future is queued[1].future
                await asyncio.gather(
                    running.outcome(), *(j.outcome() for j in queued)
                )

        asyncio.run(main())

    def test_bad_shed_watermark_rejected(self):
        with pytest.raises(ServiceError, match="shed_watermark"):
            ScheduleService(queue_size=4, shed_watermark=5)
        with pytest.raises(ServiceError, match="shed_watermark"):
            ScheduleService(shed_watermark=0)

    def test_min_workers_validated_against_backend(self):
        with pytest.raises(ServiceError, match="min_workers"):
            ScheduleService(backend="thread", max_workers=2, min_workers=0)
        with pytest.raises(ServiceError, match="max_workers"):
            ScheduleService(backend="thread", max_workers=2, min_workers=4)

    def test_timeout_zombie_returns_its_adaptive_slot(self):
        """A timed-out solve's slot comes back through the pool path."""

        async def main():
            async with ScheduleService(
                backend="thread", max_workers=2, min_workers=1
            ) as svc:
                job = await svc.submit(sleepy(0.5), timeout_s=0.1)
                outcome = await job.outcome()
                assert outcome.error_type == "TimeoutError"
            # Drained: the zombie finished inside executor shutdown and
            # released its slot; busy count is balanced.
            assert svc.worker_pool.busy_workers == 0

        asyncio.run(main())

    def test_heartbeat_scales_down_without_any_polling(self):
        """A silent service (no submits, no stats polls) still bleeds
        back to the floor: the background heartbeat observes for it."""

        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=3,
                min_workers=1,
                scale_down_idle_s=0.05,
            ) as svc:
                jobs = [
                    await svc.submit(sleepy(0.1, marker=i)) for i in range(6)
                ]
                await asyncio.gather(*(j.outcome() for j in jobs))
                assert svc.worker_pool.current_workers > 1
                deadline = time.monotonic() + 10.0
                # Read the pool directly — deliberately no metrics()
                # calls, which would feed observations themselves.
                while (
                    svc.worker_pool.current_workers > 1
                    and time.monotonic() < deadline
                ):
                    await asyncio.sleep(0.02)
                assert svc.worker_pool.current_workers == 1

        asyncio.run(main())

    def test_adaptive_pool_with_real_clock_scales_down(self):
        """End-to-end with the default monotonic clock (short idle)."""

        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=2,
                min_workers=1,
                scale_down_idle_s=0.05,
            ) as svc:
                jobs = [
                    await svc.submit(sleepy(0.1, marker=i)) for i in range(4)
                ]
                await asyncio.gather(*(j.outcome() for j in jobs))
                deadline = time.monotonic() + 10.0
                while (
                    svc.metrics().current_workers > 1
                    and time.monotonic() < deadline
                ):
                    await asyncio.sleep(0.02)
                assert svc.metrics().current_workers == 1

        asyncio.run(main())

"""Observability layer of the service: traces, histograms, logs, scrape."""

from __future__ import annotations

import asyncio
import io
import json
import time

import pytest

from repro.api import ScheduleRequest, Solver, register_solver
from repro.core.baselines import sequential_schedule
from repro.obs import JsonLogger
from repro.service import (
    BATCH_FAMILIES,
    DWELL_FAMILIES,
    LATENCY_FAMILIES,
    METRIC_FIELDS,
    AsyncServiceClient,
    ScheduleServer,
    ScheduleService,
    ServiceClient,
)

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)


@register_solver
class ObsSleepySolver(Solver):
    """Sequential schedule after a nap — pins a worker deterministically."""

    name = "test_obs_sleepy"
    param_names = frozenset({"sleep_s"})

    def solve(self, context, params):
        time.sleep(float(params.get("sleep_s", 0.2)))
        return (
            self.baseline_result(context, sequential_schedule(context.soc)),
            {},
        )


def sleepy(sleep_s: float, marker: int = 0) -> ScheduleRequest:
    return ScheduleRequest(
        soc="worked_example6",
        tl_c=80.0 + marker,
        solver="test_obs_sleepy",
        params={"sleep_s": sleep_s},
    )

#: Phases every service-produced ok report must carry (tentpole
#: acceptance): engine phases + worker wall + service lifecycle.
EXPECTED_PHASES = {
    "model_build",
    "limit_resolve",
    "solver",
    "total",
    "worker",
    "queue_wait",
    "service_total",
}


class TestRequestTimings:
    def test_every_ok_report_carries_per_phase_timings(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                report = await svc.solve(REQUEST)
                assert report.timings is not None
                assert EXPECTED_PHASES <= set(report.timings)
                # Phase nesting: engine total <= worker wall <= e2e.
                assert report.timings["total"] <= report.timings["worker"]
                assert report.timings["worker"] <= report.timings["service_total"]
                assert all(v >= 0.0 for v in report.timings.values())

        asyncio.run(main())

    def test_cached_hit_serves_the_original_trace(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                first = await svc.solve(REQUEST)
                second = await svc.solve(REQUEST)
                assert second.cached
                assert second.timings == first.timings

        asyncio.run(main())

    def test_observability_off_skips_lifecycle_stamping(self):
        async def main():
            async with ScheduleService(
                backend="thread", max_workers=2, observability=False
            ) as svc:
                report = await svc.solve(REQUEST)
                # Engine-side phases still ride along (they are part of
                # the report itself), but no service lifecycle phases
                # and no histograms.
                assert "queue_wait" not in (report.timings or {})
                assert "service_total" not in (report.timings or {})
                assert svc.metrics().latency is None

        asyncio.run(main())


class TestLatencyHistograms:
    def test_families_populated_after_a_solve_and_a_hit(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                await svc.solve(REQUEST)
                await svc.solve(REQUEST)  # answer-cache hit
                latency = svc.metrics().latency
                assert latency is not None
                for family in ("queue_wait", "solve", "e2e", "answer_hit"):
                    assert family in latency
                assert latency["e2e"]["count"] == 2
                assert latency["solve"]["count"] == 1
                assert latency["answer_hit"]["count"] == 1
                snap = latency["solve"]
                assert snap["p50"] is not None
                assert snap["min"] <= snap["p50"] <= snap["max"]

        asyncio.run(main())

    def test_stats_dict_nests_latency_snapshots(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                await svc.solve(REQUEST)
                data = svc.metrics().to_dict()
                assert set(data["latency"]) >= {"queue_wait", "solve", "e2e"}
                assert data["latency"]["solve"]["count"] == 1
                # The whole stats payload must stay JSON-serialisable.
                json.dumps(data)

        asyncio.run(main())

    def test_describe_includes_latency_percentiles(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                await svc.solve(REQUEST)
                text = svc.metrics().describe()
                assert "latency:" in text
                assert "solve p50" in text

        asyncio.run(main())


class TestMetricFieldTable:
    def test_table_drives_to_dict(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=1) as svc:
                data = svc.metrics().to_dict()
                for field in METRIC_FIELDS:
                    assert field.name in data

        asyncio.run(main())

    def test_every_latency_family_has_a_histogram(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=1) as svc:
                assert set(svc.latency_histograms.names()) == (
                    set(LATENCY_FAMILIES)
                    | set(DWELL_FAMILIES)
                    | set(BATCH_FAMILIES)
                )

        asyncio.run(main())


class TestMetricsScrape:
    def test_metrics_frame_over_tcp(self):
        async def main():
            async with ScheduleService(backend="thread", max_workers=2) as svc:
                server = ScheduleServer(svc, host="127.0.0.1", port=0)
                await server.start()
                try:
                    async with await AsyncServiceClient.connect(
                        port=server.port
                    ) as client:
                        await client.submit(REQUEST)
                        await client.submit(REQUEST)  # cache hit
                        text = await client.metrics_text()
                finally:
                    await server.stop()
            assert 'repro_service{backend="thread"} 1' in text
            assert "repro_submitted_total 2" in text
            assert "repro_answer_hits_total 1" in text
            assert "repro_solve_seconds_count 1" in text
            assert "repro_e2e_seconds_count 2" in text
            assert 'repro_queue_wait_seconds{quantile="0.5"}' in text
            assert "# TYPE repro_solve_seconds summary" in text

        asyncio.run(main())

    def test_sync_client_metrics_text(self):
        import threading

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()

        async def boot():
            service = ScheduleService(backend="thread", max_workers=2)
            await service.start()
            server = ScheduleServer(service, host="127.0.0.1", port=0)
            await server.start()
            return service, server

        service, server = asyncio.run_coroutine_threadsafe(
            boot(), loop
        ).result(30)
        try:
            with ServiceClient(port=server.port) as client:
                client.submit(REQUEST)
                text = client.metrics_text()
            assert "repro_submitted_total 1" in text
        finally:
            async def teardown():
                await server.stop()
                await service.stop(drain=True)

            asyncio.run_coroutine_threadsafe(teardown(), loop).result(60)
            loop.call_soon_threadsafe(loop.stop)
            thread.join()
            loop.close()


class TestStructuredLogging:
    @staticmethod
    def _events(stream: io.StringIO) -> list[dict]:
        return [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]

    def test_lifecycle_events_admitted_completed_hit(self):
        stream = io.StringIO()

        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=2,
                logger=JsonLogger(stream, clock=lambda: 7.0),
            ) as svc:
                await svc.solve(REQUEST)
                await svc.solve(REQUEST)  # answer-cache hit

        asyncio.run(main())
        events = self._events(stream)
        names = [e["event"] for e in events]
        assert names == [
            "request_admitted", "request_completed", "request_cache_hit",
        ]
        completed = events[1]
        assert completed["request_hash"] == REQUEST.content_hash()
        assert completed["solver"] == "thermal_aware"
        assert completed["status"] == "ok"
        assert EXPECTED_PHASES <= set(completed["timings"])

    def test_slow_request_threshold_logs_full_trace(self):
        stream = io.StringIO()

        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=2,
                logger=JsonLogger(stream, clock=lambda: 7.0),
                slow_request_ms=0.001,  # everything is "slow"
            ) as svc:
                await svc.solve(REQUEST)

        asyncio.run(main())
        events = self._events(stream)
        slow = [e for e in events if e["event"] == "slow_request"]
        assert len(slow) == 1
        assert slow[0]["threshold_ms"] == 0.001
        assert slow[0]["e2e_s"] >= 0.0
        assert "solver" in slow[0]["timings"]

    def test_slow_request_ms_alone_enables_stderr_logging(self, capsys):
        async def main():
            async with ScheduleService(
                backend="thread", max_workers=2, slow_request_ms=0.001
            ) as svc:
                await svc.solve(REQUEST)

        asyncio.run(main())
        err = capsys.readouterr().err
        assert '"event":"slow_request"' in err

    def test_shed_event_logged(self):
        stream = io.StringIO()

        async def main():
            async with ScheduleService(
                backend="thread",
                max_workers=1,
                queue_size=1,
                shed_watermark=1,
                answer_cache_size=0,
                logger=JsonLogger(stream, clock=lambda: 7.0),
            ) as svc:
                first = asyncio.ensure_future(svc.solve(sleepy(0.3, marker=0)))
                await asyncio.sleep(0.05)  # the worker now holds `first`
                # Occupy the queue, then trip the watermark.
                second = asyncio.ensure_future(
                    svc.solve(sleepy(0.01, marker=1))
                )
                await asyncio.sleep(0.05)
                from repro.errors import ServiceBusyError

                with pytest.raises(ServiceBusyError):
                    await svc.solve(REQUEST)
                await asyncio.gather(first, second)

        asyncio.run(main())
        names = [e["event"] for e in self._events(stream)]
        assert "request_shed" in names

    def test_invalid_slow_threshold_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="slow_request_ms"):
            ScheduleService(backend="thread", slow_request_ms=-1.0)

"""Streaming-watch acceptance over real TCP: server, router, sync client.

The acceptance criterion from the closed-loop issue: a watched request
streams monotonically ordered progress/event frames ending in a
terminal ``report`` (or ``error``) frame — through a direct
:class:`ScheduleServer` and unchanged through a :class:`FleetRouter`.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from contextlib import AsyncExitStack

import pytest

from repro.api import ScheduleRequest
from repro.errors import ServiceError
from repro.reactive import GuardConfig, ReactiveConfig
from repro.service import (
    AsyncServiceClient,
    FleetRouter,
    RetryPolicy,
    ScheduleServer,
    ScheduleService,
    ServiceClient,
)

REQUEST = ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)
INFEASIBLE = ScheduleRequest(soc="worked_example6", tl_c=30.0, stcl=60.0)

#: Thresholds that force the worked example's ~53.3 C open-loop peak
#: through ELEVATED, so every watch carries throttle events.
HOT_GUARD = GuardConfig(elevated_c=49.0, critical_c=53.0, hysteresis_c=1.5)

#: Service knobs every watch test shares: a guard that must act, and a
#: coarse control period to keep the event timeline short.
REACTIVE_KWARGS = dict(
    reactive_guard=HOT_GUARD,
    reactive_config=ReactiveConfig(chunk_s=0.1),
    reactive_dt=5e-3,
)


def run_with_server(test_coro, **service_kwargs):
    """Start service + TCP server, run *test_coro(server, service)*."""

    async def main():
        service_kwargs.setdefault("backend", "thread")
        service_kwargs.setdefault("max_workers", 2)
        async with ScheduleService(**service_kwargs) as service:
            server = ScheduleServer(service, host="127.0.0.1", port=0)
            await server.start()
            try:
                return await test_coro(server, service)
            finally:
                await server.stop()

    return asyncio.run(main())


async def collect_watch(client, request=REQUEST):
    return [frame async for frame in client.watch(request)]


def assert_well_formed_watch(frames, *, terminal="report"):
    """The streaming contract every transport must uphold."""
    assert frames, "watch yielded no frames"
    pushes, tail = frames[:-1], frames[-1]
    assert tail["type"] == terminal
    assert all(f["type"] in ("progress", "event") for f in pushes)
    # One id per watch, on every frame.
    assert len({f["id"] for f in frames}) == 1
    # Push seq is strictly monotonic from 0.
    seqs = [f["seq"] for f in pushes]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    assert seqs[0] == 0
    stages = [f["stage"] for f in pushes if f["type"] == "progress"]
    assert stages[0] == "queued"
    return pushes, tail


class TestDirectServer:
    def test_watch_streams_ordered_events_ending_in_done(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(
                port=server.port
            ) as client:
                frames = await collect_watch(client)
            pushes, tail = assert_well_formed_watch(frames)
            stages = [
                f["stage"] for f in pushes if f["type"] == "progress"
            ]
            assert stages == ["queued", "running"]
            kinds = [
                f["event"]["kind"] for f in pushes if f["type"] == "event"
            ]
            # The hot guard must have acted, and the executor's own
            # timeline must close before the terminal report frame.
            assert "throttled" in kinds
            assert kinds[-1] == "done"
            event_times = [
                f["event"]["time_s"]
                for f in pushes
                if f["type"] == "event"
            ]
            assert event_times == sorted(event_times)
            assert tail["report"]["solver"] == "thermal_aware"

        run_with_server(scenario, **REACTIVE_KWARGS)

    def test_cached_answer_still_streams_a_full_timeline(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(
                port=server.port
            ) as client:
                first = await collect_watch(client)
                second = await collect_watch(client)
            _, tail = assert_well_formed_watch(second)
            assert tail["report"]["cached"] is True
            kinds = [
                f["event"]["kind"]
                for f in second
                if f["type"] == "event"
            ]
            assert kinds[-1] == "done"
            # Deterministic replay: same schedule, same guard, same
            # event timeline (seq/kind/time), fresh or cached.
            assert [
                (f["seq"], f["event"]["kind"], f["event"]["time_s"])
                for f in first
                if f["type"] == "event"
            ] == [
                (f["seq"], f["event"]["kind"], f["event"]["time_s"])
                for f in second
                if f["type"] == "event"
            ]

        run_with_server(scenario, **REACTIVE_KWARGS)

    def test_failed_solve_watch_ends_in_error_frame(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(
                port=server.port
            ) as client:
                frames = await collect_watch(client, INFEASIBLE)
            _, tail = assert_well_formed_watch(frames, terminal="error")
            assert tail["error_type"] == "CoreThermalViolationError"

        run_with_server(scenario, **REACTIVE_KWARGS)

    def test_watch_and_plain_submit_share_one_connection(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(
                port=server.port
            ) as client:
                watcher = asyncio.ensure_future(collect_watch(client))
                report = await client.submit(REQUEST)
                frames = await watcher
            assert report.solver == "thermal_aware"
            assert_well_formed_watch(frames)

        run_with_server(scenario, **REACTIVE_KWARGS)

    def test_watch_bumps_reactive_metrics(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(
                port=server.port
            ) as client:
                await collect_watch(client)
            metrics = service.metrics()
            assert metrics.reactive_runs == 1
            assert metrics.reactive_throttles > 0
            assert metrics.guard_transitions > 0

        run_with_server(scenario, **REACTIVE_KWARGS)


class TestSubmitNowaitStream:
    """``submit_nowait`` threads ``stream=`` through like ``submit``."""

    @staticmethod
    async def _drain(job):
        queue = job.subscribe()
        events = []
        while (item := await queue.get()) is not None:
            events.append(item)
        return events

    def test_submit_nowait_streams_the_reactive_timeline(self):
        async def main():
            async with ScheduleService(
                backend="thread", max_workers=2, **REACTIVE_KWARGS
            ) as svc:
                job = svc.submit_nowait(REQUEST, stream=True)
                events = await self._drain(job)
                kinds = [e["kind"] for e in events]
                assert "throttled" in kinds
                assert kinds[-1] == "done"
                assert svc.metrics().reactive_runs == 1

        asyncio.run(main())

    def test_submit_nowait_streams_on_answer_cache_hit(self):
        # The pre-resolved-job case: the answer cache resolves the
        # future before submit_nowait returns, so _finish never runs
        # again — the reactive phase must be scheduled at submit time.
        async def main():
            async with ScheduleService(
                backend="thread", max_workers=2, **REACTIVE_KWARGS
            ) as svc:
                await svc.solve(REQUEST)  # unstreamed: warms the cache
                job = svc.submit_nowait(REQUEST, stream=True)
                assert job.done
                events = await self._drain(job)
                assert events and events[-1]["kind"] == "done"
                assert svc.metrics().answer_hits == 1

        asyncio.run(main())


class TestCachedStreamReplay:
    def test_hit_replays_stored_timeline_without_resimulating(self):
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(
                port=server.port
            ) as client:
                start = time.perf_counter()
                first = await collect_watch(client)
                first_s = time.perf_counter() - start
                assert service.metrics().reactive_runs == 1
                start = time.perf_counter()
                second = await collect_watch(client)
                second_s = time.perf_counter() - start

            def timeline(frames):
                return [
                    (f["event"]["kind"], f["event"]["time_s"])
                    for f in frames
                    if f["type"] == "event"
                ]

            # The hit replayed the stored timeline: no second
            # closed-loop run happened...
            assert service.metrics().reactive_runs == 1
            # ...the replayed events are the original ones...
            assert timeline(first) == timeline(second)
            assert_well_formed_watch(second)
            # ...and the hit skipped both the solve and the transient
            # simulation, so it answers in a fraction of the fresh
            # watch's wall time.
            assert second_s < first_s

        run_with_server(scenario, **REACTIVE_KWARGS)

    def test_unstreamed_answers_store_no_timeline(self):
        async def main():
            async with ScheduleService(
                backend="thread", max_workers=2, **REACTIVE_KWARGS
            ) as svc:
                job = await svc.submit(REQUEST)
                await job.outcome()
                assert svc.answer_cache is not None
                assert svc.answer_cache.reactive_report(job.key) is None

        asyncio.run(main())


class TestThroughRouter:
    def test_watch_relays_unchanged_through_the_fleet(self):
        async def main():
            async with AsyncExitStack() as stack:
                servers = []
                for _ in range(2):
                    service = await stack.enter_async_context(
                        ScheduleService(
                            backend="thread",
                            max_workers=2,
                            **REACTIVE_KWARGS,
                        )
                    )
                    server = ScheduleServer(
                        service, host="127.0.0.1", port=0
                    )
                    await server.start()
                    stack.push_async_callback(server.stop)
                    servers.append(server)
                router = FleetRouter(
                    [f"127.0.0.1:{s.port}" for s in servers],
                    probe_interval_s=None,
                    retry_policy=RetryPolicy(
                        max_attempts=2, rng=random.Random(0)
                    ),
                )
                await router.start()
                stack.push_async_callback(router.stop)
                async with await AsyncServiceClient.connect(
                    port=router.port
                ) as client:
                    return await collect_watch(client)

        frames = asyncio.run(main())
        pushes, tail = assert_well_formed_watch(frames)
        kinds = [
            f["event"]["kind"] for f in pushes if f["type"] == "event"
        ]
        assert "throttled" in kinds
        assert kinds[-1] == "done"
        assert tail["report"]["solver"] == "thermal_aware"


class TestSyncClient:
    def test_blocking_watch_yields_frames_in_order(self):
        done = threading.Event()
        collected: list[dict] = []

        async def scenario(server, service):
            def pump():
                with ServiceClient(port=server.port) as client:
                    collected.extend(client.watch(REQUEST))
                done.set()

            thread = threading.Thread(target=pump)
            thread.start()
            while not done.is_set():
                await asyncio.sleep(0.01)
            thread.join()

        run_with_server(scenario, **REACTIVE_KWARGS)
        pushes, tail = assert_well_formed_watch(collected)
        assert any(f["type"] == "event" for f in pushes)


class TestWatchWithoutReactiveService:
    def test_default_service_still_completes_the_watch(self):
        # No guard configured: the service derives thresholds from the
        # request's TL, under which the worked example never leaves
        # NORMAL — the watch still ends with the executor's done event
        # and the terminal report.
        async def scenario(server, service):
            async with await AsyncServiceClient.connect(
                port=server.port
            ) as client:
                frames = await collect_watch(client)
            pushes, tail = assert_well_formed_watch(frames)
            kinds = [
                f["event"]["kind"] for f in pushes if f["type"] == "event"
            ]
            assert kinds[-1] == "done"
            assert "throttled" not in kinds

        run_with_server(scenario)

    def test_closed_client_refuses_to_watch(self):
        async def scenario(server, service):
            client = await AsyncServiceClient.connect(port=server.port)
            await client.close()
            with pytest.raises(ServiceError, match="closed"):
                await collect_watch(client)

        run_with_server(scenario)

"""Regression: ``ReportArchive.count`` reads under the writer lock.

The lock-discipline pass flagged the old unlocked read; with appends
coming from worker threads, the count a drain prints must be a
consistent post-append value, never a torn or stale one.
"""

from __future__ import annotations

import threading

from repro.service.archive import ReportArchive, load_service_archive


class TestCountUnderConcurrentAppends:
    def test_count_matches_lines_after_threads_join(self, tmp_path):
        archive = ReportArchive(tmp_path / "served.jsonl")
        appends_per_thread = 200

        def append_records(worker):
            for i in range(appends_per_thread):
                archive.append_record({"worker": worker, "i": i})

        threads = [
            threading.Thread(target=append_records, args=(w,))
            for w in range(4)
        ]
        for t in threads:
            t.start()
        readers_saw = []
        while any(t.is_alive() for t in threads):
            readers_saw.append(archive.count)  # must never raise or tear
        for t in threads:
            t.join()

        assert archive.count == 4 * appends_per_thread
        assert len(load_service_archive(archive.path)) == archive.count
        assert all(0 <= seen <= archive.count for seen in readers_saw)
        assert readers_saw == sorted(readers_saw)  # monotone non-decreasing

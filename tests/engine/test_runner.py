"""Integration tests for run_job / BatchRunner, including JSONL archives."""

from __future__ import annotations

import math

import pytest

from repro.core.safety import audit_schedule
from repro.core.serialize import load_jsonl
from repro.engine.backends import SerialBackend
from repro.engine.cache import ThermalModelCache
from repro.engine.jobs import JobSpec
from repro.engine.runner import (
    BatchRunner,
    load_batch_jsonl,
    run_job,
    save_batch_jsonl,
)
from repro.engine.scenarios import FleetConfig, ScenarioSpec, generate_fleet
from repro.errors import SchedulingError

GRID = ScenarioSpec(kind="grid", rows=2, cols=2, power_seed=11)

#: A tiny pool so even small test fleets share floorplans.
TINY_POOL = FleetConfig(
    grid_dims=((2, 2),),
    slicing_blocks=(6,),
    n_floorplan_seeds=1,
    convection_pool=(0.45,),
    include_builtins=False,
)


def small_fleet(count: int, seed: int = 0) -> list[JobSpec]:
    return generate_fleet(count, seed=seed, config=TINY_POOL)


class TestRunJob:
    def test_successful_job(self):
        spec = JobSpec(
            job_id="ok", scenario=GRID, tl_headroom=1.2, stcl_headroom=1.6
        )
        record = run_job(spec)
        assert record.ok
        assert record.result is not None
        assert record.result.max_temperature_c < record.tl_c
        assert record.steady_solves > 0
        assert record.elapsed_s > 0.0
        assert not record.cache_hit

    def test_schedule_is_independently_safe(self):
        record = run_job(
            JobSpec(job_id="a", scenario=GRID, tl_headroom=1.2, stcl_headroom=1.6)
        )
        audit = audit_schedule(record.result.schedule, limit_c=record.tl_c)
        assert audit.is_safe

    def test_infeasible_scenario_becomes_error_record(self):
        spec = JobSpec(job_id="cold", scenario=GRID, tl_c=46.0, stcl=1e9)
        record = run_job(spec)
        assert record.status == "error"
        assert "CoreThermalViolationError" in record.error
        assert math.isnan(record.tl_c)
        # The failure happened after phase A: its solves must be charged.
        assert record.steady_solves > 0

    def test_cache_reuse_across_jobs(self):
        cache = ThermalModelCache()
        base = dict(scenario=GRID, tl_headroom=1.2, stcl_headroom=1.6)
        first = run_job(JobSpec(job_id="one", **base), cache)
        second = run_job(
            JobSpec(job_id="two", **dict(base, scenario=GRID)), cache
        )
        assert not first.cache_hit
        assert second.cache_hit
        assert cache.stats.hits == 1


class TestBatchRunner:
    def test_serial_fleet_all_ok(self):
        batch = BatchRunner(backend="serial").run(small_fleet(6))
        assert batch.n_jobs == 6
        assert len(batch.ok) == 6
        assert batch.failed == ()
        assert batch.backend == "serial"
        assert batch.wall_s > 0.0
        assert batch.total_length_s > 0.0
        assert batch.total_steady_solves > 0

    def test_shared_floorplans_hit_the_cache(self):
        batch = BatchRunner(backend="serial").run(small_fleet(6))
        # 2 distinct (floorplan, package) pairs in TINY_POOL -> 4+ hits.
        assert batch.cache_hits >= 4
        assert batch.cache_hit_rate >= 4 / 6
        assert batch.cache_stats is not None
        assert batch.cache_stats.hits == batch.cache_hits

    def test_cache_can_be_disabled(self):
        batch = BatchRunner(backend="serial", use_cache=False).run(small_fleet(4))
        assert batch.cache_hits == 0
        assert batch.cache_stats is None

    def test_cache_can_be_disabled_on_process_backend(self):
        batch = BatchRunner(
            backend="process", max_workers=2, use_cache=False
        ).run(small_fleet(4))
        assert batch.cache_hits == 0

    def test_batch_result_is_iterable(self):
        fleet = small_fleet(3)
        batch = BatchRunner().run(fleet)
        assert len(batch) == 3
        assert [r.spec.job_id for r in batch] == [j.job_id for j in fleet]
        assert batch.results[0] in batch

    def test_thread_backend_matches_serial(self):
        fleet = small_fleet(6)
        serial = BatchRunner(backend="serial").run(fleet)
        threaded = BatchRunner(backend="thread", max_workers=2).run(fleet)
        for a, b in zip(serial.results, threaded.results):
            assert a.spec.job_id == b.spec.job_id
            assert a.result.length_s == b.result.length_s
            assert [s.cores for s in a.result.schedule] == [
                s.cores for s in b.result.schedule
            ]

    def test_process_backend_matches_serial(self):
        fleet = small_fleet(4)
        serial = BatchRunner(backend="serial").run(fleet)
        processed = BatchRunner(backend="process", max_workers=2).run(fleet)
        for a, b in zip(serial.results, processed.results):
            assert a.result.length_s == b.result.length_s

    def test_duplicate_job_ids_rejected(self):
        job = JobSpec(job_id="x", scenario=GRID, tl_headroom=1.2, stcl=10.0)
        with pytest.raises(SchedulingError, match="duplicate job ids"):
            BatchRunner().run([job, job])

    def test_lookup_by_job_id(self):
        fleet = small_fleet(3)
        batch = BatchRunner().run(fleet)
        assert batch[fleet[1].job_id].spec == fleet[1]
        with pytest.raises(SchedulingError, match="no job"):
            batch["ghost"]

    def test_describe_surfaces_effort_and_cache(self):
        text = BatchRunner().run(small_fleet(4)).describe(limit=2)
        assert "simulation effort" in text
        assert "steady-state solves" in text
        assert "model cache" in text
        assert "... 2 more jobs" in text

    def test_errors_do_not_kill_the_batch(self):
        jobs = small_fleet(2) + [
            JobSpec(job_id="cold", scenario=GRID, tl_c=46.0, stcl=1e9)
        ]
        batch = BatchRunner().run(jobs)
        assert len(batch.ok) == 2
        assert len(batch.failed) == 1
        assert "cold" in batch.describe(limit=1)


class TestJsonlArchive:
    def test_round_trip_preserves_audit_verdict(self, tmp_path):
        """schedule -> dump -> load -> identical audit verdict."""
        path = tmp_path / "fleet.jsonl"
        batch = BatchRunner().run(small_fleet(5), jsonl_path=path)
        loaded = load_batch_jsonl(path)
        assert len(loaded) == 5
        for original, restored in zip(batch.results, loaded):
            assert restored.spec == original.spec
            original_audit = audit_schedule(
                original.result.schedule, limit_c=original.tl_c
            )
            restored_audit = audit_schedule(
                restored.result.schedule, limit_c=restored.tl_c
            )
            assert restored_audit.is_safe == original_audit.is_safe
            assert restored_audit.max_temperature_c == pytest.approx(
                original_audit.max_temperature_c
            )

    def test_jsonl_is_one_record_per_line(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        count = save_batch_jsonl(BatchRunner().run(small_fleet(3)).results, path)
        assert count == 3
        records = load_jsonl(path)
        assert len(records) == 3
        assert all(r["status"] == "ok" for r in records)

    def test_corrupt_record_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\n{broken\n')
        with pytest.raises(SchedulingError, match="bad.jsonl:2"):
            load_jsonl(path)

    def test_error_records_survive_the_archive(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        jobs = [JobSpec(job_id="cold", scenario=GRID, tl_c=46.0, stcl=1e9)]
        BatchRunner().run(jobs, jsonl_path=path)
        loaded = load_batch_jsonl(path)
        assert loaded[0].status == "error"
        assert loaded[0].result is None
        assert math.isnan(loaded[0].tl_c)

    def test_archive_is_strict_json(self, tmp_path):
        """Error records must not leak bare NaN tokens into the JSONL."""
        import json

        path = tmp_path / "fleet.jsonl"
        jobs = [JobSpec(job_id="cold", scenario=GRID, tl_c=46.0, stcl=1e9)]
        BatchRunner().run(jobs, jsonl_path=path)
        for line in path.read_text().splitlines():
            json.loads(line, parse_constant=lambda token: pytest.fail(
                f"non-strict JSON token {token!r} in archive"
            ))


class TestEmptyBatchValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(SchedulingError, match="no jobs"):
            BatchRunner().run([])

    def test_generate_fleet_rejects_nonpositive_count(self):
        with pytest.raises(SchedulingError, match="fleet size"):
            generate_fleet(0)
        with pytest.raises(SchedulingError, match="fleet size"):
            generate_fleet(-3)


class TestSolverDispatch:
    """Fleets dispatch per-job through the solver registry."""

    def test_power_constrained_fleet_end_to_end(self, tmp_path):
        fleet = generate_fleet(4, seed=0, config=TINY_POOL, solver="power_constrained")
        path = tmp_path / "pc.jsonl"
        batch = BatchRunner(backend="serial").run(fleet, jsonl_path=path)
        assert len(batch.ok) == 4
        for record in load_jsonl(path):
            assert record["spec"]["solver"] == "power_constrained"
        loaded = load_batch_jsonl(path)
        assert all(r.spec.solver == "power_constrained" for r in loaded)

    def test_sequential_fleet_end_to_end(self, tmp_path):
        fleet = generate_fleet(3, seed=1, config=TINY_POOL, solver="sequential")
        path = tmp_path / "seq.jsonl"
        batch = BatchRunner(backend="serial").run(fleet, jsonl_path=path)
        assert len(batch.ok) == 3
        for record in batch:
            assert all(len(s) == 1 for s in record.result.schedule)
        assert {r["spec"]["solver"] for r in load_jsonl(path)} == {"sequential"}

    def test_mixed_solver_batch(self):
        import dataclasses

        fleet = small_fleet(2)
        mixed = [
            fleet[0],
            dataclasses.replace(fleet[1], job_id="pc", solver="power_constrained"),
        ]
        batch = BatchRunner(backend="serial").run(mixed)
        assert len(batch.ok) == 2
        assert batch["pc"].spec.solver == "power_constrained"
        assert batch["pc"].result.effort_s == 0.0

    def test_unknown_solver_becomes_error_record(self):
        spec = JobSpec(
            job_id="bad",
            scenario=GRID,
            tl_headroom=1.2,
            stcl_headroom=1.6,
            solver="imaginary",
        )
        record = run_job(spec)
        assert record.status == "error"
        assert "unknown solver" in record.error

    def test_solver_comparison_same_fleet(self):
        """The ROADMAP's head-to-head: one fleet, two solvers, comparable."""
        thermal = BatchRunner().run(small_fleet(3))
        blind = BatchRunner().run(
            generate_fleet(3, seed=0, config=TINY_POOL, solver="sequential")
        )
        assert [r.spec.scenario for r in thermal] == [
            r.spec.scenario for r in blind
        ]
        # Sequential schedules are never shorter than packed ones.
        assert blind.total_length_s >= thermal.total_length_s


class TestFleetSurvivesBuggySolvers:
    def test_non_repro_exception_becomes_error_record(self):
        from repro.api import Solver, register_solver
        from repro.api.solvers import _REGISTRY

        @register_solver
        class ExplodingSolver(Solver):
            name = "test-exploding"

            def solve(self, context, params):
                # Spend effort on the shared-cache simulator first, so
                # the error record's accounting can be asserted.
                context.simulator.steady_state(
                    {next(iter(context.soc.core_names)): 1.0}
                )
                raise RuntimeError("third-party bug")

        try:
            fleet = small_fleet(2)
            import dataclasses

            jobs = [
                fleet[0],
                dataclasses.replace(
                    fleet[1], job_id="boom", solver="test-exploding"
                ),
            ]
            batch = BatchRunner(backend="serial").run(jobs)
            assert len(batch.ok) == 1
            assert batch["boom"].status == "error"
            assert "RuntimeError" in batch["boom"].error
            # Effort spent before the crash is still charged to the record.
            assert batch["boom"].steady_solves > 0
        finally:
            _REGISTRY.pop("test-exploding", None)


class TestArchiveParentDirectories:
    """Archiving to a fresh results directory must create it, not die."""

    def test_save_batch_jsonl_creates_missing_parents(self, tmp_path):
        batch = BatchRunner().run(small_fleet(2))
        target = tmp_path / "results" / "deep" / "fleet.jsonl"
        assert not target.parent.exists()
        count = save_batch_jsonl(batch.results, target)
        assert count == 2
        assert len(load_batch_jsonl(target)) == 2

    def test_save_batch_jsonl_into_existing_dir_still_works(self, tmp_path):
        batch = BatchRunner().run(small_fleet(1))
        target = tmp_path / "fleet.jsonl"
        assert save_batch_jsonl(batch.results, target) == 1
        # Overwriting in place is the idempotent re-run path.
        assert save_batch_jsonl(batch.results, target) == 1
        assert len(load_jsonl(target)) == 1

    def test_runner_jsonl_path_creates_missing_parents(self, tmp_path):
        target = tmp_path / "fresh" / "fleet.jsonl"
        BatchRunner().run(small_fleet(1), jsonl_path=target)
        assert target.exists()

"""Unit tests for the execution-backend registry."""

from __future__ import annotations

import pytest

from repro.engine.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    create_backend,
    default_worker_count,
    register_backend,
)
from repro.errors import SchedulingError


def _square(x: int) -> int:
    """Module-level so the process backend can pickle it."""
    return x * x


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_backends()) >= {"serial", "thread", "process"}

    def test_create_by_name(self):
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("thread", max_workers=2), ThreadBackend)
        assert isinstance(create_backend("process"), ProcessBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(SchedulingError, match="unknown execution backend"):
            create_backend("quantum")

    def test_registering_custom_backend(self):
        class ReversedSerial(SerialBackend):
            name = "test-reversed"

            def map(self, worker, items):
                return [worker(item) for item in items][::-1]

        try:
            register_backend(ReversedSerial)
            backend = create_backend("test-reversed")
            assert backend.map(_square, [1, 2]) == [4, 1]
        finally:
            from repro.engine import backends

            backends._REGISTRY.pop("test-reversed", None)

    def test_abstract_name_rejected(self):
        class Nameless(SerialBackend):
            name = "abstract"

        with pytest.raises(SchedulingError, match="concrete name"):
            register_backend(Nameless)


class TestBackendBehaviour:
    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_map_preserves_order(self, name):
        backend = create_backend(name, max_workers=2)
        assert backend.map(_square, list(range(10))) == [
            x * x for x in range(10)
        ]

    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_empty_input(self, name):
        assert create_backend(name, max_workers=2).map(_square, []) == []

    def test_serial_is_single_worker(self):
        assert create_backend("serial", max_workers=8).max_workers == 1

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1
        assert create_backend("thread").max_workers == default_worker_count()

    def test_bad_worker_count_rejected(self):
        with pytest.raises(SchedulingError, match="max_workers"):
            create_backend("thread", max_workers=0)

    def test_memory_sharing_flags(self):
        assert create_backend("serial").shares_memory
        assert create_backend("thread").shares_memory
        assert not create_backend("process").shares_memory

    def test_repr_mentions_workers(self):
        assert "max_workers=3" in repr(create_backend("thread", max_workers=3))

    def test_backend_is_abstract(self):
        with pytest.raises(TypeError):
            ExecutionBackend()  # type: ignore[abstract]


class TestAvailableBackendsOrdering:
    def test_returns_sorted_list(self):
        names = available_backends()
        assert isinstance(names, list)
        assert names == sorted(names)

    def test_stable_across_calls(self):
        assert available_backends() == available_backends()

"""Unit tests for scenario specs and fleet generation."""

from __future__ import annotations

import pickle

import pytest

from repro.engine.scenarios import (
    BUILTIN_KINDS,
    FleetConfig,
    ScenarioSpec,
    generate_fleet,
    generate_scenarios,
)
from repro.errors import SchedulingError


class TestScenarioSpec:
    def test_grid_builds_matching_soc(self):
        spec = ScenarioSpec(kind="grid", rows=2, cols=3, power_seed=5)
        soc = spec.build_soc()
        assert len(soc) == 6
        assert soc.name == spec.name

    def test_slicing_builds(self):
        spec = ScenarioSpec(kind="slicing", n_blocks=7, floorplan_seed=1)
        soc = spec.build_soc()
        assert len(soc) == 7

    @pytest.mark.parametrize("kind", BUILTIN_KINDS)
    def test_builtin_kinds_build(self, kind):
        soc = ScenarioSpec(kind=kind, power_seed=2005).build_soc()
        assert len(soc) >= 6

    def test_package_heterogeneity_applied(self):
        spec = ScenarioSpec(kind="grid", convection_resistance=0.7, ambient_c=30.0)
        package = spec.build_package()
        assert package.convection_resistance == 0.7
        assert package.ambient_c == 30.0
        assert spec.build_soc().package.convection_resistance == 0.7

    def test_power_scale_scales_profile(self):
        base = ScenarioSpec(kind="grid", rows=2, cols=2, power_seed=3)
        scaled = ScenarioSpec(
            kind="grid", rows=2, cols=2, power_seed=3, power_scale=2.0
        )
        for name in base.build_soc().core_names:
            assert scaled.build_soc()[name].test_power_w == pytest.approx(
                2.0 * base.build_soc()[name].test_power_w
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchedulingError, match="kind"):
            ScenarioSpec(kind="torus")

    def test_bad_power_scale_rejected(self):
        with pytest.raises(SchedulingError, match="power_scale"):
            ScenarioSpec(power_scale=0.0)

    def test_spec_is_hashable_and_picklable(self):
        spec = ScenarioSpec(kind="slicing", n_blocks=6)
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_vertical_path_only_for_hypothetical7(self):
        assert ScenarioSpec(kind="hypothetical7").needs_vertical_path()
        assert not ScenarioSpec(kind="grid").needs_vertical_path()
        assert not ScenarioSpec(kind="alpha15").needs_vertical_path()

    def test_alpha15_uses_calibrated_stc_scale(self):
        assert ScenarioSpec(kind="alpha15").default_stc_scale() == 210.0
        assert ScenarioSpec(kind="grid").default_stc_scale() == 1.0


class TestGenerateScenarios:
    def test_deterministic(self):
        assert generate_scenarios(20, seed=7) == generate_scenarios(20, seed=7)

    def test_seed_changes_fleet(self):
        assert generate_scenarios(20, seed=1) != generate_scenarios(20, seed=2)

    def test_count_respected(self):
        assert len(generate_scenarios(37, seed=0)) == 37

    def test_builtins_lead_the_fleet(self):
        fleet = generate_scenarios(5, seed=0)
        assert fleet[0].kind == "alpha15"
        assert fleet[1].kind == "hypothetical7"
        assert fleet[2].kind == "worked_example6"

    def test_builtins_can_be_excluded(self):
        fleet = generate_scenarios(
            10, seed=0, config=FleetConfig(include_builtins=False)
        )
        assert all(s.kind in ("grid", "slicing") for s in fleet)

    def test_small_count_truncates_builtins(self):
        assert len(generate_scenarios(2, seed=0)) == 2

    def test_diversity(self):
        fleet = generate_scenarios(40, seed=0)
        kinds = {s.kind for s in fleet}
        assert "grid" in kinds and "slicing" in kinds
        assert len({s.convection_resistance for s in fleet}) > 1

    def test_bad_count_rejected(self):
        with pytest.raises(SchedulingError, match="fleet size"):
            generate_scenarios(0)

    def test_bad_config_rejected(self):
        with pytest.raises(SchedulingError, match="slicing_fraction"):
            FleetConfig(slicing_fraction=1.5)
        with pytest.raises(SchedulingError, match="tl_headroom_range"):
            FleetConfig(tl_headroom_range=(0.9, 1.2))


class TestGenerateFleet:
    def test_jobs_have_unique_ids_and_headroom_limits(self):
        jobs = generate_fleet(15, seed=0)
        assert len({j.job_id for j in jobs}) == 15
        for job in jobs:
            assert job.tl_headroom is not None and job.tl_headroom > 1.0
            assert job.stcl_headroom is not None and job.stcl_headroom > 1.0

    def test_hypothetical7_gets_vertical_path(self):
        jobs = generate_fleet(3, seed=0)
        by_kind = {j.scenario.kind: j for j in jobs}
        assert by_kind["hypothetical7"].include_vertical
        assert not by_kind["alpha15"].include_vertical

    def test_deterministic(self):
        assert generate_fleet(12, seed=4) == generate_fleet(12, seed=4)

"""Unit tests for job specs/results and their dict round-trips."""

from __future__ import annotations

import math

import pytest

from repro.core.session_model import SessionThermalModel
from repro.engine.jobs import (
    JobResult,
    JobSpec,
    job_result_from_dict,
    job_result_to_dict,
    job_spec_from_dict,
    job_spec_to_dict,
)
from repro.engine.runner import run_job
from repro.engine.scenarios import ScenarioSpec
from repro.errors import SchedulingError

GRID = ScenarioSpec(kind="grid", rows=2, cols=2, power_seed=11)


class TestJobSpecValidation:
    def test_requires_exactly_one_tl_form(self):
        with pytest.raises(SchedulingError, match="tl_c / tl_headroom"):
            JobSpec(job_id="j", scenario=GRID, stcl=10.0)
        with pytest.raises(SchedulingError, match="tl_c / tl_headroom"):
            JobSpec(
                job_id="j", scenario=GRID, tl_c=100.0, tl_headroom=1.2, stcl=10.0
            )

    def test_requires_exactly_one_stcl_form(self):
        with pytest.raises(SchedulingError, match="stcl / stcl_headroom"):
            JobSpec(job_id="j", scenario=GRID, tl_c=100.0)

    def test_tl_headroom_must_exceed_one(self):
        with pytest.raises(SchedulingError, match="tl_headroom"):
            JobSpec(job_id="j", scenario=GRID, tl_headroom=0.9, stcl=10.0)

    def test_scheduler_config_carries_knobs(self):
        spec = JobSpec(
            job_id="j",
            scenario=GRID,
            tl_c=120.0,
            stcl=10.0,
            weight_factor=1.3,
            candidate_order="power_desc",
        )
        config = spec.scheduler_config()
        assert config.weight_factor == 1.3
        assert config.candidate_order == "power_desc"

    def test_session_model_config_uses_scenario_scale(self):
        spec = JobSpec(
            job_id="j",
            scenario=ScenarioSpec(kind="alpha15", power_seed=2005),
            tl_c=160.0,
            stcl=60.0,
        )
        assert spec.session_model_config().stc_scale == 210.0
        override = JobSpec(
            job_id="j2", scenario=GRID, tl_c=160.0, stcl=60.0, stc_scale=5.0
        )
        assert override.session_model_config().stc_scale == 5.0


class TestResolveLimits:
    @pytest.fixture(scope="class")
    def model(self):
        spec = JobSpec(job_id="j", scenario=GRID, tl_c=1.0, stcl=1.0)
        return SessionThermalModel(GRID.build_soc(), spec.session_model_config())

    def test_absolute_limits_pass_through(self, model):
        spec = JobSpec(job_id="j", scenario=GRID, tl_c=123.0, stcl=45.0)
        assert spec.resolve_limits(model, {"C0_0": 90.0}) == (123.0, 45.0)

    def test_headrooms_scale_the_scenario_regime(self, model):
        spec = JobSpec(
            job_id="j", scenario=GRID, tl_headroom=1.5, stcl_headroom=2.0
        )
        ambient = model.soc.package.ambient_c
        bcmt = {"C0_0": ambient + 40.0, "C0_1": ambient + 60.0}
        tl_c, stcl = spec.resolve_limits(model, bcmt)
        assert tl_c == pytest.approx(ambient + 1.5 * 60.0)
        worst = max(
            model.session_thermal_characteristic([n])
            for n in model.soc.core_names
        )
        assert stcl == pytest.approx(2.0 * worst)

    def test_infinite_singleton_stc_reported_clearly(self):
        hypo = ScenarioSpec(kind="hypothetical7")
        spec = JobSpec(
            job_id="j", scenario=hypo, tl_headroom=1.2, stcl_headroom=1.5
        )
        model = SessionThermalModel(
            hypo.build_soc(), spec.session_model_config()
        )
        with pytest.raises(SchedulingError, match="include_vertical"):
            spec.resolve_limits(model, {"C1": 90.0})


class TestJobResultValidation:
    def test_ok_requires_result(self):
        spec = JobSpec(job_id="j", scenario=GRID, tl_c=120.0, stcl=10.0)
        with pytest.raises(SchedulingError, match="requires a result"):
            JobResult(
                spec=spec,
                status="ok",
                tl_c=120.0,
                stcl=10.0,
                result=None,
                error=None,
                elapsed_s=0.1,
            )

    def test_error_requires_message(self):
        spec = JobSpec(job_id="j", scenario=GRID, tl_c=120.0, stcl=10.0)
        with pytest.raises(SchedulingError, match="requires an error"):
            JobResult(
                spec=spec,
                status="error",
                tl_c=math.nan,
                stcl=math.nan,
                result=None,
                error=None,
                elapsed_s=0.1,
            )


class TestDictRoundTrip:
    def test_spec_round_trip(self):
        spec = JobSpec(
            job_id="rt",
            scenario=ScenarioSpec(kind="slicing", n_blocks=6, floorplan_seed=2),
            tl_headroom=1.25,
            stcl_headroom=1.8,
            candidate_order="area_asc",
        )
        assert job_spec_from_dict(job_spec_to_dict(spec)) == spec

    def test_spec_schema_version_checked(self):
        data = job_spec_to_dict(
            JobSpec(job_id="j", scenario=GRID, tl_c=1.5, stcl=1.0)
        )
        data["schema_version"] = 99
        with pytest.raises(SchedulingError, match="schema version"):
            job_spec_from_dict(data)

    def test_result_round_trip_preserves_metrics(self):
        spec = JobSpec(
            job_id="rt", scenario=GRID, tl_headroom=1.2, stcl_headroom=1.6
        )
        original = run_job(spec)
        assert original.ok
        restored = job_result_from_dict(job_result_to_dict(original))
        assert restored.spec == spec
        assert restored.status == "ok"
        assert restored.tl_c == pytest.approx(original.tl_c)
        assert restored.stcl == pytest.approx(original.stcl)
        assert restored.steady_solves == original.steady_solves
        assert restored.result is not None
        assert restored.result.length_s == original.result.length_s
        assert restored.result.steady_solves == original.result.steady_solves

    def test_error_result_round_trips_without_soc_build(self):
        spec = JobSpec(job_id="err", scenario=GRID, tl_c=46.0, stcl=1e9)
        original = run_job(spec)
        assert not original.ok
        restored = job_result_from_dict(job_result_to_dict(original))
        assert restored.status == "error"
        assert restored.error is not None
        assert "CoreThermalViolationError" in restored.error
        assert math.isnan(restored.length_s)

    def test_describe_mentions_cache_state(self):
        spec = JobSpec(
            job_id="d", scenario=GRID, tl_headroom=1.2, stcl_headroom=1.6
        )
        assert "cache miss" in run_job(spec).describe()

"""Unit tests for job specs/results and their dict round-trips."""

from __future__ import annotations

import math

import pytest

from repro.core.session_model import SessionThermalModel
from repro.engine.jobs import (
    JobResult,
    JobSpec,
    job_result_from_dict,
    job_result_to_dict,
    job_spec_from_dict,
    job_spec_to_dict,
)
from repro.engine.runner import run_job
from repro.engine.scenarios import ScenarioSpec
from repro.errors import SchedulingError

GRID = ScenarioSpec(kind="grid", rows=2, cols=2, power_seed=11)


class TestJobSpecValidation:
    def test_requires_exactly_one_tl_form(self):
        with pytest.raises(SchedulingError, match="tl_c / tl_headroom"):
            JobSpec(job_id="j", scenario=GRID, stcl=10.0)
        with pytest.raises(SchedulingError, match="tl_c / tl_headroom"):
            JobSpec(
                job_id="j", scenario=GRID, tl_c=100.0, tl_headroom=1.2, stcl=10.0
            )

    def test_requires_exactly_one_stcl_form(self):
        with pytest.raises(SchedulingError, match="stcl / stcl_headroom"):
            JobSpec(job_id="j", scenario=GRID, tl_c=100.0)

    def test_tl_headroom_must_exceed_one(self):
        with pytest.raises(SchedulingError, match="tl_headroom"):
            JobSpec(job_id="j", scenario=GRID, tl_headroom=0.9, stcl=10.0)

    def test_to_request_passes_stc_scale_override(self):
        override = JobSpec(
            job_id="j2", scenario=GRID, tl_c=160.0, stcl=60.0, stc_scale=5.0
        )
        assert override.to_request().stc_scale == 5.0
        default = JobSpec(job_id="j", scenario=GRID, tl_c=160.0, stcl=60.0)
        assert default.to_request().stc_scale is None  # scenario default applies


class TestResolveLimits:
    """Headroom resolution happens in the workbench the job dispatches to."""

    def test_absolute_limits_pass_through(self):
        record = run_job(
            JobSpec(job_id="j", scenario=GRID, tl_c=123.0, stcl=45.0)
        )
        assert (record.tl_c, record.stcl) == (123.0, 45.0)

    def test_headrooms_scale_the_scenario_regime(self):
        from repro.core.session_model import SessionModelConfig
        from repro.thermal.simulator import ThermalSimulator

        record = run_job(
            JobSpec(
                job_id="j", scenario=GRID, tl_headroom=1.5, stcl_headroom=2.0
            )
        )
        soc = GRID.build_soc()
        simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
        ambient = soc.package.ambient_c
        peak = max(
            simulator.steady_state({n: soc[n].test_power_w}).temperature_c(n)
            for n in soc.core_names
        )
        assert record.tl_c == pytest.approx(ambient + 1.5 * (peak - ambient))
        model = SessionThermalModel(soc, SessionModelConfig())
        worst = max(
            model.session_thermal_characteristic([n]) for n in soc.core_names
        )
        assert record.stcl == pytest.approx(2.0 * worst)

    def test_infinite_singleton_stc_reported_clearly(self):
        from repro.api import Workbench
        from repro.errors import RequestError
        from repro.soc.library import hypothetical7_soc

        # Scenario-described hypothetical7 jobs auto-enable the vertical
        # path; only a prebuilt non-tiling SoC can still hit this.
        with pytest.raises(RequestError, match="include_vertical"):
            Workbench().solve_soc(
                hypothetical7_soc(), tl_c=150.0, stcl_headroom=1.5
            )


class TestJobResultValidation:
    def test_ok_requires_result(self):
        spec = JobSpec(job_id="j", scenario=GRID, tl_c=120.0, stcl=10.0)
        with pytest.raises(SchedulingError, match="requires a result"):
            JobResult(
                spec=spec,
                status="ok",
                tl_c=120.0,
                stcl=10.0,
                result=None,
                error=None,
                elapsed_s=0.1,
            )

    def test_error_requires_message(self):
        spec = JobSpec(job_id="j", scenario=GRID, tl_c=120.0, stcl=10.0)
        with pytest.raises(SchedulingError, match="requires an error"):
            JobResult(
                spec=spec,
                status="error",
                tl_c=math.nan,
                stcl=math.nan,
                result=None,
                error=None,
                elapsed_s=0.1,
            )


class TestDictRoundTrip:
    def test_spec_round_trip(self):
        spec = JobSpec(
            job_id="rt",
            scenario=ScenarioSpec(kind="slicing", n_blocks=6, floorplan_seed=2),
            tl_headroom=1.25,
            stcl_headroom=1.8,
            candidate_order="area_asc",
        )
        assert job_spec_from_dict(job_spec_to_dict(spec)) == spec

    def test_spec_schema_version_checked(self):
        data = job_spec_to_dict(
            JobSpec(job_id="j", scenario=GRID, tl_c=1.5, stcl=1.0)
        )
        data["schema_version"] = 99
        with pytest.raises(SchedulingError, match="schema version"):
            job_spec_from_dict(data)

    def test_result_round_trip_preserves_metrics(self):
        spec = JobSpec(
            job_id="rt", scenario=GRID, tl_headroom=1.2, stcl_headroom=1.6
        )
        original = run_job(spec)
        assert original.ok
        restored = job_result_from_dict(job_result_to_dict(original))
        assert restored.spec == spec
        assert restored.status == "ok"
        assert restored.tl_c == pytest.approx(original.tl_c)
        assert restored.stcl == pytest.approx(original.stcl)
        assert restored.steady_solves == original.steady_solves
        assert restored.result is not None
        assert restored.result.length_s == original.result.length_s
        assert restored.result.steady_solves == original.result.steady_solves

    def test_error_result_round_trips_without_soc_build(self):
        spec = JobSpec(job_id="err", scenario=GRID, tl_c=46.0, stcl=1e9)
        original = run_job(spec)
        assert not original.ok
        restored = job_result_from_dict(job_result_to_dict(original))
        assert restored.status == "error"
        assert restored.error is not None
        assert "CoreThermalViolationError" in restored.error
        assert math.isnan(restored.length_s)

    def test_describe_mentions_cache_state(self):
        spec = JobSpec(
            job_id="d", scenario=GRID, tl_headroom=1.2, stcl_headroom=1.6
        )
        assert "cache miss" in run_job(spec).describe()


class TestSolverField:
    def test_defaults_to_thermal_aware(self):
        spec = JobSpec(job_id="j", scenario=GRID, tl_c=100.0, stcl=10.0)
        assert spec.solver == "thermal_aware"
        assert spec.solver_params == {}

    def test_solver_name_validated(self):
        with pytest.raises(SchedulingError, match="solver"):
            JobSpec(job_id="j", scenario=GRID, tl_c=100.0, stcl=10.0, solver="")

    def test_round_trips_through_dict(self):
        spec = JobSpec(
            job_id="j",
            scenario=GRID,
            tl_c=100.0,
            stcl=10.0,
            solver="power_constrained",
            solver_params={"power_limit_w": 45.0},
        )
        assert job_spec_from_dict(job_spec_to_dict(spec)) == spec

    def test_records_without_solver_key_load_with_default(self):
        """Archives written before the solver field existed still load."""
        data = job_spec_to_dict(
            JobSpec(job_id="old", scenario=GRID, tl_c=100.0, stcl=10.0)
        )
        del data["solver"]
        del data["solver_params"]
        data["schema_version"] = 1  # written by the previous release
        spec = job_spec_from_dict(data)
        assert spec.solver == "thermal_aware"
        assert spec.solver_params == {}

    def test_stcl_optional_for_non_stc_solvers(self):
        spec = JobSpec(
            job_id="seq", scenario=GRID, tl_c=150.0, solver="sequential"
        )
        record = run_job(spec)
        assert record.ok
        assert math.isnan(record.stcl)
        # The same job through the thermal-aware default still requires it.
        with pytest.raises(SchedulingError, match="stcl / stcl_headroom"):
            JobSpec(job_id="ta", scenario=GRID, tl_c=150.0)

    def test_bad_param_value_becomes_error_record(self):
        record = run_job(
            JobSpec(
                job_id="bad-value",
                scenario=GRID,
                tl_c=150.0,
                solver="power_constrained",
                solver_params={"power_limit_w": "not-a-number"},
            )
        )
        assert record.status == "error"
        assert "rejected params" in record.error

    def test_to_request_maps_knobs_for_thermal_aware(self):
        spec = JobSpec(
            job_id="j",
            scenario=GRID,
            tl_headroom=1.2,
            stcl_headroom=1.6,
            weight_factor=1.3,
            candidate_order="power_desc",
        )
        request = spec.to_request()
        assert request.solver == "thermal_aware"
        assert request.params["weight_factor"] == 1.3
        assert request.params["candidate_order"] == "power_desc"
        assert request.scenario == GRID

    def test_to_request_passes_only_solver_params_for_baselines(self):
        spec = JobSpec(
            job_id="j",
            scenario=GRID,
            tl_headroom=1.2,
            stcl_headroom=1.6,
            solver="power_constrained",
            solver_params={"power_limit_w": 45.0},
        )
        request = spec.to_request()
        assert request.params == {"power_limit_w": 45.0}


class TestJobSpecHashability:
    def test_specs_key_sets_and_dicts(self):
        a = JobSpec(job_id="j", scenario=GRID, tl_c=100.0, stcl=10.0)
        b = JobSpec(job_id="j", scenario=GRID, tl_c=100.0, stcl=10.0)
        assert len({a, b}) == 1
        c = JobSpec(
            job_id="j",
            scenario=GRID,
            tl_c=100.0,
            solver="power_constrained",
            solver_params={"power_limit_w": 45.0},
        )
        assert {c: "memo"}[c] == "memo"

"""Unit tests for the shared thermal-model cache."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.engine.cache import (
    ThermalModelCache,
    floorplan_fingerprint,
    model_key,
    package_fingerprint,
)
from repro.floorplan.generator import grid_floorplan
from repro.thermal.package import DEFAULT_PACKAGE
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture()
def plan():
    return grid_floorplan(2, 2)


class TestFingerprints:
    def test_name_does_not_affect_floorplan_fingerprint(self):
        a = grid_floorplan(2, 2, name="first")
        b = grid_floorplan(2, 2, name="second")
        assert floorplan_fingerprint(a) == floorplan_fingerprint(b)

    def test_geometry_changes_fingerprint(self):
        assert floorplan_fingerprint(grid_floorplan(2, 2)) != floorplan_fingerprint(
            grid_floorplan(2, 3)
        )
        assert floorplan_fingerprint(grid_floorplan(2, 2)) != floorplan_fingerprint(
            grid_floorplan(2, 2, die_width=20e-3)
        )

    def test_package_parameters_change_fingerprint(self):
        warm = replace(DEFAULT_PACKAGE, convection_resistance=0.9)
        assert package_fingerprint(DEFAULT_PACKAGE) != package_fingerprint(warm)
        hot = replace(DEFAULT_PACKAGE, ambient_c=60.0)
        assert package_fingerprint(DEFAULT_PACKAGE) != package_fingerprint(hot)

    def test_model_key_combines_both(self, plan):
        warm = replace(DEFAULT_PACKAGE, convection_resistance=0.9)
        assert model_key(plan, DEFAULT_PACKAGE) != model_key(plan, warm)


class TestThermalModelCache:
    def test_miss_then_hit(self, plan):
        cache = ThermalModelCache()
        _, hit_first = cache.simulator_for(plan, DEFAULT_PACKAGE)
        _, hit_second = cache.simulator_for(plan, DEFAULT_PACKAGE)
        assert (hit_first, hit_second) == (False, True)
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)
        assert len(cache) == 1

    def test_shared_model_separate_counters(self, plan):
        cache = ThermalModelCache()
        first, _ = cache.simulator_for(plan, DEFAULT_PACKAGE)
        second, _ = cache.simulator_for(plan, DEFAULT_PACKAGE)
        assert first.model is second.model
        assert first.steady_solver is second.steady_solver
        first.steady_state({"C0_0": 10.0})
        assert first.steady_solve_count == 1
        assert second.steady_solve_count == 0

    def test_shared_reduced_operator(self, plan):
        # The reduced-order influence matrix rides in the cache entry:
        # cold workers must not pay the multi-RHS extraction again.
        cache = ThermalModelCache()
        first, _ = cache.simulator_for(plan, DEFAULT_PACKAGE)
        second, _ = cache.simulator_for(plan, DEFAULT_PACKAGE)
        assert first.reduced_operator is second.reduced_operator
        fast = first.block_steady_state({"C0_0": 10.0})
        dense = second.steady_state({"C0_0": 10.0})
        assert fast.max_temperature_c() == pytest.approx(
            dense.max_temperature_c(), abs=1e-9
        )

    def test_reduced_operator_extraction_is_lazy(self, plan, monkeypatch):
        # Dense- or transient-only consumers must not pay the
        # extraction: it happens on first reduced-path use, once.
        from repro.thermal.reduced import ReducedSteadyOperator

        calls = []
        original = ReducedSteadyOperator.from_model.__func__

        def counting(cls, model, solver):
            calls.append(1)
            return original(cls, model, solver)

        monkeypatch.setattr(
            ReducedSteadyOperator, "from_model", classmethod(counting)
        )
        cache = ThermalModelCache()
        first, _ = cache.simulator_for(plan, DEFAULT_PACKAGE)
        second, _ = cache.simulator_for(plan, DEFAULT_PACKAGE)
        first.steady_state({"C0_0": 10.0})
        assert not calls
        first.block_steady_state({"C0_0": 10.0})
        second.block_steady_state({"C0_0": 10.0})
        assert len(calls) == 1

    def test_cached_simulator_matches_fresh_build(self, plan):
        cache = ThermalModelCache()
        cached, _ = cache.simulator_for(plan, DEFAULT_PACKAGE)
        fresh = ThermalSimulator(plan, DEFAULT_PACKAGE)
        power = {"C0_0": 20.0, "C1_1": 5.0}
        assert cached.steady_state(power).max_temperature_c() == pytest.approx(
            fresh.steady_state(power).max_temperature_c()
        )

    def test_distinct_pairs_get_distinct_models(self, plan):
        cache = ThermalModelCache()
        a, _ = cache.simulator_for(plan, DEFAULT_PACKAGE)
        warm = replace(DEFAULT_PACKAGE, convection_resistance=0.9)
        b, hit = cache.simulator_for(plan, warm)
        assert not hit
        assert a.model is not b.model
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = ThermalModelCache(max_entries=2)
        plans = [grid_floorplan(1, n) for n in (1, 2, 3)]
        for p in plans:
            cache.simulator_for(p, DEFAULT_PACKAGE)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest entry (1x1) was evicted; re-asking is a miss.
        _, hit = cache.simulator_for(plans[0], DEFAULT_PACKAGE)
        assert not hit

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            ThermalModelCache(max_entries=0)

    def test_reset_and_clear(self, plan):
        cache = ThermalModelCache()
        cache.simulator_for(plan, DEFAULT_PACKAGE)
        cache.reset_stats()
        assert cache.stats.lookups == 0
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_stats_describe(self, plan):
        cache = ThermalModelCache()
        cache.simulator_for(plan, DEFAULT_PACKAGE)
        cache.simulator_for(plan, DEFAULT_PACKAGE)
        text = cache.stats.describe()
        assert "1 hits" in text and "2 lookups" in text


class TestAdjacencyKeying:
    @staticmethod
    def _gapped_plan():
        """Two blocks separated by a 0.5 mm gap.

        The default geometric tolerance sees no shared edge; a coarse
        1 mm tolerance bridges the gap and reports one — two different
        interface topologies, hence two different thermal networks.
        """
        from repro.floorplan.floorplan import Block, Floorplan, Rect

        return Floorplan(
            [
                Block("left", Rect(0.0, 0.0, 4e-3, 8e-3)),
                Block("right", Rect(4.5e-3, 0.0, 4e-3, 8e-3)),
            ],
            name="gapped",
        )

    def test_custom_adjacency_does_not_false_hit(self):
        from repro.floorplan.adjacency import AdjacencyMap
        from repro.thermal.package import DEFAULT_PACKAGE

        plan = self._gapped_plan()
        default_map = AdjacencyMap(plan)
        coarse_map = AdjacencyMap(plan, tol=1e-3)
        assert len(default_map.interfaces) != len(coarse_map.interfaces)
        assert model_key(plan, DEFAULT_PACKAGE, default_map) != model_key(
            plan, DEFAULT_PACKAGE, coarse_map
        )
        cache = ThermalModelCache()
        cache.simulator_for(plan, DEFAULT_PACKAGE, default_map)
        _, hit = cache.simulator_for(plan, DEFAULT_PACKAGE, coarse_map)
        assert not hit

    def test_same_adjacency_still_hits(self):
        from repro.floorplan.adjacency import AdjacencyMap
        from repro.floorplan.generator import grid_floorplan
        from repro.thermal.package import DEFAULT_PACKAGE

        plan = grid_floorplan(2, 2)
        adjacency = AdjacencyMap(plan)
        cache = ThermalModelCache()
        _, first = cache.simulator_for(plan, DEFAULT_PACKAGE, adjacency)
        _, second = cache.simulator_for(plan, DEFAULT_PACKAGE, AdjacencyMap(plan))
        assert not first
        assert second

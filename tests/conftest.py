"""Shared fixtures for the repro test suite.

Expensive objects (SoCs, simulators, sweep grids) are session-scoped:
they are immutable once built, and the suite solves hundreds of
steady-state systems against the same factorised networks.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.core.scheduler import ThermalAwareScheduler
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.floorplan.library import alpha15, hypothetical7, worked_example6
from repro.soc.library import (
    ALPHA15_STC_SCALE,
    alpha15_soc,
    hypothetical7_soc,
    worked_example6_soc,
)
from repro.thermal.simulator import ThermalSimulator

#: Global per-test timeout (seconds).  The service suite runs real
#: asyncio servers; a deadlocked queue or an unawaited future must fail
#: fast instead of hanging the whole run (and the CI workflow with it).
#: Override with REPRO_TEST_TIMEOUT_S; 0 disables (e.g. when stepping
#: through a test under a debugger).
TEST_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "120"))


@pytest.fixture(autouse=True)
def _global_test_timeout(request):
    """Fail any test that exceeds TEST_TIMEOUT_S (SIGALRM, unix only).

    The same mechanism as pytest-timeout's signal method, inlined so
    the suite needs no extra plugin: the alarm fires in the main
    thread and surfaces as an ordinary test failure with a traceback
    pointing at the hung line.
    """
    use_alarm = (
        TEST_TIMEOUT_S > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        yield
        return

    def _timed_out(signum, frame):
        pytest.fail(
            f"test exceeded the global {TEST_TIMEOUT_S:g}s timeout "
            f"(override with REPRO_TEST_TIMEOUT_S)",
            pytrace=True,
        )

    previous = signal.signal(signal.SIGALRM, _timed_out)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def alpha15_floorplan():
    """The 15-block Alpha-class floorplan."""
    return alpha15()


@pytest.fixture(scope="session")
def hypothetical7_floorplan():
    """The Figure 1 hypothetical floorplan."""
    return hypothetical7()


@pytest.fixture(scope="session")
def worked_example_floorplan():
    """The Figures 2-4 didactic floorplan."""
    return worked_example6()


@pytest.fixture(scope="session")
def alpha_soc():
    """The calibrated alpha15 SoC."""
    return alpha15_soc()


@pytest.fixture(scope="session")
def hypo_soc():
    """The Figure 1 SoC (7 cores, 15 W each)."""
    return hypothetical7_soc()


@pytest.fixture(scope="session")
def example_soc():
    """The worked-example SoC (6 blocks, 10 W each)."""
    return worked_example6_soc()


@pytest.fixture(scope="session")
def alpha_simulator(alpha_soc):
    """Thermal simulator bound to the alpha15 SoC."""
    return ThermalSimulator(
        alpha_soc.floorplan, alpha_soc.package, alpha_soc.adjacency
    )


@pytest.fixture(scope="session")
def alpha_session_model(alpha_soc):
    """Calibrated session thermal model for alpha15."""
    return SessionThermalModel(
        alpha_soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )


@pytest.fixture(scope="session")
def alpha_scheduler(alpha_soc, alpha_simulator, alpha_session_model):
    """Paper-configured thermal-aware scheduler for alpha15."""
    return ThermalAwareScheduler(
        alpha_soc, simulator=alpha_simulator, session_model=alpha_session_model
    )

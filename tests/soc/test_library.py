"""Tests for the prebuilt SoC library, including calibration invariants."""

from __future__ import annotations

import pytest

from repro.soc.library import (
    ALPHA15_STC_SCALE,
    ALPHA15_TEST_POWERS_W,
    alpha15_power_profile,
    alpha15_soc,
    grid_soc,
    hypothetical7_soc,
    worked_example6_soc,
)


class TestAlpha15Soc:
    def test_fifteen_cores(self, alpha_soc):
        assert len(alpha_soc) == 15

    def test_powers_match_frozen_table(self, alpha_soc):
        for name, watts in ALPHA15_TEST_POWERS_W.items():
            assert alpha_soc[name].test_power_w == pytest.approx(watts)

    def test_multipliers_in_paper_range(self, alpha_soc):
        for core in alpha_soc:
            assert 1.5 <= core.test_multiplier <= 8.0

    def test_profile_is_deterministic(self):
        a = alpha15_power_profile()
        b = alpha15_power_profile()
        for name in a.core_names:
            assert a[name].functional_w == b[name].functional_w

    def test_power_scale_parameter(self):
        scaled = alpha15_soc(power_scale=2.0)
        base = alpha15_soc()
        assert scaled["L2"].test_power_w == pytest.approx(
            2.0 * base["L2"].test_power_w
        )

    def test_bad_power_scale_rejected(self):
        with pytest.raises(Exception):
            alpha15_soc(power_scale=0.0)

    def test_unit_test_times(self, alpha_soc):
        assert all(c.test_time_s == 1.0 for c in alpha_soc)


class TestCalibrationInvariants:
    """The regime constraints DESIGN.md substitution 3 commits to."""

    def test_every_core_individually_safe_at_tightest_tl(
        self, alpha_soc, alpha_simulator
    ):
        for name in alpha_soc.core_names:
            field = alpha_simulator.steady_state(
                {name: alpha_soc[name].test_power_w}
            )
            assert field.temperature_c(name) < 145.0

    def test_full_concurrency_exceeds_loosest_tl(self, alpha_soc, alpha_simulator):
        field = alpha_simulator.steady_state(alpha_soc.test_power_map())
        assert field.max_temperature_c() > 185.0

    def test_every_singleton_stc_below_tightest_stcl(
        self, alpha_soc, alpha_session_model
    ):
        for name in alpha_soc.core_names:
            stc = alpha_session_model.session_thermal_characteristic([name])
            assert stc <= 20.0

    def test_stc_scale_constant(self, alpha_session_model):
        assert alpha_session_model.config.stc_scale == ALPHA15_STC_SCALE


class TestOtherSocs:
    def test_hypothetical7_equal_powers(self, hypo_soc):
        assert len(hypo_soc) == 7
        powers = {c.test_power_w for c in hypo_soc}
        assert powers == {15.0}

    def test_worked_example_soc(self, example_soc):
        assert len(example_soc) == 6
        assert all(c.test_power_w == 10.0 for c in example_soc)

    def test_grid_soc(self):
        soc = grid_soc(2, 3, seed=5)
        assert len(soc) == 6
        for core in soc:
            assert 1.5 <= core.test_multiplier <= 8.0

    def test_grid_soc_power_scale(self):
        base = grid_soc(2, 2, seed=1)
        scaled = grid_soc(2, 2, seed=1, power_scale=3.0)
        assert scaled["C0_0"].test_power_w == pytest.approx(
            3.0 * base["C0_0"].test_power_w
        )

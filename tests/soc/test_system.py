"""Unit tests for CoreUnderTest and SocUnderTest."""

from __future__ import annotations

import pytest

from repro.errors import PowerModelError
from repro.floorplan.generator import grid_floorplan
from repro.power.profile import CorePower, PowerProfile
from repro.soc.core import CoreUnderTest
from repro.soc.system import SocUnderTest


def make_soc(test_times=(1.0, 1.0)) -> SocUnderTest:
    plan = grid_floorplan(1, 2)
    cores = [
        CoreUnderTest("C0_0", 10.0, 2.0, test_time_s=test_times[0]),
        CoreUnderTest("C0_1", 20.0, 5.0, test_time_s=test_times[1]),
    ]
    return SocUnderTest(plan, cores)


class TestCoreUnderTest:
    def test_multiplier(self):
        core = CoreUnderTest("x", 12.0, 3.0)
        assert core.test_multiplier == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(PowerModelError):
            CoreUnderTest("", 1.0, 1.0)
        with pytest.raises(PowerModelError):
            CoreUnderTest("x", 0.0, 1.0)
        with pytest.raises(PowerModelError):
            CoreUnderTest("x", 1.0, 0.0)
        with pytest.raises(PowerModelError):
            CoreUnderTest("x", 1.0, 1.0, test_time_s=0.0)


class TestSocConstruction:
    def test_happy_path(self):
        soc = make_soc()
        assert len(soc) == 2
        assert soc.core_names == ("C0_0", "C0_1")
        assert "C0_0" in soc

    def test_duplicate_core_rejected(self):
        plan = grid_floorplan(1, 1)
        cores = [
            CoreUnderTest("C0_0", 1.0, 1.0),
            CoreUnderTest("C0_0", 2.0, 1.0),
        ]
        with pytest.raises(PowerModelError, match="duplicate"):
            SocUnderTest(plan, cores)

    def test_core_without_block_rejected(self):
        plan = grid_floorplan(1, 1)
        cores = [
            CoreUnderTest("C0_0", 1.0, 1.0),
            CoreUnderTest("ghost", 1.0, 1.0),
        ]
        with pytest.raises(PowerModelError, match="ghost"):
            SocUnderTest(plan, cores)

    def test_block_without_core_rejected(self):
        plan = grid_floorplan(1, 2)
        with pytest.raises(PowerModelError, match="without core"):
            SocUnderTest(plan, [CoreUnderTest("C0_0", 1.0, 1.0)])

    def test_from_profile(self):
        plan = grid_floorplan(1, 2)
        profile = PowerProfile(
            [CorePower("C0_0", 1.0, 4.0), CorePower("C0_1", 2.0, 6.0)]
        )
        soc = SocUnderTest.from_profile(plan, profile, test_time_s=2.0)
        assert soc["C0_0"].test_power_w == 4.0
        assert soc["C0_1"].test_time_s == 2.0

    def test_unknown_core_lookup(self):
        with pytest.raises(PowerModelError):
            make_soc()["zz"]


class TestPowerMaps:
    def test_session_power_map(self):
        soc = make_soc()
        assert soc.session_power_map(["C0_1"]) == {"C0_1": 20.0}

    def test_session_power_map_rejects_duplicates(self):
        soc = make_soc()
        with pytest.raises(PowerModelError, match="repeated"):
            soc.session_power_map(["C0_0", "C0_0"])

    def test_total_power(self):
        soc = make_soc()
        assert soc.total_test_power_w() == pytest.approx(30.0)
        assert soc.total_test_power_w(["C0_0"]) == pytest.approx(10.0)

    def test_power_densities(self):
        soc = make_soc()
        densities = soc.power_densities()
        area = soc.floorplan["C0_0"].area
        assert densities["C0_0"] == pytest.approx(10.0 / area)


class TestSessionDuration:
    def test_duration_is_max_member_time(self):
        soc = make_soc(test_times=(1.0, 2.5))
        assert soc.session_duration_s(["C0_0", "C0_1"]) == pytest.approx(2.5)
        assert soc.session_duration_s(["C0_0"]) == pytest.approx(1.0)

    def test_empty_session_rejected(self):
        with pytest.raises(PowerModelError):
            make_soc().session_duration_s([])


class TestDescribe:
    def test_mentions_all_cores(self):
        text = make_soc().describe()
        assert "C0_0" in text and "C0_1" in text
        assert "W/cm^2" in text

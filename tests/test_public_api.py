"""Public API surface tests.

Every name promised by ``__all__`` must exist, and the error hierarchy
must behave as documented (single catchable base class, informative
messages).
"""

from __future__ import annotations

import pytest

import repro
import repro.api
import repro.core
import repro.engine
import repro.experiments
import repro.floorplan
import repro.power
import repro.service
import repro.soc
import repro.thermal
from repro.errors import (
    CoreThermalViolationError,
    FloorplanError,
    FloorplanFormatError,
    GeometryError,
    PowerModelError,
    ProtocolError,
    ReproError,
    RequestError,
    ScheduleInfeasibleError,
    SchedulingError,
    ServiceBusyError,
    ServiceClosedError,
    ServiceError,
    SolverError,
    ThermalModelError,
)


@pytest.mark.parametrize(
    "module",
    [repro, repro.api, repro.core, repro.engine, repro.experiments,
     repro.floorplan, repro.power, repro.service, repro.soc, repro.thermal],
)
def test_all_names_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_version():
    assert repro.__version__ == "1.0.0"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GeometryError,
            FloorplanError,
            FloorplanFormatError,
            ThermalModelError,
            SolverError,
            PowerModelError,
            RequestError,
            SchedulingError,
            CoreThermalViolationError,
            ScheduleInfeasibleError,
            ServiceError,
            ServiceBusyError,
            ServiceClosedError,
            ProtocolError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, ReproError)

    def test_format_error_is_floorplan_error(self):
        assert issubclass(FloorplanFormatError, FloorplanError)

    def test_specialised_service_errors(self):
        assert issubclass(ServiceBusyError, ServiceError)
        assert issubclass(ServiceClosedError, ServiceError)
        assert issubclass(ProtocolError, ServiceError)

    def test_specialised_scheduling_errors(self):
        assert issubclass(CoreThermalViolationError, SchedulingError)
        assert issubclass(ScheduleInfeasibleError, SchedulingError)

    def test_core_violation_carries_context(self):
        err = CoreThermalViolationError("IntReg", 151.2, 145.0)
        assert err.core_name == "IntReg"
        assert err.max_temperature_c == 151.2
        assert err.limit_c == 145.0
        assert "IntReg" in str(err)
        assert "145" in str(err)
        assert "Algorithm 1" in str(err)

    def test_single_catch_point(self):
        """A caller catching ReproError sees every library failure."""
        from repro.floorplan import parse_flp

        with pytest.raises(ReproError):
            parse_flp("garbage line")


class TestQuickstartDocExample:
    def test_readme_quickstart_runs(self):
        """The README's unified-API quickstart snippet, executed verbatim."""
        from repro import ScheduleRequest, solve

        report = solve(ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0))
        baseline = solve(
            ScheduleRequest(
                soc="alpha15", tl_c=165.0, solver="power_constrained"
            )
        )
        assert report.max_temperature_c < 165.0
        assert report.hot_spot_rate == 0.0
        assert baseline.n_sessions <= report.n_sessions

    def test_readme_migration_target_runs(self):
        """The migration table's 'new call' column, executed verbatim."""
        from repro import ScheduleRequest, Workbench

        workbench = Workbench()
        thermal = workbench.solve(
            ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0)
        )
        sequential = workbench.solve(
            ScheduleRequest(soc="alpha15", tl_c=165.0, solver="sequential")
        )
        assert sequential.length_s >= thermal.length_s
        audit_ok = thermal.hot_spot_rate == 0.0
        assert audit_ok

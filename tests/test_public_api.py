"""Public API surface tests.

Every name promised by ``__all__`` must exist, and the error hierarchy
must behave as documented (single catchable base class, informative
messages).
"""

from __future__ import annotations

import pytest

import repro
import repro.core
import repro.engine
import repro.experiments
import repro.floorplan
import repro.power
import repro.soc
import repro.thermal
from repro.errors import (
    CoreThermalViolationError,
    FloorplanError,
    FloorplanFormatError,
    GeometryError,
    PowerModelError,
    ReproError,
    ScheduleInfeasibleError,
    SchedulingError,
    SolverError,
    ThermalModelError,
)


@pytest.mark.parametrize(
    "module",
    [repro, repro.core, repro.engine, repro.experiments, repro.floorplan,
     repro.power, repro.soc, repro.thermal],
)
def test_all_names_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_version():
    assert repro.__version__ == "1.0.0"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GeometryError,
            FloorplanError,
            FloorplanFormatError,
            ThermalModelError,
            SolverError,
            PowerModelError,
            SchedulingError,
            CoreThermalViolationError,
            ScheduleInfeasibleError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, ReproError)

    def test_format_error_is_floorplan_error(self):
        assert issubclass(FloorplanFormatError, FloorplanError)

    def test_specialised_scheduling_errors(self):
        assert issubclass(CoreThermalViolationError, SchedulingError)
        assert issubclass(ScheduleInfeasibleError, SchedulingError)

    def test_core_violation_carries_context(self):
        err = CoreThermalViolationError("IntReg", 151.2, 145.0)
        assert err.core_name == "IntReg"
        assert err.max_temperature_c == 151.2
        assert err.limit_c == 145.0
        assert "IntReg" in str(err)
        assert "145" in str(err)
        assert "Algorithm 1" in str(err)

    def test_single_catch_point(self):
        """A caller catching ReproError sees every library failure."""
        from repro.floorplan import parse_flp

        with pytest.raises(ReproError):
            parse_flp("garbage line")


class TestQuickstartDocExample:
    def test_readme_quickstart_runs(self):
        """The README's quickstart snippet, executed verbatim."""
        from repro import ThermalAwareScheduler, alpha15_soc, audit_schedule
        from repro.core.session_model import (
            SessionModelConfig,
            SessionThermalModel,
        )
        from repro.soc.library import ALPHA15_STC_SCALE

        soc = alpha15_soc()
        model = SessionThermalModel(
            soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
        )
        result = ThermalAwareScheduler(soc, session_model=model).schedule(
            tl_c=155.0, stcl=60.0
        )
        assert result.max_temperature_c < 155.0
        audit = audit_schedule(result.schedule, limit_c=155.0)
        assert audit.is_safe

"""Streaming-histogram correctness: buckets, quantiles, merge.

Everything here is exact-value arithmetic on tiny hand-chosen bucket
sets — no clocks, no sleeps, no tolerance fudging beyond float
``pytest.approx``.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import DEFAULT_LATENCY_BOUNDS, Histogram, HistogramRegistry


class TestBucketing:
    def test_values_land_in_first_bucket_with_bound_gte(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 8.0):
            hist.record(value)
        # 0.5 -> <=1 bucket; 1.5 x2 -> <=2; 3.0 -> <=4; 8.0 -> overflow.
        assert hist.counts == (1, 2, 1, 1)
        assert hist.count == 5
        assert hist.sum == pytest.approx(14.5)
        assert hist.min == 0.5
        assert hist.max == 8.0

    def test_value_exactly_on_a_bound_lands_in_that_bucket(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        hist.record(2.0)
        assert hist.counts == (0, 1, 0, 0)

    def test_rejects_nan(self):
        hist = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError, match="NaN"):
            hist.record(math.nan)

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(bounds=(1.0, 1.0, 2.0))

    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram(bounds=())

    def test_default_bounds_span_10us_to_100s(self):
        assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BOUNDS[-1] == pytest.approx(100.0)
        assert len(DEFAULT_LATENCY_BOUNDS) == 29


class TestQuantiles:
    def test_empty_histogram_quantile_is_nan(self):
        hist = Histogram(bounds=(1.0,))
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.min)
        assert math.isnan(hist.max)

    def test_p50_interpolates_within_the_containing_bucket(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 8.0):
            hist.record(value)
        # target rank 2.5 of 5 falls in the (1, 2] bucket holding ranks
        # 2..3: lower 1.0 + (2.5-1)/2 * (2.0-1.0) = 1.75.
        assert hist.quantile(0.5) == pytest.approx(1.75)

    def test_overflow_bucket_interpolates_toward_observed_max(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 8.0):
            hist.record(value)
        # q=1 lands at the end of the overflow bucket whose upper edge
        # is the observed max — never an invented "last bound * k".
        assert hist.quantile(1.0) == pytest.approx(8.0)

    def test_estimates_clamp_to_observed_min_and_max(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        hist.record(0.5)
        # Interpolation inside [0, 1] would report below the smallest
        # observation; the clamp forbids that.
        assert hist.quantile(0.0) == pytest.approx(0.5)
        assert hist.quantile(1.0) == pytest.approx(0.5)

    def test_single_value_every_quantile_is_that_value(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.record(1.3)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(1.3)

    def test_quantile_outside_unit_interval_rejected(self):
        hist = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            hist.quantile(1.5)

    def test_snapshot_is_json_ready(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        empty = hist.snapshot()
        assert empty["count"] == 0
        assert empty["p50"] is None and empty["mean"] is None
        for value in (0.5, 1.5, 1.5, 3.0, 8.0):
            hist.record(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["mean"] == pytest.approx(2.9)
        assert snap["p50"] == pytest.approx(1.75)
        assert set(snap) == {
            "count", "sum", "min", "max", "mean", "p50", "p95", "p99",
        }


class TestMerge:
    def test_merge_is_equivalent_to_one_combined_stream(self):
        bounds = (0.001, 0.01, 0.1, 1.0)
        left, right, combined = (
            Histogram(bounds), Histogram(bounds), Histogram(bounds),
        )
        left_values = [0.0005, 0.005, 0.05, 0.5, 5.0]
        right_values = [0.002, 0.02, 0.2, 2.0]
        for value in left_values:
            left.record(value)
            combined.record(value)
        for value in right_values:
            right.record(value)
            combined.record(value)
        left.merge(right)
        assert left.counts == combined.counts
        assert left.count == combined.count
        assert left.sum == pytest.approx(combined.sum)
        assert left.min == combined.min and left.max == combined.max
        for q in (0.5, 0.95, 0.99):
            assert left.quantile(q) == pytest.approx(combined.quantile(q))

    def test_merge_with_empty_histogram_changes_nothing(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.record(1.5)
        hist.merge(Histogram(bounds=(1.0, 2.0)))
        assert hist.count == 1
        assert hist.min == 1.5 and hist.max == 1.5

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError, match="different bucket bounds"):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))


class TestRegistry:
    def test_observe_creates_on_first_use_and_snapshots(self):
        registry = HistogramRegistry(bounds=(1.0, 2.0))
        registry.observe("solve", 1.5)
        registry.observe("solve", 0.5)
        registry.observe("e2e", 1.8)
        assert registry.names() == ("solve", "e2e")
        snap = registry.snapshot()
        assert snap["solve"]["count"] == 2
        assert snap["e2e"]["count"] == 1

    def test_registry_merge_folds_per_name(self):
        a = HistogramRegistry(bounds=(1.0, 2.0))
        b = HistogramRegistry(bounds=(1.0, 2.0))
        a.observe("solve", 0.5)
        b.observe("solve", 1.5)
        b.observe("queue_wait", 0.1)
        a.merge(b)
        snap = a.snapshot()
        assert snap["solve"]["count"] == 2
        assert snap["queue_wait"]["count"] == 1

"""Prometheus text-exposition rendering tests."""

from __future__ import annotations

import math

from repro.obs import (
    counter_family,
    gauge_family,
    info_family,
    render_families,
    summary_family,
)


class TestFamilies:
    def test_counter_appends_total_once(self):
        assert counter_family("repro_submitted", "h", 3).name == (
            "repro_submitted_total"
        )
        assert counter_family("repro_submitted_total", "h", 3).name == (
            "repro_submitted_total"
        )

    def test_render_counter_and_gauge(self):
        text = render_families(
            [
                counter_family("repro_submitted", "Requests submitted.", 7),
                gauge_family("repro_queue_depth", "Jobs queued.", 3),
            ]
        )
        assert text == (
            "# HELP repro_submitted_total Requests submitted.\n"
            "# TYPE repro_submitted_total counter\n"
            "repro_submitted_total 7\n"
            "# HELP repro_queue_depth Jobs queued.\n"
            "# TYPE repro_queue_depth gauge\n"
            "repro_queue_depth 3\n"
        )

    def test_info_family_constant_one_with_labels(self):
        text = render_families(
            [info_family("repro_service", "Config.", {"backend": "thread"})]
        )
        assert 'repro_service{backend="thread"} 1\n' in text

    def test_summary_from_snapshot(self):
        snapshot = {"count": 4, "sum": 2.0, "p50": 0.5, "p95": 0.9, "p99": 1.5}
        text = render_families(
            [summary_family("repro_solve_seconds", "Solve latency.", snapshot)]
        )
        assert "# TYPE repro_solve_seconds summary" in text
        assert 'repro_solve_seconds{quantile="0.5"} 0.5' in text
        assert 'repro_solve_seconds{quantile="0.99"} 1.5' in text
        assert "repro_solve_seconds_sum 2" in text
        assert "repro_solve_seconds_count 4" in text

    def test_empty_summary_renders_nan_quantiles(self):
        snapshot = {"count": 0, "sum": 0.0, "p50": None, "p95": None, "p99": None}
        text = render_families(
            [summary_family("repro_e2e_seconds", "h", snapshot)]
        )
        assert 'repro_e2e_seconds{quantile="0.5"} NaN' in text
        assert "repro_e2e_seconds_count 0" in text

    def test_value_and_label_escaping(self):
        text = render_families(
            [
                gauge_family("repro_inf", "h", math.inf),
                info_family("repro_i", 'he"lp', {"k": 'va"l\\ue'}),
            ]
        )
        assert "repro_inf +Inf" in text
        assert 'k="va\\"l\\\\ue"' in text

"""Regression tests for races the lock-discipline pass surfaced.

``repro check`` flagged three real gaps: ``HistogramRegistry.merge``
iterated the source registry's histograms without its lock (torn
counts under concurrent ``observe``), ``ReportArchive.count`` read its
counter unlocked, and ``JsonLogger.close`` could close the stream
between another thread's write and flush.  These tests pin the fixed
behaviour.
"""

from __future__ import annotations

import threading

from repro.obs.histogram import Histogram, HistogramRegistry
from repro.obs.log import JsonLogger, open_json_log


class TestHistogramCopy:
    def test_copy_is_independent_and_equal(self):
        hist = Histogram(bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.record(value)
        clone = hist.copy()
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.sum == hist.sum
        assert clone.min == hist.min and clone.max == hist.max
        clone.record(0.5)
        assert clone.count == hist.count + 1
        assert hist.count == 4  # the original never moved

    def test_empty_copy(self):
        clone = Histogram(bounds=(1.0,)).copy()
        assert clone.count == 0
        assert clone.counts == (0, 0)


class TestMergeUnderConcurrency:
    def test_merge_races_neither_source_nor_destination(self):
        source = HistogramRegistry(bounds=(0.001, 0.01, 0.1, 1.0))
        target = HistogramRegistry(bounds=(0.001, 0.01, 0.1, 1.0))
        observations_per_thread = 2000
        stop = threading.Event()

        def observe_into(registry):
            for i in range(observations_per_thread):
                registry.observe("latency", 0.005)

        def merge_repeatedly():
            while not stop.is_set():
                target.merge(source)

        feeder = threading.Thread(target=observe_into, args=(source,))
        own = threading.Thread(target=observe_into, args=(target,))
        merger = threading.Thread(target=merge_repeatedly)
        for t in (feeder, own, merger):
            t.start()
        feeder.join()
        own.join()
        stop.set()
        merger.join()

        # One final quiescent merge; the source is fully folded in.
        target.merge(source)
        snapshot = target.snapshot()["latency"]
        # Every observation the target saw directly must be there, and a
        # torn merge would have lost or double-counted increments
        # relative to the per-bucket sum invariant.
        assert snapshot["count"] >= 2 * observations_per_thread
        hist = target.histogram("latency")
        assert sum(hist.counts) == hist.count

    def test_cross_merge_does_not_deadlock(self):
        a = HistogramRegistry(bounds=(1.0,))
        b = HistogramRegistry(bounds=(1.0,))
        a.observe("x", 0.5)
        b.observe("x", 0.5)

        def ab():
            for _ in range(200):
                a.merge(b)

        def ba():
            for _ in range(200):
                b.merge(a)

        t1, t2 = threading.Thread(target=ab), threading.Thread(target=ba)
        t1.start()
        t2.start()
        t1.join(timeout=30)
        t2.join(timeout=30)
        assert not t1.is_alive() and not t2.is_alive()

    def test_merge_still_rejects_mismatched_bounds(self):
        a = HistogramRegistry(bounds=(1.0,))
        b = HistogramRegistry(bounds=(2.0,))
        a.observe("x", 0.5)
        b.observe("x", 0.5)
        try:
            a.merge(b)
        except ValueError as exc:
            assert "bounds" in str(exc)
        else:  # pragma: no cover - the regression would land here
            raise AssertionError("mismatched-bounds merge was accepted")


class TestLoggerCloseUnderLock:
    def test_close_while_writers_race_never_raises(self, tmp_path):
        logger = open_json_log(tmp_path / "events.jsonl")
        start = threading.Barrier(3)

        def write_events():
            start.wait()
            for i in range(500):
                logger.log("tick", i=i)

        def close_logger():
            start.wait()
            logger.close()

        writers = [threading.Thread(target=write_events) for _ in range(2)]
        closer = threading.Thread(target=close_logger)
        for t in (*writers, closer):
            t.start()
        for t in (*writers, closer):
            t.join()
        # Every line that made it to disk is complete JSON.
        for line in (tmp_path / "events.jsonl").read_text().splitlines():
            assert line.startswith('{"ts":') and line.endswith("}")

    def test_close_does_not_touch_borrowed_streams(self, tmp_path):
        handle = (tmp_path / "borrowed.jsonl").open("a")
        try:
            logger = JsonLogger(handle)
            logger.log("tick")
            logger.close()
            assert not handle.closed  # the caller owns it
        finally:
            handle.close()

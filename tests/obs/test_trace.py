"""RequestTrace tests — fake clocks only, no sleeps anywhere."""

from __future__ import annotations

import pytest

from repro.obs import RequestTrace, trace_request


class FakeClock:
    """A monotonic clock advanced explicitly by the test."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRequestTrace:
    def test_phase_charges_exact_clock_delta(self):
        clock = FakeClock()
        trace = RequestTrace(clock)
        with trace.phase("model_build"):
            clock.advance(0.25)
        assert trace.timings == {"model_build": pytest.approx(0.25)}

    def test_reentered_phase_accumulates(self):
        clock = FakeClock()
        trace = RequestTrace(clock)
        with trace.phase("limit_resolve"):
            clock.advance(0.1)
        with trace.phase("limit_resolve"):
            clock.advance(0.3)
        assert trace.timings["limit_resolve"] == pytest.approx(0.4)

    def test_phase_charged_even_when_body_raises(self):
        clock = FakeClock()
        trace = RequestTrace(clock)
        with pytest.raises(RuntimeError):
            with trace.phase("solver"):
                clock.advance(0.5)
                raise RuntimeError("infeasible")
        assert trace.timings["solver"] == pytest.approx(0.5)

    def test_elapsed_tracks_from_construction(self):
        clock = FakeClock()
        trace = RequestTrace(clock)
        clock.advance(1.5)
        assert trace.elapsed_s() == pytest.approx(1.5)

    def test_timings_property_returns_a_copy(self):
        trace = RequestTrace(FakeClock())
        trace.record("solver", 1.0)
        trace.timings["solver"] = 99.0
        assert trace.timings["solver"] == 1.0


class TestTraceRequest:
    def test_total_stamped_on_normal_exit(self):
        clock = FakeClock()
        with trace_request(clock) as trace:
            with trace.phase("solver"):
                clock.advance(0.2)
            clock.advance(0.05)  # untraced glue
        assert trace.timings["solver"] == pytest.approx(0.2)
        assert trace.timings["total"] == pytest.approx(0.25)

    def test_phases_sum_to_at_most_total(self):
        clock = FakeClock()
        with trace_request(clock) as trace:
            with trace.phase("a"):
                clock.advance(0.1)
            with trace.phase("b"):
                clock.advance(0.2)
            clock.advance(0.3)
        total = trace.timings["total"]
        phase_sum = sum(
            v for k, v in trace.timings.items() if k != "total"
        )
        assert phase_sum <= total
        assert total == pytest.approx(0.6)

"""render_top tests — a pure function over a known stats dict."""

from __future__ import annotations

from repro.obs import format_duration, render_top

FULL_STATS = {
    "backend": "thread",
    "workers": 4,
    "min_workers": 2,
    "current_workers": 3,
    "scale_ups": 5,
    "scale_downs": 4,
    "queue_capacity": 128,
    "queue_depth": 32,
    "in_flight": 3,
    "submitted": 100,
    "answer_hits": 25,
    "deduped": 10,
    "completed": 60,
    "errors": 2,
    "timeouts": 1,
    "rejected": 3,
    "shed": 0,
    "solves_started": 65,
    "solves_completed": 62,
    "cache_hits": 40,
    "uptime_s": 330.0,
    "requests_per_s": 0.3,
    "cache": {"hits": 40, "misses": 25, "entries": 12, "evictions": 0},
    "answer_cache": {
        "hits": 25,
        "misses": 75,
        "entries": 50,
        "evictions": 5,
        "expirations": 2,
        "warmed": 10,
    },
    "latency": {
        "queue_wait": {"count": 65, "p50": 0.004, "p95": 0.02, "p99": 0.09},
        "solve": {"count": 62, "p50": 0.11, "p95": 0.5, "p99": 1.2},
        "e2e": {"count": 90, "p50": 0.12, "p95": 0.6, "p99": 1.5},
        "answer_hit": {"count": 25, "p50": 0.0001, "p95": 0.0002, "p99": 0.0002},
        "archive_append": {"count": 0},
    },
}


class TestRenderTop:
    def test_full_dashboard(self):
        screen = render_top(FULL_STATS)
        assert "backend 'thread'" in screen
        assert "up 5.5 min" in screen
        assert "32/128" in screen and "in-flight 3" in screen
        assert "3/4 (floor 2, +5/-4 scaling)" in screen
        assert "100 submitted: 25 answer hits (25%)" in screen
        assert "10 deduped (10%)" in screen
        assert "65 started / 62 done, 40 model-cache hits (62%)" in screen
        assert "answers 50 cached, 25 hits / 75 misses" in screen
        assert "models  12 cached, 40 hits / 25 misses" in screen

    def test_latency_table_formats_and_skips_empty_rows(self):
        screen = render_top(FULL_STATS)
        assert "queue wait" in screen and "4.00ms" in screen
        assert "solve" in screen and "110ms" in screen  # >=100ms: no decimals
        assert "1.50s" in screen  # >=1s: seconds
        assert "answer hit" in screen and "0.10ms" in screen
        # Zero-sample families render no row at all.
        assert "archive append" not in screen

    def test_minimal_stats_renders_without_latency_or_caches(self):
        screen = render_top({"backend": "serial", "uptime_s": 3.0})
        assert "backend 'serial'" in screen
        assert "latency" not in screen
        assert "answers" not in screen

    def test_zero_capacity_bar_is_empty_not_a_crash(self):
        screen = render_top({"queue_depth": 0, "queue_capacity": 0})
        assert "[" + "-" * 24 + "] 0/0" in screen


class TestFormatDuration:
    def test_bands(self):
        assert format_duration(42.0) == "42 s"
        assert format_duration(330.0) == "5.5 min"
        assert format_duration(7560.0) == "2.1 h"

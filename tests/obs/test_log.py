"""JsonLogger tests: parseable lines, injected clock, error policy."""

from __future__ import annotations

import io
import json

from repro.obs import JsonLogger, open_json_log


class TestJsonLogger:
    def test_one_parseable_object_per_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, clock=lambda: 1000.0)
        logger.log("request_admitted", request_hash="abc", queue_depth=3)
        logger.log("request_completed", status="ok")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "ts": 1000.0,
            "event": "request_admitted",
            "request_hash": "abc",
            "queue_depth": 3,
        }
        assert json.loads(lines[1])["event"] == "request_completed"

    def test_timestamp_rounded_to_microseconds(self):
        stream = io.StringIO()
        JsonLogger(stream, clock=lambda: 1234.123456789).log("e")
        assert json.loads(stream.getvalue())["ts"] == 1234.123457

    def test_unencodable_values_fall_back_to_repr(self):
        stream = io.StringIO()
        JsonLogger(stream, clock=lambda: 0.0).log("e", payload={1, 2})
        record = json.loads(stream.getvalue())
        assert "1" in record["payload"]  # repr of the set, not a crash

    def test_closed_stream_swallowed(self):
        stream = io.StringIO()
        logger = JsonLogger(stream, clock=lambda: 0.0)
        stream.close()
        logger.log("e")  # must not raise

    def test_close_only_closes_owned_streams(self):
        stream = io.StringIO()
        JsonLogger(stream).close()
        assert not stream.closed


class TestOpenJsonLog:
    def test_path_appends_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = open_json_log(path)
        logger.log("first")
        logger.close()
        logger = open_json_log(path)  # append, not truncate
        logger.log("second")
        logger.close()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [e["event"] for e in events] == ["first", "second"]

    def test_dash_means_stderr(self, capsys):
        logger = open_json_log("-")
        logger.log("to_stderr")
        logger.close()
        assert "to_stderr" in capsys.readouterr().err

"""Unit tests for unit helpers and the resistance algebra."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.units import (
    DEFAULT_AMBIENT_C,
    celsius_to_kelvin,
    kelvin_to_celsius,
    mm,
    mm2,
    parallel,
    series,
    to_mm,
)


class TestTemperatureConversion:
    def test_round_trip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(45.0)) == pytest.approx(45.0)

    def test_absolute_zero(self):
        assert celsius_to_kelvin(-273.15) == pytest.approx(0.0)

    def test_default_ambient(self):
        assert DEFAULT_AMBIENT_C == 45.0


class TestLengthHelpers:
    def test_mm(self):
        assert mm(16.0) == pytest.approx(0.016)

    def test_mm2(self):
        assert mm2(1.0) == pytest.approx(1e-6)

    def test_to_mm_round_trip(self):
        assert to_mm(mm(3.5)) == pytest.approx(3.5)


class TestParallel:
    def test_two_equal(self):
        assert parallel(2.0, 2.0) == pytest.approx(1.0)

    def test_classic_pair(self):
        assert parallel(3.0, 6.0) == pytest.approx(2.0)

    def test_single_value(self):
        assert parallel(5.0) == pytest.approx(5.0)

    def test_infinite_drops_out(self):
        assert parallel(4.0, math.inf) == pytest.approx(4.0)

    def test_all_infinite(self):
        assert parallel(math.inf, math.inf) == math.inf

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parallel()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            parallel(1.0, 0.0)
        with pytest.raises(ValueError):
            parallel(-2.0)


class TestSeries:
    def test_sum(self):
        assert series(1.0, 2.0, 3.5) == pytest.approx(6.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series()

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            series(1.0, -1.0)


@settings(max_examples=50, deadline=None)
@given(
    rs=st.lists(
        st.floats(min_value=1e-3, max_value=1e3), min_size=1, max_size=8
    )
)
def test_property_parallel_below_min(rs):
    """The parallel combination never exceeds the smallest branch."""
    combined = parallel(*rs)
    assert combined <= min(rs) + 1e-12
    assert combined > 0.0


@settings(max_examples=50, deadline=None)
@given(
    rs=st.lists(
        st.floats(min_value=1e-3, max_value=1e3), min_size=2, max_size=8
    )
)
def test_property_adding_branches_reduces_resistance(rs):
    """Each extra escape path can only help — the physical fact behind
    the paper's 'maximise lateral heat paths' heuristic."""
    assert parallel(*rs) <= parallel(*rs[:-1]) + 1e-12

"""Integration tests for the model-accuracy, heterogeneous-test-time
and optimality studies."""

from __future__ import annotations

import pytest

from repro.experiments.heterogeneous import (
    TEST_TIME_RANGE_S,
    heterogeneous_alpha15,
    report_heterogeneous_study,
    run_heterogeneous_study,
    wasted_tester_time_s,
)
from repro.experiments.model_accuracy import (
    report_model_accuracy,
    run_model_accuracy,
)
from repro.experiments.optimality import (
    report_optimality_study,
    run_optimality_study,
)


class TestModelAccuracy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_model_accuracy(n_samples=120, seed=7)

    def test_paper_model_ranks_well(self, rows):
        """The central quantitative claim: STC is a faithful risk
        ranking.  Spearman rho must be strongly positive."""
        paper = next(r for r in rows if r.variant.startswith("paper"))
        assert paper.spearman_rho > 0.7
        assert paper.screening_accuracy > 0.8

    def test_dropping_m2_degrades_ranking(self, rows):
        paper = next(r for r in rows if r.variant.startswith("paper"))
        no_m2 = next(r for r in rows if "no M2" in r.variant)
        assert no_m2.spearman_rho < paper.spearman_rho

    def test_dropping_m3_starves_the_model(self, rows):
        """Without grounded passives, most sessions have no finite STC
        — the model stops being usable as a screen."""
        no_m3 = next(r for r in rows if "no M3" in r.variant)
        assert no_m3.finite_fraction < 0.5

    def test_report_renders(self, rows):
        text = report_model_accuracy(rows)
        assert "Spearman" in text


class TestHeterogeneous:
    @pytest.fixture(scope="class")
    def points(self):
        return run_heterogeneous_study(stcl_values=(20.0, 60.0, 100.0))

    def test_soc_has_varied_test_times(self):
        soc = heterogeneous_alpha15()
        times = {c.test_time_s for c in soc}
        assert len(times) == len(soc)  # all distinct (continuous draw)
        low, high = TEST_TIME_RANGE_S
        assert all(low <= t <= high for t in times)

    def test_length_not_equal_session_count(self, points):
        """With heterogeneous times, seconds decouple from sessions."""
        assert any(p.length_s != p.n_sessions for p in points)

    def test_wasted_time_nonnegative(self, points):
        for p in points:
            assert p.wasted_s >= 0.0

    def test_wasted_time_zero_for_singletons(self):
        from repro.core.baselines import sequential_schedule

        soc = heterogeneous_alpha15()
        assert wasted_tester_time_s(sequential_schedule(soc)) == pytest.approx(0.0)

    def test_both_orders_swept(self, points):
        orders = {p.candidate_order for p in points}
        assert orders == {"input", "power_desc"}

    def test_report_renders(self, points):
        text = report_heterogeneous_study(points)
        assert "wasted" in text


class TestOptimality:
    @pytest.fixture(scope="class")
    def cases(self):
        return run_optimality_study(cases=((6, 1), (7, 3), (8, 5)))

    def test_cases_complete(self, cases):
        assert len(cases) == 3

    def test_heuristic_never_beats_optimal(self, cases):
        for case in cases:
            assert case.heuristic_sessions >= case.optimal_sessions
            assert case.gap >= 0

    def test_mostly_optimal(self, cases):
        """Algorithm 1 should match the optimum on most small cases."""
        exact = sum(1 for c in cases if c.gap == 0)
        assert exact >= len(cases) - 1

    def test_report_renders(self, cases):
        text = report_optimality_study(cases)
        assert "optimal" in text

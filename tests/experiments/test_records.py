"""Unit tests for experiment result records and the sweep grid."""

from __future__ import annotations

import pytest

from repro.experiments.records import Fig1Result, SweepPoint, WorkedExampleRow
from repro.experiments.sweep import SweepGrid


def make_point(tl=145.0, stcl=20.0, length=6.0, effort=15.0, discarded=3):
    return SweepPoint(
        tl_c=tl,
        stcl=stcl,
        length_s=length,
        effort_s=effort,
        max_temperature_c=140.0,
        n_sessions=int(length),
        n_discarded=discarded,
        forced_singletons=0,
    )


class TestSweepPoint:
    def test_first_attempt_safe(self):
        assert make_point(discarded=0).first_attempt_safe
        assert not make_point(discarded=2).first_attempt_safe

    def test_as_dict_keys(self):
        data = make_point().as_dict()
        assert data["tl_c"] == 145.0
        assert data["effort_s"] == 15.0
        assert "forced_singletons" in data


class TestSweepGrid:
    def test_rows_sorted_by_stcl(self):
        grid = SweepGrid(
            points=(
                make_point(stcl=60.0),
                make_point(stcl=20.0),
                make_point(stcl=40.0),
            )
        )
        row = grid.row(145.0)
        assert [p.stcl for p in row] == [20.0, 40.0, 60.0]

    def test_value_lists(self):
        grid = SweepGrid(
            points=(make_point(tl=145.0), make_point(tl=155.0))
        )
        assert grid.tl_values == (145.0, 155.0)
        assert grid.stcl_values == (20.0,)


class TestFig1Result:
    def test_discrepancy(self):
        result = Fig1Result(
            power_limit_w=45.0,
            session_hot=("C2", "C3", "C4"),
            session_cool=("C5", "C6", "C7"),
            hot_power_w=45.0,
            cool_power_w=45.0,
            hot_accepted=True,
            cool_accepted=True,
            hot_max_c=112.1,
            cool_max_c=80.1,
        )
        assert result.discrepancy_c == pytest.approx(32.0)
        data = result.as_dict()
        assert data["session_cool"] == "C5+C6+C7"
        assert data["discrepancy_c"] == pytest.approx(32.0)


class TestWorkedExampleRow:
    def test_as_dict_joins_neighbours(self):
        row = WorkedExampleRow(
            core="B4",
            active_neighbours=("B5",),
            passive_neighbours=("B1", "B6"),
            equivalent_resistance=7.0,
            thermal_characteristic=70.0,
            stc_contribution=700.0,
        )
        data = row.as_dict()
        assert data["active_neighbours"] == "B5"
        assert data["passive_neighbours"] == "B1+B6"

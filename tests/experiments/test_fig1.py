"""Integration tests for the Figure 1 experiment."""

from __future__ import annotations

import pytest

from repro.experiments.fig1 import report_fig1, run_fig1


@pytest.fixture(scope="module")
def result():
    return run_fig1()


class TestFig1Shape:
    """The paper's claims, as assertions on the regenerated experiment."""

    def test_both_sessions_power_safe(self, result):
        assert result.hot_accepted
        assert result.cool_accepted
        assert result.hot_power_w == pytest.approx(45.0)
        assert result.cool_power_w == pytest.approx(45.0)

    def test_hot_session_much_hotter(self, result):
        """Paper: 125.5 vs 67.5 degC.  Shape target: a large gap, with
        the dense cluster on the hot side."""
        assert result.hot_max_c > result.cool_max_c + 20.0

    def test_discrepancy_metric(self, result):
        assert result.discrepancy_c == pytest.approx(
            result.hot_max_c - result.cool_max_c
        )

    def test_rise_ratio_tracks_density_ratio(self, result):
        """Power density differs 4x; the temperature rises over ambient
        should differ substantially (paper's ratio was about 3.6x)."""
        ambient = 45.0
        ratio = (result.hot_max_c - ambient) / (result.cool_max_c - ambient)
        assert ratio > 1.5

    def test_report_renders(self, result):
        text = report_fig1(result)
        assert "TS1" in text and "TS2" in text
        assert "45" in text

    def test_as_dict_round_trip(self, result):
        data = result.as_dict()
        assert data["session_hot"] == "C2+C3+C4"
        assert data["discrepancy_c"] == pytest.approx(result.discrepancy_c)

"""Paper-shape integration tests over the Figure 5 / Table 1 sweep.

These tests regenerate the full 81-point (TL, STCL) grid on the
calibrated alpha15 SoC and assert the qualitative findings of the
paper's evaluation section (DESIGN.md shape targets).  Absolute numbers
legitimately differ from the paper (different RC constants and power
values); the *shape* must not.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import report_fig5, run_fig5
from repro.experiments.sweep import (
    PAPER_STCL_VALUES,
    PAPER_TL_VALUES_C,
    run_sweep,
)
from repro.experiments.table1 import PAPER_TABLE1, report_table1


@pytest.fixture(scope="module")
def grid():
    """The full Table 1 grid (81 scheduling runs, shared by the tests)."""
    return run_sweep()


class TestGridStructure:
    def test_all_81_points_present(self, grid):
        assert len(grid.points) == 81
        assert grid.tl_values == PAPER_TL_VALUES_C
        assert grid.stcl_values == PAPER_STCL_VALUES

    def test_lookup(self, grid):
        point = grid.at(165.0, 60.0)
        assert point.tl_c == 165.0 and point.stcl == 60.0
        with pytest.raises(KeyError):
            grid.at(166.0, 60.0)
        with pytest.raises(KeyError):
            grid.row(111.0)

    def test_deterministic(self):
        a = run_sweep(tl_values_c=(165.0,), stcl_values=(40.0,))
        b = run_sweep(tl_values_c=(165.0,), stcl_values=(40.0,))
        assert a.points == b.points


class TestThermalSafety:
    def test_every_schedule_is_below_its_tl(self, grid):
        """The defining property: all 81 generated schedules are
        thermally safe."""
        for point in grid.points:
            assert point.max_temperature_c < point.tl_c

    def test_effort_at_least_length(self, grid):
        for point in grid.points:
            assert point.effort_s >= point.length_s - 1e-9

    def test_effort_equals_length_iff_no_discards(self, grid):
        for point in grid.points:
            if point.n_discarded == 0:
                assert point.effort_s == pytest.approx(point.length_s)
            else:
                assert point.effort_s > point.length_s


class TestPaperShapeTargets:
    def test_tight_stcl_first_attempt_safe_at_high_tl(self, grid):
        """Paper: 'for very tight constraints the simulation effort
        equals the length of the generated test schedule'."""
        for tl in (165.0, 175.0, 185.0):
            point = grid.at(tl, 20.0)
            assert point.n_discarded == 0
            assert point.effort_s == pytest.approx(point.length_s)

    def test_higher_tl_never_lengthens_schedule(self, grid):
        """Paper: 'as TL is increased, the test schedules get shorter'."""
        for stcl in grid.stcl_values:
            tightest = grid.at(145.0, stcl).length_s
            loosest = grid.at(185.0, stcl).length_s
            assert loosest <= tightest

    def test_relaxing_stcl_shortens_schedules_on_average(self, grid):
        """Paper: 'relaxed (large) STCL values lead to short test
        schedules'.  Asserted on the TL-averaged series (individual
        rows show the same greedy noise the paper's own Table 1 has)."""
        def average_length(stcl: float) -> float:
            lengths = [grid.at(tl, stcl).length_s for tl in grid.tl_values]
            return sum(lengths) / len(lengths)

        assert average_length(100.0) < average_length(20.0)
        assert average_length(60.0) <= average_length(20.0)

    def test_relaxed_stcl_costs_more_effort_at_tight_tl(self, grid):
        """Paper: '...at the expense of a significant simulation
        effort', most visible at the tightest temperature limit."""
        row = grid.row(145.0)
        tight = row[0]  # STCL=20
        loose = row[-1]  # STCL=100
        assert loose.effort_s > tight.effort_s

    def test_effort_grows_along_stcl_at_tight_tl(self, grid):
        """Efforts trend upward with STCL at TL=145 (allowing greedy
        noise: compare thirds of the row)."""
        row = grid.row(145.0)
        first_third = sum(p.effort_s for p in row[:3])
        last_third = sum(p.effort_s for p in row[-3:])
        assert last_third > first_third

    def test_length_reduction_within_a_row(self, grid):
        """Paper: 'reductions up to 3.5X in test schedule length can be
        obtained' at fixed TL.  Our calibration reaches at least 2x
        (documented difference: adjacency-bound tight-end lengths)."""
        best_ratio = 0.0
        for tl in grid.tl_values:
            row = grid.row(tl)
            lengths = [p.length_s for p in row]
            best_ratio = max(best_ratio, max(lengths) / min(lengths))
        assert best_ratio >= 2.0

    def test_max_temperature_approaches_tl_for_loose_constraints(self, grid):
        """Paper: 'the maximum temperature approaches TL especially for
        very short test schedules'."""
        row = grid.row(185.0)
        closest = min(185.0 - p.max_temperature_c for p in row)
        assert closest < 2.0

    def test_tight_stcl_leaves_large_margin_at_high_tl(self, grid):
        """Paper: 'for high TL and low STCL, the simulated maximum
        temperature can be up to 35 degC below TL' — the STCL
        constraint dominating TL."""
        point = grid.at(185.0, 20.0)
        assert 185.0 - point.max_temperature_c > 20.0

    def test_schedule_lengths_span_paper_range(self, grid):
        """Across the grid, lengths span from near-half-sequential to
        2 sessions, like the paper's 7..2."""
        lengths = {p.length_s for p in grid.points}
        assert min(lengths) <= 2.0
        assert max(lengths) >= 5.0


class TestFig5Consistency:
    def test_fig5_is_a_subset_of_table1(self, grid):
        fig5 = run_fig5(stcl_values=(20.0, 60.0, 100.0))
        for point in fig5.points:
            table_point = grid.at(point.tl_c, point.stcl)
            assert point.length_s == table_point.length_s
            assert point.effort_s == table_point.effort_s

    def test_fig5_report_renders(self):
        fig5 = run_fig5(
            tl_values_c=(165.0,), stcl_values=(20.0, 60.0, 100.0)
        )
        text = report_fig5(fig5)
        assert "Figure 5" in text
        assert "STCL" in text
        assert "length TL=165" in text


class TestTable1Report:
    def test_report_includes_paper_columns(self, grid):
        text = report_table1(grid)
        assert "paper len" in text
        # The paper's (145, 20) row reports length 7, effort 8.
        assert PAPER_TABLE1[(145, 20)] == (7, 8, 144.29)
        assert "144.29" in text

    def test_paper_reference_complete(self):
        assert len(PAPER_TABLE1) == 81

"""Unit tests for the reporting helpers."""

from __future__ import annotations

import csv

import pytest

from repro.experiments.reporting import ascii_series_plot, format_table, write_csv


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [("a", 1.0), ("long-name", 123.456)],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "123.46" in text  # floats at 2 decimals
        assert "long-name" in text

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [("only-one",)])

    def test_non_float_cells_stringified(self):
        text = format_table(["k", "v"], [("x", 7), ("y", "str")])
        assert " 7" in text and "str" in text


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out" / "rows.csv"
        write_csv(path, [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "rows.csv", [])


class TestAsciiPlot:
    def test_renders_markers_and_legend(self):
        text = ascii_series_plot(
            {"up": {0.0: 0.0, 1.0: 1.0}, "down": {0.0: 1.0, 1.0: 0.0}},
            width=20,
            height=5,
        )
        assert "o = up" in text
        assert "x = down" in text
        assert "o" in text.splitlines()[1] or "o" in text

    def test_constant_series_ok(self):
        text = ascii_series_plot({"flat": {0.0: 5.0, 1.0: 5.0}}, width=10, height=3)
        assert "flat" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series_plot({})

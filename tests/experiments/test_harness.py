"""Integration tests for the experiment harness CLI and calibration."""

from __future__ import annotations

import pytest

from repro.experiments.calibration import (
    CalibrationReport,
    report_calibration,
    run_calibration,
)
from repro.experiments.harness import EXPERIMENTS, main


class TestCalibration:
    @pytest.fixture(scope="class")
    def report(self) -> CalibrationReport:
        return run_calibration()

    def test_regime_is_bracketed(self, report):
        """The frozen constants must keep the paper's sweep in regime."""
        assert report.brackets_paper_regime

    def test_singleton_stcs_graded(self, report):
        values = sorted(report.singleton_stc.values())
        assert values[0] > 5.0  # nothing absurdly cold
        assert values[-1] <= 20.0  # everything schedulable at STCL=20

    def test_report_text(self, report):
        text = report_calibration(report)
        assert "calibration status: OK" in text


class TestHarnessCli:
    def test_registry_covers_all_artefacts(self):
        assert set(EXPERIMENTS) == {
            "calibration",
            "fig1",
            "worked-example",
            "fig5",
            "table1",
            "m1-validation",
            "baseline-study",
            "ablations",
            "scaling",
            "model-accuracy",
            "heterogeneous",
            "optimality",
            "grid-crosscheck",
            "refinement",
            "transient-scheduling",
        }

    def test_single_experiment(self, capsys):
        exit_code = main(["fig1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_csv_export(self, tmp_path, capsys):
        exit_code = main(["fig1", "--csv", str(tmp_path / "csv")])
        assert exit_code == 0
        assert (tmp_path / "csv" / "fig1.csv").exists()
        assert (tmp_path / "csv" / "table1.csv").exists()
        assert (tmp_path / "csv" / "fig5.csv").exists()
        assert (tmp_path / "csv" / "worked_example.csv").exists()

    def test_default_runs_everything(self, capsys):
        exit_code = main([])
        assert exit_code == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert f"== {name}" in out

"""Integration tests for the extension studies (DESIGN.md section 7):
M1 validation, baseline comparison, ablations and scaling."""

from __future__ import annotations

import pytest

from repro.experiments.ablations import report_ablations, run_ablations
from repro.experiments.baseline_study import (
    report_baseline_study,
    run_baseline_study,
)
from repro.experiments.m1_validation import (
    report_m1_validation,
    run_m1_validation,
)
from repro.experiments.scaling import report_scaling_study, run_scaling_study


class TestM1Validation:
    @pytest.fixture(scope="class")
    def report(self):
        return run_m1_validation(cooling_gaps_s=(0.0, 1.0), dt=5e-3)

    def test_bound_holds_from_ambient(self, report):
        """The paper's M1 justification, verified numerically."""
        assert report.ambient_bound_holds
        for check in report.from_ambient:
            assert check.min_margin_c >= 0.0

    def test_bound_holds_back_to_back(self, report):
        """Stronger than the paper claims: still a bound with heat
        carry-over between sessions."""
        assert report.back_to_back_holds

    def test_cooling_gap_never_hurts(self, report):
        gaps = [c.cooling_gap_s for c in report.with_carry_over]
        margins = [c.min_margin_c for c in report.with_carry_over]
        assert gaps == sorted(gaps)
        assert margins[-1] >= margins[0]

    def test_report_renders(self, report):
        text = report_m1_validation(report)
        assert "M1" in text
        assert "bound holds" in text


class TestBaselineStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_baseline_study()

    def test_some_cap_is_unsafe(self, study):
        """The paper's thesis: power caps alone do not guarantee
        thermal safety — at least one swept cap overheats."""
        assert study.unsafe_caps

    def test_tightest_cap_is_safe_but_long(self, study):
        tightest = study.points[0]
        assert tightest.is_safe
        assert tightest.length_s > study.thermal_length_s

    def test_looser_caps_shorter_schedules(self, study):
        lengths = [p.length_s for p in study.points]
        assert lengths == sorted(lengths, reverse=True)

    def test_thermal_reference_safe(self, study):
        assert study.thermal_peak_c < study.tl_c

    def test_report_renders(self, study):
        text = report_baseline_study(study)
        assert "UNSAFE" in text
        assert "thermal-aware reference" in text


class TestAblations:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_ablations()

    def test_all_variants_present(self, rows):
        groups = {r.group for r in rows}
        assert groups == {"weight-factor", "session-model", "candidate-order"}
        assert len(rows) == 4 + 4 + 4

    def test_paper_configuration_converges(self, rows):
        paper = [r for r in rows if "(paper)" in r.variant]
        assert paper
        assert all(r.converged for r in paper)

    def test_stronger_feedback_reduces_discards(self, rows):
        by_factor = {
            r.variant.split()[0]: r
            for r in rows
            if r.group == "weight-factor" and r.converged
        }
        assert by_factor["2"].total_discards < by_factor["1.1"].total_discards

    def test_no_m3_is_most_conservative(self, rows):
        """Removing passive-neighbour grounding (no M3) leaves almost no
        modelled escape paths, driving schedules toward sequential."""
        by_variant = {r.variant: r for r in rows if r.group == "session-model"}
        paper = by_variant["paper (M2+M3, lateral)"]
        no_m3 = by_variant["no M3 (float passives)"]
        assert no_m3.total_length_s > paper.total_length_s
        assert no_m3.total_discards <= paper.total_discards

    def test_report_renders(self, rows):
        text = report_ablations(rows)
        assert "weight-factor" in text
        assert "candidate-order" in text


class TestScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return run_scaling_study(sides=(3, 5))

    def test_all_sizes_complete(self, points):
        assert [p.n_cores for p in points] == [9, 25]

    def test_speedup_over_sequential(self, points):
        for point in points:
            assert point.speedup_vs_sequential > 1.0
            assert point.length_s < point.sequential_s

    def test_effort_accounting(self, points):
        for point in points:
            assert point.effort_s >= point.length_s

    def test_report_renders(self, points):
        text = report_scaling_study(points)
        assert "cores" in text
        assert "vs sequential" in text

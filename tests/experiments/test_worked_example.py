"""Integration tests for the Figures 2-4 worked example."""

from __future__ import annotations

import math

import pytest

from repro.experiments.worked_example import (
    report_worked_example,
    run_worked_example,
)


@pytest.fixture(scope="module")
def rows():
    return run_worked_example()


class TestWorkedExample:
    def test_covers_the_papers_session(self, rows):
        assert [r.core for r in rows] == ["B2", "B4", "B5"]

    def test_b4_b5_mutual_path_dropped(self, rows):
        """Modification M2 on the paper's own example: B4 and B5 are
        both active, so each lists the other as an active neighbour."""
        by_core = {r.core: r for r in rows}
        assert "B5" in by_core["B4"].active_neighbours
        assert "B4" in by_core["B5"].active_neighbours

    def test_b2_has_no_active_neighbours(self, rows):
        by_core = {r.core: r for r in rows}
        assert by_core["B2"].active_neighbours == ()
        assert set(by_core["B2"].passive_neighbours) >= {"B1", "B3"}

    def test_resistances_finite_and_positive(self, rows):
        for row in rows:
            assert math.isfinite(row.equivalent_resistance)
            assert row.equivalent_resistance > 0.0
            assert row.thermal_characteristic > 0.0

    def test_report_renders(self, rows):
        text = report_worked_example(rows)
        assert "STC(TS)" in text
        assert "B4" in text

    def test_as_dict(self, rows):
        data = rows[0].as_dict()
        assert data["core"] == "B2"
        assert isinstance(data["passive_neighbours"], str)

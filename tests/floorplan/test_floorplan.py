"""Unit tests for the Floorplan container and its validation."""

from __future__ import annotations

import pytest

from repro.errors import FloorplanError, GeometryError
from repro.floorplan.floorplan import Block, Floorplan, floorplan_from_rects
from repro.floorplan.geometry import Rect


def two_block_plan() -> Floorplan:
    return Floorplan(
        [
            Block("left", Rect(0.0, 0.0, 1.0, 2.0)),
            Block("right", Rect(1.0, 0.0, 1.0, 2.0)),
        ],
        name="two",
    )


class TestBlock:
    def test_area_and_density(self):
        block = Block("a", Rect(0.0, 0.0, 2.0, 3.0))
        assert block.area == 6.0
        assert block.power_density(12.0) == pytest.approx(2.0)

    def test_rejects_empty_name(self):
        with pytest.raises(FloorplanError):
            Block("", Rect(0.0, 0.0, 1.0, 1.0))

    def test_rejects_whitespace_name(self):
        with pytest.raises(FloorplanError):
            Block("bad name", Rect(0.0, 0.0, 1.0, 1.0))


class TestFloorplanValidation:
    def test_empty_rejected(self):
        with pytest.raises(FloorplanError):
            Floorplan([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(FloorplanError, match="duplicate"):
            Floorplan(
                [
                    Block("a", Rect(0.0, 0.0, 1.0, 1.0)),
                    Block("a", Rect(1.0, 0.0, 1.0, 1.0)),
                ]
            )

    def test_overlap_rejected(self):
        with pytest.raises(FloorplanError, match="overlap"):
            Floorplan(
                [
                    Block("a", Rect(0.0, 0.0, 2.0, 2.0)),
                    Block("b", Rect(1.0, 0.0, 2.0, 2.0)),
                ]
            )

    def test_edge_contact_allowed(self):
        plan = two_block_plan()
        assert len(plan) == 2

    def test_block_outside_outline_rejected(self):
        with pytest.raises(FloorplanError, match="outside"):
            Floorplan(
                [Block("a", Rect(0.0, 0.0, 2.0, 2.0))],
                outline=Rect(0.0, 0.0, 1.0, 1.0),
            )

    def test_full_coverage_enforced(self):
        blocks = [Block("a", Rect(0.0, 0.0, 1.0, 1.0))]
        with pytest.raises(FloorplanError, match="coverage"):
            Floorplan(
                blocks,
                outline=Rect(0.0, 0.0, 2.0, 2.0),
                require_full_coverage=True,
            )

    def test_full_coverage_passes_when_tiled(self):
        plan = Floorplan(
            [
                Block("a", Rect(0.0, 0.0, 1.0, 2.0)),
                Block("b", Rect(1.0, 0.0, 1.0, 2.0)),
            ],
            outline=Rect(0.0, 0.0, 2.0, 2.0),
            require_full_coverage=True,
        )
        assert plan.coverage == pytest.approx(1.0)


class TestFloorplanAccess:
    def test_lookup_by_name(self):
        plan = two_block_plan()
        assert plan["left"].rect.x == 0.0
        assert "right" in plan
        assert "missing" not in plan

    def test_unknown_name_raises_with_hint(self):
        plan = two_block_plan()
        with pytest.raises(FloorplanError, match="left"):
            plan["nope"]

    def test_index_of_is_canonical(self):
        plan = two_block_plan()
        assert plan.index_of("left") == 0
        assert plan.index_of("right") == 1
        with pytest.raises(FloorplanError):
            plan.index_of("nope")

    def test_iteration_order_preserved(self):
        plan = two_block_plan()
        assert [b.name for b in plan] == ["left", "right"]
        assert plan.block_names == ("left", "right")

    def test_outline_defaults_to_bounding_box(self):
        plan = two_block_plan()
        assert plan.outline == Rect(0.0, 0.0, 2.0, 2.0)

    def test_describe_mentions_every_block(self):
        text = two_block_plan().describe()
        assert "left" in text and "right" in text


class TestFloorplanMetrics:
    def test_areas_and_coverage(self):
        plan = two_block_plan()
        assert plan.die_area == pytest.approx(4.0)
        assert plan.blocks_area == pytest.approx(4.0)
        assert plan.coverage == pytest.approx(1.0)
        assert plan.areas() == {"left": 2.0, "right": 2.0}

    def test_area_ratio(self):
        plan = Floorplan(
            [
                Block("small", Rect(0.0, 0.0, 1.0, 1.0)),
                Block("big", Rect(1.0, 0.0, 4.0, 1.0)),
            ]
        )
        assert plan.area_ratio() == pytest.approx(4.0)


class TestFloorplanTransforms:
    def test_scaled_preserves_structure(self):
        plan = two_block_plan().scaled(2.0)
        assert plan["left"].rect == Rect(0.0, 0.0, 2.0, 4.0)
        assert plan["right"].rect == Rect(2.0, 0.0, 2.0, 4.0)
        assert plan.outline == Rect(0.0, 0.0, 4.0, 4.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            two_block_plan().scaled(-1.0)

    def test_subset(self):
        plan = two_block_plan()
        sub = plan.subset(["left"], name="half")
        assert sub.name == "half"
        assert sub.block_names == ("left",)
        # Subset keeps the parent outline for boundary semantics.
        assert sub.outline == plan.outline

    def test_subset_unknown_block_rejected(self):
        with pytest.raises(FloorplanError):
            two_block_plan().subset(["nope"])


class TestFromRects:
    def test_mapping_constructor(self):
        plan = floorplan_from_rects(
            {"a": Rect(0.0, 0.0, 1.0, 1.0), "b": Rect(1.0, 0.0, 1.0, 1.0)},
            name="mapped",
        )
        assert plan.name == "mapped"
        assert plan.block_names == ("a", "b")

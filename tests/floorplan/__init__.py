"""Test package marker (unique test-module basenames across subdirectories)."""

"""Unit tests for adjacency extraction."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.errors import FloorplanError
from repro.floorplan.adjacency import AdjacencyMap, adjacency_graph
from repro.floorplan.floorplan import Block, Floorplan
from repro.floorplan.generator import grid_floorplan
from repro.floorplan.geometry import Rect, Side


@pytest.fixture(scope="module")
def quad() -> AdjacencyMap:
    """2x2 grid of unit blocks: a, b on the bottom; c, d on top."""
    plan = Floorplan(
        [
            Block("a", Rect(0.0, 0.0, 1.0, 1.0)),
            Block("b", Rect(1.0, 0.0, 1.0, 1.0)),
            Block("c", Rect(0.0, 1.0, 1.0, 1.0)),
            Block("d", Rect(1.0, 1.0, 1.0, 1.0)),
        ]
    )
    return AdjacencyMap(plan)


class TestInterfaces:
    def test_quad_has_four_interfaces(self, quad):
        # a-b, a-c, b-d, c-d; diagonals (a-d, b-c) touch only at the corner.
        pairs = {frozenset((i.block_a, i.block_b)) for i in quad.interfaces}
        assert pairs == {
            frozenset(("a", "b")),
            frozenset(("a", "c")),
            frozenset(("b", "d")),
            frozenset(("c", "d")),
        }

    def test_interface_lengths(self, quad):
        for interface in quad.interfaces:
            assert interface.length == pytest.approx(1.0)

    def test_neighbours(self, quad):
        assert set(quad.neighbours("a")) == {"b", "c"}
        assert set(quad.neighbours("d")) == {"b", "c"}

    def test_interface_between(self, quad):
        interface = quad.interface_between("a", "b")
        assert interface is not None
        assert interface.other("a") == "b"
        assert interface.other("b") == "a"
        assert quad.interface_between("a", "d") is None

    def test_interface_sides_are_consistent(self, quad):
        interface = quad.interface_between("a", "b")
        assert interface.side_of("a") is Side.EAST
        assert interface.side_of("b") is Side.WEST

    def test_interface_other_rejects_stranger(self, quad):
        interface = quad.interface_between("a", "b")
        with pytest.raises(FloorplanError):
            interface.other("c")

    def test_unknown_block_rejected(self, quad):
        with pytest.raises(FloorplanError):
            quad.interfaces_of("zz")


class TestBoundary:
    def test_corner_blocks_expose_two_sides(self, quad):
        segments = quad.boundary_segments("a")
        sides = {s.side for s in segments}
        assert sides == {Side.SOUTH, Side.WEST}
        assert quad.boundary_length("a") == pytest.approx(2.0)

    def test_fully_tiled(self, quad):
        assert quad.is_fully_tiled()
        for name in ("a", "b", "c", "d"):
            assert quad.unaccounted_perimeter(name) == pytest.approx(0.0)

    def test_unaccounted_perimeter_with_whitespace(self):
        # Two blocks with a gap between them: the facing edges count as
        # unaccounted (adiabatic) perimeter.
        plan = Floorplan(
            [
                Block("a", Rect(0.0, 0.0, 1.0, 1.0)),
                Block("b", Rect(2.0, 0.0, 1.0, 1.0)),
            ],
            outline=Rect(0.0, 0.0, 3.0, 1.0),
        )
        amap = AdjacencyMap(plan)
        assert not amap.is_fully_tiled()
        assert amap.unaccounted_perimeter("a") == pytest.approx(1.0)
        assert amap.neighbours("a") == ()


class TestGridAdjacency:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (1, 5), (3, 3), (4, 6)])
    def test_grid_interface_count(self, rows, cols):
        amap = AdjacencyMap(grid_floorplan(rows, cols))
        expected = rows * (cols - 1) + cols * (rows - 1)
        assert len(amap.interfaces) == expected

    def test_grid_graph_is_connected(self):
        graph = adjacency_graph(AdjacencyMap(grid_floorplan(4, 4)))
        assert nx.is_connected(graph)

    def test_grid_corner_interior_degrees(self):
        graph = adjacency_graph(AdjacencyMap(grid_floorplan(3, 3)))
        degrees = dict(graph.degree())
        assert degrees["C0_0"] == 2  # corner
        assert degrees["C0_1"] == 3  # edge
        assert degrees["C1_1"] == 4  # centre


class TestAdjacencyGraphView:
    def test_nodes_carry_area(self, quad):
        graph = adjacency_graph(quad)
        assert graph.nodes["a"]["area"] == pytest.approx(1.0)

    def test_edges_carry_length(self, quad):
        graph = adjacency_graph(quad)
        assert graph.edges["a", "b"]["length"] == pytest.approx(1.0)


class TestPaperLayouts:
    def test_alpha15_is_fully_tiled(self, alpha15_floorplan):
        amap = AdjacencyMap(alpha15_floorplan)
        assert amap.is_fully_tiled()

    def test_alpha15_graph_connected(self, alpha15_floorplan):
        graph = adjacency_graph(AdjacencyMap(alpha15_floorplan))
        assert nx.is_connected(graph)
        assert graph.number_of_nodes() == 15

    def test_alpha15_l2_spans_south_edge(self, alpha15_floorplan):
        amap = AdjacencyMap(alpha15_floorplan)
        south = [
            s for s in amap.boundary_segments("L2") if s.side is Side.SOUTH
        ]
        assert len(south) == 1
        assert south[0].length == pytest.approx(16e-3)

    def test_worked_example_adjacency_matches_figure3(
        self, worked_example_floorplan
    ):
        """The paper's Figure 3 resistance list, as adjacency facts."""
        amap = AdjacencyMap(worked_example_floorplan)
        assert set(amap.neighbours("B2")) >= {"B1", "B3"}  # R_1,2 and R_2,3
        assert set(amap.neighbours("B4")) >= {"B1", "B5"}  # R_1,4 and R_4,5
        assert set(amap.neighbours("B5")) >= {"B3", "B4", "B6"}
        # Boundary exposures named in Figure 3: B2 north, B4 west+south,
        # B5 south.
        assert Side.NORTH in {s.side for s in amap.boundary_segments("B2")}
        b4_sides = {s.side for s in amap.boundary_segments("B4")}
        assert {Side.WEST, Side.SOUTH} <= b4_sides
        assert Side.SOUTH in {s.side for s in amap.boundary_segments("B5")}

    def test_hypothetical7_hot_cluster_adjacent_cool_isolated(
        self, hypothetical7_floorplan
    ):
        amap = AdjacencyMap(hypothetical7_floorplan)
        # Hot cluster: C2-C3 and C3-C4 touch.
        assert "C3" in amap.neighbours("C2")
        assert "C4" in amap.neighbours("C3")
        # Cool cores are mutually isolated.
        for core in ("C5", "C6", "C7"):
            assert set(amap.neighbours(core)).isdisjoint({"C5", "C6", "C7"} - {core})

"""Unit tests for the geometry primitives."""

from __future__ import annotations

import math

import pytest

from repro.errors import GeometryError
from repro.floorplan.geometry import (
    Rect,
    Side,
    boundary_exposure,
    bounding_box,
    shared_edge,
    total_area,
)


class TestRectConstruction:
    def test_basic_properties(self):
        r = Rect(1.0, 2.0, 3.0, 4.0)
        assert r.x2 == 4.0
        assert r.y2 == 6.0
        assert r.area == 12.0
        assert r.perimeter == 14.0
        assert r.center == (2.5, 4.0)
        assert r.aspect_ratio == 0.75

    def test_rejects_zero_width(self):
        with pytest.raises(GeometryError):
            Rect(0.0, 0.0, 0.0, 1.0)

    def test_rejects_negative_height(self):
        with pytest.raises(GeometryError):
            Rect(0.0, 0.0, 1.0, -1.0)

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            Rect(math.nan, 0.0, 1.0, 1.0)

    def test_rejects_infinite_width(self):
        with pytest.raises(GeometryError):
            Rect(0.0, 0.0, math.inf, 1.0)

    def test_from_corners_any_order(self):
        a = Rect.from_corners(0.0, 0.0, 2.0, 3.0)
        b = Rect.from_corners(2.0, 3.0, 0.0, 0.0)
        assert a == b
        assert a.width == 2.0 and a.height == 3.0

    def test_frozen_and_hashable(self):
        r = Rect(0.0, 0.0, 1.0, 1.0)
        assert hash(r) == hash(Rect(0.0, 0.0, 1.0, 1.0))
        with pytest.raises(AttributeError):
            r.x = 5.0  # type: ignore[misc]

    def test_translated(self):
        r = Rect(0.0, 0.0, 1.0, 2.0).translated(3.0, 4.0)
        assert (r.x, r.y, r.width, r.height) == (3.0, 4.0, 1.0, 2.0)

    def test_scaled(self):
        r = Rect(1.0, 1.0, 2.0, 2.0).scaled(2.0)
        assert (r.x, r.y, r.width, r.height) == (2.0, 2.0, 4.0, 4.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(GeometryError):
            Rect(0.0, 0.0, 1.0, 1.0).scaled(0.0)


class TestSide:
    def test_opposites(self):
        assert Side.NORTH.opposite is Side.SOUTH
        assert Side.SOUTH.opposite is Side.NORTH
        assert Side.EAST.opposite is Side.WEST
        assert Side.WEST.opposite is Side.EAST

    def test_horizontal_classification(self):
        assert Side.NORTH.is_horizontal
        assert Side.SOUTH.is_horizontal
        assert not Side.EAST.is_horizontal
        assert not Side.WEST.is_horizontal

    def test_side_length_and_coordinate(self):
        r = Rect(1.0, 2.0, 3.0, 4.0)
        assert r.side_length(Side.NORTH) == 3.0
        assert r.side_length(Side.EAST) == 4.0
        assert r.side_coordinate(Side.NORTH) == 6.0
        assert r.side_coordinate(Side.SOUTH) == 2.0
        assert r.side_coordinate(Side.EAST) == 4.0
        assert r.side_coordinate(Side.WEST) == 1.0


class TestContainmentAndOverlap:
    def test_contains_point(self):
        r = Rect(0.0, 0.0, 2.0, 2.0)
        assert r.contains_point(1.0, 1.0)
        assert r.contains_point(0.0, 0.0)  # boundary counts
        assert not r.contains_point(3.0, 1.0)

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 10.0, 10.0)
        assert outer.contains_rect(Rect(1.0, 1.0, 2.0, 2.0))
        assert outer.contains_rect(outer)  # self-containment
        assert not outer.contains_rect(Rect(9.0, 9.0, 2.0, 2.0))

    def test_interior_overlap_detected(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 1.0, 2.0, 2.0)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert a.overlap_area(b) == pytest.approx(1.0)

    def test_edge_touch_is_not_overlap(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(2.0, 0.0, 2.0, 2.0)
        assert not a.overlaps(b)
        assert a.overlap_area(b) == 0.0

    def test_corner_touch_is_not_overlap(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(2.0, 2.0, 2.0, 2.0)
        assert not a.overlaps(b)

    def test_disjoint(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(5.0, 5.0, 1.0, 1.0)
        assert not a.overlaps(b)
        assert a.overlap_area(b) == 0.0


class TestSharedEdge:
    def test_east_west_adjacency(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(2.0, 0.0, 2.0, 2.0)
        side, length = shared_edge(a, b)
        assert side is Side.EAST
        assert length == pytest.approx(2.0)
        # And the reverse direction reports WEST.
        side_rev, length_rev = shared_edge(b, a)
        assert side_rev is Side.WEST
        assert length_rev == pytest.approx(2.0)

    def test_north_south_adjacency(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(0.0, 2.0, 2.0, 2.0)
        side, length = shared_edge(a, b)
        assert side is Side.NORTH
        assert length == pytest.approx(2.0)

    def test_partial_overlap_length(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(2.0, 1.0, 2.0, 4.0)
        side, length = shared_edge(a, b)
        assert side is Side.EAST
        assert length == pytest.approx(1.0)

    def test_corner_contact_is_not_adjacent(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(2.0, 2.0, 2.0, 2.0)
        assert shared_edge(a, b) is None

    def test_gap_is_not_adjacent(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(2.1, 0.0, 2.0, 2.0)
        assert shared_edge(a, b) is None

    def test_overlapping_rects_not_adjacent(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(1.0, 0.0, 2.0, 2.0)
        assert shared_edge(a, b) is None

    def test_tolerance_closes_seam(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(2.0 + 5e-8, 0.0, 2.0, 2.0)  # 50 nm seam
        result = shared_edge(a, b)
        assert result is not None
        assert result[0] is Side.EAST


class TestBoundaryExposure:
    def test_corner_block_two_sides(self):
        outline = Rect(0.0, 0.0, 10.0, 10.0)
        block = Rect(0.0, 0.0, 3.0, 2.0)
        exposure = boundary_exposure(block, outline)
        assert exposure == {Side.SOUTH: 3.0, Side.WEST: 2.0}

    def test_interior_block_no_sides(self):
        outline = Rect(0.0, 0.0, 10.0, 10.0)
        block = Rect(3.0, 3.0, 2.0, 2.0)
        assert boundary_exposure(block, outline) == {}

    def test_full_die_block_all_sides(self):
        outline = Rect(0.0, 0.0, 10.0, 10.0)
        exposure = boundary_exposure(outline, outline)
        assert set(exposure) == {Side.NORTH, Side.SOUTH, Side.EAST, Side.WEST}

    def test_block_outside_outline_rejected(self):
        outline = Rect(0.0, 0.0, 10.0, 10.0)
        with pytest.raises(GeometryError):
            boundary_exposure(Rect(9.0, 9.0, 2.0, 2.0), outline)


class TestAggregates:
    def test_bounding_box(self):
        rects = [Rect(0.0, 0.0, 1.0, 1.0), Rect(3.0, 4.0, 1.0, 2.0)]
        box = bounding_box(rects)
        assert (box.x, box.y, box.x2, box.y2) == (0.0, 0.0, 4.0, 6.0)

    def test_bounding_box_empty_rejected(self):
        with pytest.raises(GeometryError):
            bounding_box([])

    def test_total_area(self):
        rects = [Rect(0.0, 0.0, 2.0, 2.0), Rect(5.0, 5.0, 1.0, 3.0)]
        assert total_area(rects) == pytest.approx(7.0)

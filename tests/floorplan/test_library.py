"""Tests for the bundled paper floorplans."""

from __future__ import annotations

import pytest

from repro.floorplan.library import (
    FIG1_CORE_POWER_W,
    FIG1_POWER_LIMIT_W,
    FIG1_SESSION_COOL,
    FIG1_SESSION_HOT,
    WORKED_EXAMPLE_SESSION,
    alpha15,
    hypothetical7,
    worked_example6,
)


class TestAlpha15:
    def test_fifteen_blocks(self, alpha15_floorplan):
        assert len(alpha15_floorplan) == 15

    def test_die_is_16mm_square(self, alpha15_floorplan):
        outline = alpha15_floorplan.outline
        assert outline.width == pytest.approx(16e-3)
        assert outline.height == pytest.approx(16e-3)

    def test_fully_tiled(self, alpha15_floorplan):
        assert alpha15_floorplan.coverage == pytest.approx(1.0)

    def test_wide_area_spread(self, alpha15_floorplan):
        """The paper's premise: strongly non-uniform block areas."""
        assert alpha15_floorplan.area_ratio() > 20.0

    def test_l2_is_largest(self, alpha15_floorplan):
        areas = alpha15_floorplan.areas()
        assert max(areas, key=areas.get) == "L2"

    def test_expected_unit_mix(self, alpha15_floorplan):
        names = set(alpha15_floorplan.block_names)
        assert {"L2", "L2_left", "L2_right", "Icache", "Dcache"} <= names
        assert {"IntReg", "IntExec", "FPAdd", "FPMul"} <= names

    def test_calls_return_equal_layouts(self):
        a, b = alpha15(), alpha15()
        for name in a.block_names:
            assert a[name].rect == b[name].rect


class TestHypothetical7:
    def test_seven_cores(self, hypothetical7_floorplan):
        assert len(hypothetical7_floorplan) == 7
        assert hypothetical7_floorplan.block_names == (
            "C1", "C2", "C3", "C4", "C5", "C6", "C7",
        )

    def test_power_density_ratio_is_exactly_four(self, hypothetical7_floorplan):
        """The paper: 'the power density of core C2 is 4 times higher
        than that of C5' at equal power."""
        c2 = hypothetical7_floorplan["C2"].power_density(FIG1_CORE_POWER_W)
        c5 = hypothetical7_floorplan["C5"].power_density(FIG1_CORE_POWER_W)
        assert c2 / c5 == pytest.approx(4.0)

    def test_small_cores_same_size(self, hypothetical7_floorplan):
        areas = {n: hypothetical7_floorplan[n].area for n in FIG1_SESSION_HOT}
        assert len({round(a, 12) for a in areas.values()}) == 1

    def test_session_powers_meet_cap(self, hypothetical7_floorplan):
        assert len(FIG1_SESSION_HOT) * FIG1_CORE_POWER_W == FIG1_POWER_LIMIT_W
        assert len(FIG1_SESSION_COOL) * FIG1_CORE_POWER_W == FIG1_POWER_LIMIT_W

    def test_not_fully_tiled_by_design(self, hypothetical7_floorplan):
        assert hypothetical7_floorplan.coverage < 1.0


class TestWorkedExample6:
    def test_six_blocks_fully_tiled(self, worked_example_floorplan):
        assert len(worked_example_floorplan) == 6
        assert worked_example_floorplan.coverage == pytest.approx(1.0)

    def test_session_constant(self):
        assert WORKED_EXAMPLE_SESSION == ("B2", "B4", "B5")
        plan = worked_example6()
        for name in WORKED_EXAMPLE_SESSION:
            assert name in plan

"""Unit tests for HotSpot .flp parsing and serialisation."""

from __future__ import annotations

import pytest

from repro.errors import FloorplanFormatError
from repro.floorplan.hotspot_format import (
    format_flp,
    parse_flp,
    read_flp,
    write_flp,
)
from repro.floorplan.library import alpha15

SAMPLE = """\
# a comment line
Icache\t0.0031\t0.0026\t0.0049\t0.0098

Dcache\t0.0031\t0.0026\t0.0080\t0.0098
"""


class TestParse:
    def test_parses_blocks_and_skips_comments(self):
        plan = parse_flp(SAMPLE, name="sample")
        assert plan.block_names == ("Icache", "Dcache")
        icache = plan["Icache"].rect
        assert icache.width == pytest.approx(0.0031)
        assert icache.height == pytest.approx(0.0026)
        assert icache.x == pytest.approx(0.0049)
        assert icache.y == pytest.approx(0.0098)

    def test_space_separated_fields_accepted(self):
        plan = parse_flp("A 1.0 2.0 0.0 0.0")
        assert plan["A"].rect.height == 2.0

    def test_wrong_field_count_rejected(self):
        with pytest.raises(FloorplanFormatError, match="line 1"):
            parse_flp("A 1.0 2.0 0.0")

    def test_non_numeric_rejected(self):
        with pytest.raises(FloorplanFormatError, match="non-numeric"):
            parse_flp("A one 2.0 0.0 0.0")

    def test_nonpositive_size_rejected(self):
        with pytest.raises(FloorplanFormatError, match="non-positive"):
            parse_flp("A 0.0 2.0 0.0 0.0")

    def test_empty_content_rejected(self):
        with pytest.raises(FloorplanFormatError, match="no blocks"):
            parse_flp("# nothing here\n")

    def test_overlapping_blocks_rejected_via_floorplan_validation(self):
        text = "A 2.0 2.0 0.0 0.0\nB 2.0 2.0 1.0 0.0\n"
        with pytest.raises(Exception, match="overlap"):
            parse_flp(text)


class TestRoundTrip:
    def test_alpha15_round_trips(self):
        original = alpha15()
        text = format_flp(original)
        parsed = parse_flp(text, name=original.name)
        assert parsed.block_names == original.block_names
        for name in original.block_names:
            assert parsed[name].rect == original[name].rect

    def test_header_toggle(self):
        text = format_flp(alpha15(), header=False)
        assert not text.startswith("#")

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "alpha15.flp"
        write_flp(alpha15(), path)
        loaded = read_flp(path)
        assert loaded.name == "alpha15"
        assert loaded.block_names == alpha15().block_names

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(FloorplanFormatError, match="cannot read"):
            read_flp(tmp_path / "nope.flp")

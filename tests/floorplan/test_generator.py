"""Unit + property tests for the synthetic floorplan generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FloorplanError
from repro.floorplan.adjacency import AdjacencyMap
from repro.floorplan.generator import grid_floorplan, slicing_floorplan


class TestGrid:
    def test_block_count_and_names(self):
        plan = grid_floorplan(2, 3)
        assert len(plan) == 6
        assert "C0_0" in plan and "C1_2" in plan

    def test_cells_are_equal_area(self):
        plan = grid_floorplan(4, 4, die_width=8e-3, die_height=8e-3)
        areas = set(round(b.area, 18) for b in plan)
        assert len(areas) == 1

    def test_full_coverage(self):
        plan = grid_floorplan(3, 5)
        assert plan.coverage == pytest.approx(1.0)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(FloorplanError):
            grid_floorplan(0, 3)
        with pytest.raises(FloorplanError):
            grid_floorplan(3, 3, die_width=-1.0)

    def test_custom_name(self):
        assert grid_floorplan(2, 2, name="mygrid").name == "mygrid"


class TestSlicing:
    def test_exact_block_count(self):
        for n in (1, 2, 7, 16, 33):
            plan = slicing_floorplan(n, seed=1)
            assert len(plan) == n

    def test_deterministic_for_seed(self):
        a = slicing_floorplan(12, seed=42)
        b = slicing_floorplan(12, seed=42)
        assert a.block_names == b.block_names
        for name in a.block_names:
            assert a[name].rect == b[name].rect

    def test_different_seeds_differ(self):
        a = slicing_floorplan(12, seed=1)
        b = slicing_floorplan(12, seed=2)
        assert any(a[n].rect != b[n].rect for n in a.block_names)

    def test_full_coverage(self):
        plan = slicing_floorplan(20, seed=3)
        assert plan.coverage == pytest.approx(1.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(FloorplanError):
            slicing_floorplan(0)
        with pytest.raises(FloorplanError):
            slicing_floorplan(4, split_bias=1.5)

    def test_split_bias_skews_areas(self):
        balanced = slicing_floorplan(16, seed=7, split_bias=0.5)
        skewed = slicing_floorplan(16, seed=7, split_bias=0.8)
        assert skewed.area_ratio() != pytest.approx(balanced.area_ratio())


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_slicing_floorplans_are_always_valid(n, seed):
    """Any (n, seed) yields a tiled, validated floorplan.

    Floorplan.__init__ enforces non-overlap and containment; this adds
    tiling and adjacency sanity on top.
    """
    plan = slicing_floorplan(n, seed=seed)
    assert len(plan) == n
    assert plan.coverage == pytest.approx(1.0, rel=1e-6)
    amap = AdjacencyMap(plan)
    assert amap.is_fully_tiled()
    # Adjacency symmetry: if a lists b, b lists a.
    for name in plan.block_names:
        for neighbour in amap.neighbours(name):
            assert name in amap.neighbours(neighbour)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=8),
    cols=st.integers(min_value=1, max_value=8),
)
def test_grid_adjacency_is_symmetric_and_irreflexive(rows, cols):
    amap = AdjacencyMap(grid_floorplan(rows, cols))
    for name in amap.floorplan.block_names:
        neighbours = amap.neighbours(name)
        assert name not in neighbours
        for other in neighbours:
            assert name in amap.neighbours(other)

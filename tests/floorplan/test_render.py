"""Unit tests for the floorplan ASCII renderer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FloorplanError
from repro.floorplan.generator import grid_floorplan, slicing_floorplan
from repro.floorplan.hotspot_format import format_flp, parse_flp
from repro.floorplan.library import alpha15, hypothetical7
from repro.floorplan.render import render_floorplan


class TestRenderFloorplan:
    def test_every_block_in_legend(self):
        text = render_floorplan(alpha15())
        for name in alpha15().block_names:
            assert name in text

    def test_raster_dimensions(self):
        text = render_floorplan(grid_floorplan(2, 2), width=10, height=5)
        raster_rows = [l for l in text.splitlines() if l.startswith("|")]
        assert len(raster_rows) == 5
        assert all(len(row) == 12 for row in raster_rows)  # |..........|

    def test_distinct_blocks_distinct_glyphs(self):
        text = render_floorplan(grid_floorplan(1, 2), width=8, height=4)
        raster = [l for l in text.splitlines() if l.startswith("|")][0]
        interior = raster[1:-1]
        assert len(set(interior)) == 2

    def test_whitespace_blank(self):
        text = render_floorplan(hypothetical7(), width=24, height=12)
        raster_rows = [l[1:-1] for l in text.splitlines() if l.startswith("|")]
        assert any(" " in row for row in raster_rows)

    def test_orientation_north_on_top(self):
        # grid 2x1: C1_0 is the northern cell, rendered in the top rows.
        plan = grid_floorplan(2, 1)
        text = render_floorplan(plan, width=4, height=4)
        raster_rows = [l[1:-1] for l in text.splitlines() if l.startswith("|")]
        top_glyph = raster_rows[0][0]
        bottom_glyph = raster_rows[-1][0]
        assert top_glyph != bottom_glyph
        legend = {l.split("=")[1].split()[0]: l.split("=")[0].strip()
                  for l in text.splitlines() if "=" in l and "mm" in l}
        assert legend["C1_0"] == top_glyph

    def test_tiny_raster_rejected(self):
        with pytest.raises(FloorplanError):
            render_floorplan(alpha15(), width=1, height=1)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_flp_round_trip(n, seed):
    """Any generated floorplan survives .flp serialise -> parse exactly."""
    original = slicing_floorplan(n, seed=seed)
    parsed = parse_flp(format_flp(original), name=original.name)
    assert parsed.block_names == original.block_names
    for name in original.block_names:
        assert parsed[name].rect == original[name].rect


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=15),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_render_never_crashes(n, seed):
    """The renderer handles any valid floorplan."""
    plan = slicing_floorplan(n, seed=seed)
    text = render_floorplan(plan, width=20, height=10)
    assert plan.name in text

"""Micro-benchmarks for the thermal substrate.

These size the cost model behind the paper's *simulation effort*
argument: a steady-state session solve is the unit of work Algorithm 1
spends on every candidate session, and the session-model evaluation is
the cheap surrogate that avoids it.  The ratio between those two
numbers is the speed-up the paper's approach banks on.
"""

from __future__ import annotations

import pytest

from repro.floorplan.generator import grid_floorplan
from repro.thermal.builder import build_thermal_network
from repro.thermal.package import DEFAULT_PACKAGE
from repro.thermal.simulator import ThermalSimulator
from repro.thermal.steady_state import SteadyStateSolver
from repro.thermal.transient import TransientSolver


def test_bench_network_build_alpha15(benchmark, alpha_soc):
    """Floorplan -> compiled RC network (one-off setup cost)."""
    built = benchmark(
        build_thermal_network, alpha_soc.floorplan, alpha_soc.package
    )
    assert len(built.network) == 22


def test_bench_steady_state_factorisation(benchmark, alpha_soc):
    """Cholesky factorisation of the 22-node conductance matrix."""
    built = build_thermal_network(alpha_soc.floorplan, alpha_soc.package)
    solver = benchmark(SteadyStateSolver, built.network)
    assert solver.network is built.network


def test_bench_steady_state_session_solve(benchmark, alpha_soc, alpha_simulator):
    """One accurate session simulation — the unit of simulation effort."""
    power = alpha_soc.session_power_map(["IntReg", "FPAdd", "L2"])
    field = benchmark(alpha_simulator.steady_state, power)
    assert field.max_temperature_c() > alpha_simulator.ambient_c


def test_bench_session_model_evaluation(
    benchmark, alpha_soc, alpha_session_model
):
    """One STC evaluation — the paper's cheap surrogate for the above."""
    session = ["IntReg", "FPAdd", "L2", "Dcache", "Bpred"]
    stc = benchmark(
        alpha_session_model.session_thermal_characteristic, session
    )
    assert stc > 0.0


def test_bench_transient_one_second_session(benchmark, alpha_soc):
    """Transient simulation of one 1 s session at 1 ms steps — what a
    schedule validation would cost without modification M1."""
    simulator = ThermalSimulator(
        alpha_soc.floorplan, alpha_soc.package, alpha_soc.adjacency
    )
    power = alpha_soc.session_power_map(["IntReg", "FPAdd", "L2"])
    result = benchmark(simulator.transient, power, 1.0, 1e-2)
    assert result.times[-1] == pytest.approx(1.0)


@pytest.mark.parametrize("side", [4, 8, 12])
def test_bench_steady_state_scaling(benchmark, side):
    """Steady-state solve cost vs floorplan size (n = side^2 blocks)."""
    simulator = ThermalSimulator(grid_floorplan(side, side))
    power = {f"C0_{c}": 10.0 for c in range(side)}
    field = benchmark(simulator.steady_state, power)
    assert field.max_temperature_c() > simulator.ambient_c


def test_bench_grid_mode_build(benchmark, alpha_soc):
    """Grid-mode mesh assembly + sparse LU factorisation (48x48)."""
    from repro.thermal.grid import GridThermalSimulator

    sim = benchmark(
        GridThermalSimulator, alpha_soc.floorplan, alpha_soc.package, 48, 48
    )
    assert sim.resolution == (48, 48)


def test_bench_grid_mode_session_solve(benchmark, alpha_soc):
    """One grid-mode session solve — the fidelity-vs-speed comparison
    point for the block-mode solve benchmarked above."""
    from repro.thermal.grid import GridThermalSimulator

    sim = GridThermalSimulator(alpha_soc.floorplan, alpha_soc.package, 48, 48)
    power = alpha_soc.session_power_map(["IntReg", "FPAdd", "L2"])
    field = benchmark(sim.steady_state, power)
    assert field.max_temperature_c() > sim.ambient_c

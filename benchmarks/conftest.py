"""Shared fixtures for the benchmark suite.

Benchmarks re-use one simulator / session model per SoC: re-building
the RC network inside the timed region would measure network assembly,
not the algorithm under test (assembly has its own benchmark).
"""

from __future__ import annotations

import pytest

from repro.core.scheduler import ThermalAwareScheduler
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.soc.library import ALPHA15_STC_SCALE, alpha15_soc, hypothetical7_soc
from repro.thermal.simulator import ThermalSimulator


@pytest.fixture(scope="session")
def alpha_soc():
    """The calibrated alpha15 SoC."""
    return alpha15_soc()


@pytest.fixture(scope="session")
def alpha_simulator(alpha_soc):
    """Thermal simulator with a pre-factorised network."""
    return ThermalSimulator(
        alpha_soc.floorplan, alpha_soc.package, alpha_soc.adjacency
    )


@pytest.fixture(scope="session")
def alpha_session_model(alpha_soc):
    """Calibrated session thermal model."""
    return SessionThermalModel(
        alpha_soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )


@pytest.fixture(scope="session")
def alpha_scheduler(alpha_soc, alpha_simulator, alpha_session_model):
    """Paper-configured scheduler bound to the shared simulator."""
    return ThermalAwareScheduler(
        alpha_soc, simulator=alpha_simulator, session_model=alpha_session_model
    )


@pytest.fixture(scope="session")
def hypo_soc():
    """The Figure 1 SoC."""
    return hypothetical7_soc()

"""Scaling study: scheduler cost vs SoC size (DESIGN.md section 7).

The paper's algorithm was demonstrated on 15 cores; this benchmark
measures how the implementation scales to larger synthetic SoCs (grid
floorplans up to 100 cores), separating the one-off network setup from
the per-run scheduling cost.
"""

from __future__ import annotations

import pytest

from repro.core.scheduler import SchedulerConfig, ThermalAwareScheduler
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.soc.library import grid_soc
from repro.thermal.simulator import ThermalSimulator


@pytest.mark.parametrize("side", [3, 5, 8, 10])
def test_bench_scheduler_scaling(benchmark, side):
    """Full scheduling run on an n = side^2 core grid SoC."""
    soc = grid_soc(side, side, seed=7, power_scale=2.0)
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    model = SessionThermalModel(soc, SessionModelConfig())

    # Choose limits relative to this SoC's own regime so the run always
    # has work to do but terminates: TL halfway between the hottest
    # singleton and the all-active peak, STCL at 3x the max singleton STC.
    singleton_peak = max(
        simulator.steady_state(
            {n: soc[n].test_power_w}
        ).temperature_c(n)
        for n in soc.core_names
    )
    all_active_peak = simulator.steady_state(
        soc.test_power_map()
    ).max_temperature_c()
    tl_c = (singleton_peak + all_active_peak) / 2.0
    stcl = 3.0 * max(
        model.session_thermal_characteristic([n]) for n in soc.core_names
    )

    scheduler = ThermalAwareScheduler(
        soc,
        simulator=simulator,
        session_model=model,
        config=SchedulerConfig(max_discards=5_000),
    )
    result = benchmark(scheduler.schedule, tl_c, stcl)
    assert result.max_temperature_c < tl_c
    benchmark.extra_info["cores"] = side * side
    benchmark.extra_info["sessions"] = result.n_sessions
    benchmark.extra_info["effort_s"] = result.effort_s

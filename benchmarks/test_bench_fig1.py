"""Benchmark + regeneration of the paper's Figure 1.

Times the motivational experiment (two session simulations plus the
power-cap checks) and prints the regenerated comparison, with the
paper's numbers for reference.
"""

from __future__ import annotations

from repro.experiments.fig1 import PAPER_COOL_MAX_C, PAPER_HOT_MAX_C, run_fig1


def test_bench_fig1(benchmark, hypo_soc):
    result = benchmark(run_fig1, hypo_soc)

    # The paper's headline facts must hold in the regenerated run.
    assert result.hot_accepted and result.cool_accepted
    assert result.hot_max_c > result.cool_max_c

    benchmark.extra_info["hot_max_c"] = round(result.hot_max_c, 2)
    benchmark.extra_info["cool_max_c"] = round(result.cool_max_c, 2)
    print("\n[fig1] session            power  cap-ok  maxT(ours)  maxT(paper)")
    print(
        f"[fig1] TS1 {'+'.join(result.session_hot):<12} "
        f"{result.hot_power_w:5.1f}W  {str(result.hot_accepted):>6}  "
        f"{result.hot_max_c:10.2f}  {PAPER_HOT_MAX_C:11.2f}"
    )
    print(
        f"[fig1] TS2 {'+'.join(result.session_cool):<12} "
        f"{result.cool_power_w:5.1f}W  {str(result.cool_accepted):>6}  "
        f"{result.cool_max_c:10.2f}  {PAPER_COOL_MAX_C:11.2f}"
    )

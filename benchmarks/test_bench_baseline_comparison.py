"""Benchmark: thermal-aware vs power-constrained scheduling.

Extends the paper's Figure 1 argument to a full-SoC quantitative
comparison on alpha15: pack sessions under a chip-level power cap
chosen to match the thermal-aware schedule's concurrency, then audit
both schedules against the same temperature limit.  The benchmark
records the hot-spot rate of each — the number the power-constrained
approach has no way to control.
"""

from __future__ import annotations

from repro.core.baselines import PowerConstrainedConfig, PowerConstrainedScheduler
from repro.core.safety import audit_schedule
from repro.core.scheduler import ThermalAwareScheduler
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.soc.library import ALPHA15_STC_SCALE

TL_C = 155.0
STCL = 60.0


def test_bench_thermal_aware(benchmark, alpha_soc, alpha_simulator):
    model = SessionThermalModel(
        alpha_soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )
    scheduler = ThermalAwareScheduler(
        alpha_soc, simulator=alpha_simulator, session_model=model
    )
    result = benchmark(scheduler.schedule, TL_C, STCL)
    audit = audit_schedule(result.schedule, TL_C, alpha_simulator)
    assert audit.is_safe
    benchmark.extra_info["length_s"] = result.length_s
    benchmark.extra_info["hot_spot_rate"] = audit.hot_spot_rate
    print(
        f"\n[baseline-cmp] thermal-aware: {result.n_sessions} sessions, "
        f"peak {audit.max_temperature_c:.1f} degC, hot-spot rate "
        f"{audit.hot_spot_rate:.0%}"
    )


def test_bench_power_constrained(benchmark, alpha_soc, alpha_simulator):
    # Cap chosen so the baseline produces a comparable session count to
    # the thermal-aware schedule at (TL, STCL) above.
    thermal = ThermalAwareScheduler(
        alpha_soc,
        simulator=alpha_simulator,
        session_model=SessionThermalModel(
            alpha_soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
        ),
    ).schedule(TL_C, STCL)
    cap = alpha_soc.total_test_power_w() / thermal.n_sessions

    scheduler = PowerConstrainedScheduler(
        alpha_soc, PowerConstrainedConfig(power_limit_w=cap)
    )
    schedule = benchmark(scheduler.schedule)
    audit = audit_schedule(schedule, TL_C, alpha_simulator)
    benchmark.extra_info["length_s"] = schedule.length_s
    benchmark.extra_info["hot_spot_rate"] = audit.hot_spot_rate
    print(
        f"\n[baseline-cmp] power-constrained (cap {cap:.0f} W): "
        f"{len(schedule)} sessions, peak {audit.max_temperature_c:.1f} degC, "
        f"hot-spot rate {audit.hot_spot_rate:.0%} "
        f"({'SAFE' if audit.is_safe else 'UNSAFE'} at TL={TL_C:g})"
    )

"""Scheduling-service benchmarks: sustained throughput and dedup value.

Two questions about ``repro.service``:

* what request rate does a service sustain for a fleet-like burst over
  the real TCP protocol, and how does it compare against handing the
  equivalent work to a :class:`~repro.engine.runner.BatchRunner` in one
  shot (the protocol + queueing overhead must stay a modest tax)?
* how much does in-flight deduplication save on a bursty, repetitive
  workload (many clients asking the same questions at once)?

Run with the rest of the opt-in suite::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_service.py -q
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import ScheduleRequest
from repro.engine import BatchRunner, generate_fleet
from repro.service import AsyncServiceClient, ScheduleServer, ScheduleService

#: Burst size: fleet-like traffic, not a toy ping.
BURST = 96

#: Distinct questions inside the burst; the rest is repetition — the
#: shape of dashboard/CI traffic, where many clients ask alike.
DISTINCT = 12

WORKERS = 4


@pytest.fixture(scope="module")
def fleet_jobs():
    """A deterministic fleet whose questions the burst mirrors."""
    return generate_fleet(DISTINCT, seed=7)


@pytest.fixture(scope="module")
def burst_requests(fleet_jobs):
    """BURST requests cycling over the fleet's DISTINCT questions."""
    distinct = [job.to_request() for job in fleet_jobs]
    return [distinct[i % len(distinct)] for i in range(BURST)]


def _run_burst(requests):
    """One full service lifecycle: boot, TCP burst, drain; returns stats."""

    async def main():
        async with ScheduleService(backend="thread", max_workers=WORKERS) as svc:
            server = ScheduleServer(svc, port=0)
            await server.start()
            try:
                async with await AsyncServiceClient.connect(
                    port=server.port
                ) as client:
                    frames = await client.submit_many(requests, decode=False)
                    stats = await client.stats()
            finally:
                await server.stop()
        return frames, stats

    return asyncio.run(main())


def test_bench_service_sustained_throughput(benchmark, burst_requests):
    """Requests/s for a mixed burst over the real TCP protocol."""
    frames, stats = benchmark(lambda: _run_burst(burst_requests))
    assert len(frames) == BURST
    assert all(f["type"] == "report" for f in frames)
    assert stats["errors"] == 0
    benchmark.extra_info["requests"] = BURST
    benchmark.extra_info["distinct"] = DISTINCT
    benchmark.extra_info["requests_per_second"] = round(
        BURST / benchmark.stats["mean"], 1
    )
    benchmark.extra_info["dedup_hits"] = stats["deduped"]
    benchmark.extra_info["solves_started"] = stats["solves_started"]


def test_bench_service_vs_batch_runner(burst_requests, fleet_jobs):
    """The service answers a repetitive burst competitively vs BatchRunner.

    The batch runner executes the burst as BURST independent jobs (its
    dedup is only the model cache); the service collapses identical
    in-flight requests to DISTINCT solves.  On this workload the
    service's protocol overhead must be more than paid for: it must not
    be slower than the batch path by more than 2x, and its dedup must
    eliminate >= half the solves.
    """
    import dataclasses
    import time

    # The same 96 questions as a batch fleet (unique ids, repeated work).
    jobs = []
    for i in range(BURST):
        jobs.append(
            dataclasses.replace(fleet_jobs[i % DISTINCT], job_id=f"burst-{i}")
        )

    start = time.perf_counter()
    batch = BatchRunner(backend="thread", max_workers=WORKERS).run(jobs)
    batch_s = time.perf_counter() - start
    assert not batch.failed

    start = time.perf_counter()
    frames, stats = _run_burst(burst_requests)
    service_s = time.perf_counter() - start
    assert len(frames) == BURST

    dedup_rate = stats["deduped"] / stats["submitted"]
    print(
        f"\nbatch[thread x{WORKERS}] {batch_s:.2f} s "
        f"({BURST / batch_s:.1f} jobs/s) vs service {service_s:.2f} s "
        f"({BURST / service_s:.1f} req/s), dedup rate {dedup_rate:.2f} "
        f"({stats['solves_started']} solves for {BURST} requests)"
    )
    assert service_s < 2.0 * batch_s, (
        f"service burst took {service_s:.2f} s vs batch {batch_s:.2f} s"
    )
    assert dedup_rate >= 0.5, f"dedup rate only {dedup_rate:.2f}"

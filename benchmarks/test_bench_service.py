"""Scheduling-service benchmarks: throughput, dedup and cache value.

Three questions about ``repro.service``:

* what request rate does a service sustain for a fleet-like burst over
  the real TCP protocol, and how does it compare against handing the
  equivalent work to a :class:`~repro.engine.runner.BatchRunner` in one
  shot (the protocol + queueing overhead must stay a modest tax)?
* how much do in-flight deduplication and the answer cache save on a
  bursty, repetitive workload (many clients asking the same questions)?
* how much faster is an answer-cache **hit** than the miss (full solve)
  path — the repeat-traffic latency the cache exists to eliminate?
  The acceptance floor is a 10x reduction; in practice it is far more.

Run with the rest of the opt-in suite::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_service.py -q
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import AsyncExitStack, contextmanager

import pytest

from repro.api import ScheduleRequest
from repro.engine import BatchRunner, generate_fleet
from repro.service import (
    AsyncServiceClient,
    ChaosProxy,
    FleetRouter,
    ScheduleServer,
    ScheduleService,
    ServiceClient,
)

#: Burst size: fleet-like traffic, not a toy ping.
BURST = 96

#: Distinct questions inside the burst; the rest is repetition — the
#: shape of dashboard/CI traffic, where many clients ask alike.
DISTINCT = 12

WORKERS = 4


@pytest.fixture(scope="module")
def fleet_jobs():
    """A deterministic fleet whose questions the burst mirrors."""
    return generate_fleet(DISTINCT, seed=7)


@pytest.fixture(scope="module")
def burst_requests(fleet_jobs):
    """BURST requests cycling over the fleet's DISTINCT questions."""
    distinct = [job.to_request() for job in fleet_jobs]
    return [distinct[i % len(distinct)] for i in range(BURST)]


def _run_burst(requests, **service_kwargs):
    """One full service lifecycle: boot, TCP burst, drain; returns stats."""

    async def main():
        service_kwargs.setdefault("backend", "thread")
        service_kwargs.setdefault("max_workers", WORKERS)
        async with ScheduleService(**service_kwargs) as svc:
            server = ScheduleServer(svc, port=0)
            await server.start()
            try:
                async with await AsyncServiceClient.connect(
                    port=server.port
                ) as client:
                    frames = await client.submit_many(requests, decode=False)
                    stats = await client.stats()
            finally:
                await server.stop()
        return frames, stats

    return asyncio.run(main())


def test_bench_service_sustained_throughput(benchmark, burst_requests):
    """Requests/s for a mixed burst over the real TCP protocol."""
    frames, stats = benchmark(lambda: _run_burst(burst_requests))
    assert len(frames) == BURST
    assert all(f["type"] == "report" for f in frames)
    assert stats["errors"] == 0
    benchmark.extra_info["requests"] = BURST
    benchmark.extra_info["distinct"] = DISTINCT
    benchmark.extra_info["requests_per_second"] = round(
        BURST / benchmark.stats["mean"], 1
    )
    benchmark.extra_info["dedup_hits"] = stats["deduped"]
    benchmark.extra_info["answer_hits"] = stats["answer_hits"]
    benchmark.extra_info["solves_started"] = stats["solves_started"]
    # Latency percentiles from the service's own streaming histograms
    # (the last benchmark round's stats frame) — tracked in
    # BENCH_service.json alongside the throughput number.
    for family in ("e2e", "solve", "queue_wait"):
        snap = stats["latency"].get(family)
        if not snap or not snap["count"]:
            continue
        for quantile in ("p50", "p95"):
            benchmark.extra_info[f"{family}_{quantile}_ms"] = round(
                snap[quantile] * 1e3, 3
            )


def test_bench_service_vs_batch_runner(burst_requests, fleet_jobs):
    """The service answers a repetitive burst competitively vs BatchRunner.

    The batch runner executes the burst as BURST independent jobs (its
    dedup is only the model cache); the service collapses identical
    requests to DISTINCT solves — concurrent repeats via in-flight
    dedup, later repeats via the answer cache.  On this workload the
    service's protocol overhead must be more than paid for: it must not
    be slower than the batch path by more than 2x, and dedup + cache
    together must eliminate >= half the solves.
    """
    import dataclasses

    # The same 96 questions as a batch fleet (unique ids, repeated work).
    jobs = []
    for i in range(BURST):
        jobs.append(
            dataclasses.replace(fleet_jobs[i % DISTINCT], job_id=f"burst-{i}")
        )

    start = time.perf_counter()
    batch = BatchRunner(backend="thread", max_workers=WORKERS).run(jobs)
    batch_s = time.perf_counter() - start
    assert not batch.failed

    start = time.perf_counter()
    frames, stats = _run_burst(burst_requests)
    service_s = time.perf_counter() - start
    assert len(frames) == BURST

    absorbed = stats["deduped"] + stats["answer_hits"]
    absorbed_rate = absorbed / stats["submitted"]
    print(
        f"\nbatch[thread x{WORKERS}] {batch_s:.2f} s "
        f"({BURST / batch_s:.1f} jobs/s) vs service {service_s:.2f} s "
        f"({BURST / service_s:.1f} req/s), absorbed rate "
        f"{absorbed_rate:.2f} ({stats['deduped']} deduped + "
        f"{stats['answer_hits']} cache hits; {stats['solves_started']} "
        f"solves for {BURST} requests)"
    )
    assert service_s < 2.0 * batch_s, (
        f"service burst took {service_s:.2f} s vs batch {batch_s:.2f} s"
    )
    assert absorbed_rate >= 0.5, f"absorbed rate only {absorbed_rate:.2f}"


#: Coalescing workload: one thermal network, distinct content hashes —
#: a TL-headroom sweep over a 16-core grid, the shape of the paper's
#: parameter studies served as a burst.  Distinct hashes defeat dedup
#: and the answer cache, so what the curve isolates is genuinely the
#: coalescer sharing model builds and memoised GEMMs.
COALESCE_BURST = 16
COALESCE_POINTS = (1, 2, 4, 8, 16)


@pytest.fixture(scope="module")
def coalesce_requests():
    from repro.engine.scenarios import ScenarioSpec

    spec = ScenarioSpec(kind="grid", rows=4, cols=4, power_seed=5)
    return [
        ScheduleRequest(
            scenario=spec, tl_headroom=10.0 + 0.5 * i, stcl_headroom=5.0
        )
        for i in range(COALESCE_BURST)
    ]


def _run_coalesced_burst(requests, max_batch: int):
    """One lifecycle at a given batch bound; one worker keeps the queue
    deep (>= 8 behind the head-of-line solve), which is the regime the
    coalescer exists for."""
    return _run_burst(
        requests,
        max_workers=1,
        max_batch=max_batch,
        coalesce_window_ms=25.0 if max_batch > 1 else 0.0,
    )


def test_bench_service_coalescing_throughput(benchmark, coalesce_requests):
    """Throughput vs ``max_batch``: the coalescing acceptance curve.

    The ISSUE's gate: with the queue deep, coalesced dispatch must at
    least double the ``--max-batch 1`` baseline's throughput while the
    equivalence suite (tests/api/test_batch_equivalence.py) proves the
    answers bit-identical.  The whole curve lands in BENCH_service.json
    so a regression at any batch size is visible, not just at the
    benchmarked point.
    """
    curve = {}
    for max_batch in COALESCE_POINTS:
        best_s = min(  # best-of-3: boots and GC make single runs noisy
            _timed_coalesced_burst(coalesce_requests, max_batch)
            for _ in range(3)
        )
        curve[max_batch] = best_s

    frames, stats = benchmark(
        lambda: _run_coalesced_burst(coalesce_requests, COALESCE_POINTS[-1])
    )
    assert len(frames) == COALESCE_BURST
    assert all(f["type"] == "report" for f in frames)
    assert stats["errors"] == 0
    # Every request solved (nothing was absorbed by dedup or the
    # answer cache) and the coalescer genuinely engaged.
    assert stats["solves_started"] == COALESCE_BURST
    assert stats["coalesced_batches"] >= 1
    assert stats["coalesced_solves"] == COALESCE_BURST

    baseline_s = curve[1]
    coalesced_s = curve[COALESCE_POINTS[-1]]
    speedup = baseline_s / coalesced_s
    points = ", ".join(
        f"x{mb}: {s * 1e3:.1f} ms ({COALESCE_BURST / s:.0f} req/s)"
        for mb, s in curve.items()
    )
    print(f"\ncoalescing curve [{points}] — {speedup:.1f}x vs max_batch=1")
    benchmark.extra_info["requests"] = COALESCE_BURST
    benchmark.extra_info["coalescing_speedup"] = round(speedup, 2)
    for mb, s in curve.items():
        benchmark.extra_info[f"batch{mb}_requests_per_second"] = round(
            COALESCE_BURST / s, 1
        )
    snap = stats["latency"].get("batch_size") or {}
    if snap.get("count"):
        benchmark.extra_info["batch_size_p50"] = snap["p50"]
        benchmark.extra_info["batch_size_max"] = snap["max"]
    assert speedup >= 2.0, (
        f"coalescing only {speedup:.2f}x over the max_batch=1 baseline "
        f"({coalesced_s * 1e3:.1f} ms vs {baseline_s * 1e3:.1f} ms)"
    )


def _timed_coalesced_burst(requests, max_batch: int) -> float:
    start = time.perf_counter()
    frames, stats = _run_coalesced_burst(requests, max_batch)
    elapsed = time.perf_counter() - start
    assert len(frames) == len(requests) and stats["errors"] == 0
    return elapsed


@contextmanager
def _live_server(**service_kwargs):
    """A real TCP server on a background thread; yields its port."""
    started = threading.Event()
    state: dict = {}

    def run() -> None:
        async def main() -> None:
            async with ScheduleService(**service_kwargs) as service:
                server = ScheduleServer(service, port=0)
                await server.start()
                state["port"] = server.port
                state["loop"] = asyncio.get_running_loop()
                state["stop"] = asyncio.Event()
                started.set()
                try:
                    await state["stop"].wait()
                finally:
                    await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, name="bench-serve", daemon=True)
    thread.start()
    assert started.wait(30.0), "service did not boot"
    try:
        yield state["port"]
    finally:
        state["loop"].call_soon_threadsafe(state["stop"].set)
        thread.join(timeout=60.0)


def test_bench_service_cache_hit_latency(benchmark):
    """Answer-cache hit latency vs the miss (full solve) path.

    The ISSUE's acceptance floor: a repeated request must be answered
    >= 10x faster from the cache than by solving.  Measured end to end
    over the real TCP protocol (connect, frame, queue, respond) with
    ``decode=False`` on both sides so the comparison is pure serving
    latency, not client-side schedule revalidation.
    """
    request = ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0)
    with _live_server(backend="thread", max_workers=2) as port:
        with ServiceClient(port=port) as client:
            start = time.perf_counter()
            miss_frame = client.submit(request, decode=False)
            miss_s = time.perf_counter() - start
            assert not miss_frame["report"]["cached"]

            hit_frame = benchmark(lambda: client.submit(request, decode=False))
            assert hit_frame["report"]["cached"]
            stats = client.stats()

    hit_s = benchmark.stats["median"]
    speedup = miss_s / hit_s
    print(
        f"\nmiss (full solve) {miss_s * 1e3:.2f} ms vs cache hit "
        f"{hit_s * 1e3:.3f} ms over TCP: {speedup:.0f}x"
    )
    benchmark.extra_info["miss_latency_ms"] = round(miss_s * 1e3, 3)
    benchmark.extra_info["hit_latency_ms"] = round(hit_s * 1e3, 4)
    benchmark.extra_info["hit_vs_miss_speedup"] = round(speedup, 1)
    benchmark.extra_info["answer_hits"] = stats["answer_hits"]
    hit_snap = stats["latency"]["answer_hit"]
    benchmark.extra_info["hit_p50_ms"] = round(hit_snap["p50"] * 1e3, 4)
    benchmark.extra_info["hit_p95_ms"] = round(hit_snap["p95"] * 1e3, 4)
    assert stats["solves_started"] == 1  # every benchmark round was a hit
    assert speedup >= 10.0, (
        f"cache hit only {speedup:.1f}x faster than the miss path "
        f"({hit_s * 1e3:.3f} ms vs {miss_s * 1e3:.2f} ms)"
    )


def _run_fleet_burst(requests, n_shards: int = 2):
    """One fleet lifecycle: shards + router boot, routed burst, drain."""

    async def main():
        async with AsyncExitStack() as stack:
            servers = []
            for _ in range(n_shards):
                service = await stack.enter_async_context(
                    ScheduleService(backend="thread", max_workers=WORKERS)
                )
                server = ScheduleServer(service, port=0)
                await server.start()
                stack.push_async_callback(server.stop)
                servers.append(server)
            router = FleetRouter(
                [f"127.0.0.1:{s.port}" for s in servers],
                probe_interval_s=None,
            )
            await router.start()
            stack.push_async_callback(router.stop)
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                frames = await client.submit_many(requests, decode=False)
                stats = await client.stats()
            return frames, stats

    return asyncio.run(main())


def test_bench_fleet_throughput(benchmark, burst_requests):
    """Requests/s for the same burst routed across a two-shard fleet.

    The router hop must stay a modest tax over the single-server burst
    (tracked side by side in BENCH_service.json), and fleet-wide dedup
    must hold: identical requests land on one shard, so the whole fleet
    still solves each distinct question once.
    """
    frames, stats = benchmark(lambda: _run_fleet_burst(burst_requests))
    assert len(frames) == BURST
    assert all(f["type"] == "report" for f in frames)
    assert stats["backend"] == "fleet"
    assert stats["healthy_shards"] == 2
    assert stats["solves_started"] == DISTINCT  # fleet-wide dedup held
    benchmark.extra_info["requests"] = BURST
    benchmark.extra_info["shards"] = 2
    benchmark.extra_info["fleet_requests_per_second"] = round(
        BURST / benchmark.stats["mean"], 1
    )
    benchmark.extra_info["solves_started"] = stats["solves_started"]
    benchmark.extra_info["dedup_hits"] = stats["deduped"]
    benchmark.extra_info["answer_hits"] = stats["answer_hits"]


def _failover_recovery_once() -> float:
    """Seconds from killing a request's owning shard to the failover answer."""
    request = ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0)

    async def main() -> float:
        async with AsyncExitStack() as stack:
            servers = []
            proxies = []
            for _ in range(3):
                service = await stack.enter_async_context(
                    ScheduleService(backend="thread", max_workers=2)
                )
                server = ScheduleServer(service, port=0)
                await server.start()
                stack.push_async_callback(server.stop)
                servers.append(server)
                # Every shard sits behind a severable proxy so the kill
                # is a genuine connection reset, whichever shard owns
                # the benchmark request.
                proxy = await stack.enter_async_context(
                    ChaosProxy("127.0.0.1", server.port)
                )
                proxies.append(proxy)
            shards = [f"127.0.0.1:{p.port}" for p in proxies]
            router = FleetRouter(shards, probe_interval_s=None)
            await router.start()
            stack.push_async_callback(router.stop)
            async with await AsyncServiceClient.connect(
                port=router.port
            ) as client:
                await client.submit(request)  # warm onto the owner
                owner = router.ring.owner(request.content_hash())
                index = shards.index(owner)
                start = time.perf_counter()
                proxies[index].sever()
                await servers[index].stop()
                report = await client.submit(request)  # fails over
                elapsed = time.perf_counter() - start
                assert report.n_sessions >= 1
                assert router.router_counters()["failovers"] >= 1
            return elapsed

    return asyncio.run(main())


def test_bench_fleet_failover_recovery(benchmark):
    """Time from a shard kill to the first successful failover answer.

    The interval a client actually experiences: the owning shard dies
    mid-conversation and the next identical request must come back from
    a neighbour — re-dial discovery, ring walk, and the (cold-cache)
    re-solve included.
    """
    recoveries: list[float] = []
    benchmark.pedantic(
        lambda: recoveries.append(_failover_recovery_once()),
        rounds=3,
        iterations=1,
    )
    recoveries.sort()
    median = recoveries[len(recoveries) // 2]
    print(
        f"\nfailover recovery: median {median * 1e3:.1f} ms over "
        f"{len(recoveries)} kills (worst {recoveries[-1] * 1e3:.1f} ms)"
    )
    benchmark.extra_info["failover_recovery_ms"] = round(median * 1e3, 2)
    benchmark.extra_info["failover_recovery_worst_ms"] = round(
        recoveries[-1] * 1e3, 2
    )
    benchmark.extra_info["kills"] = len(recoveries)
    assert median < 30.0, f"failover took {median:.1f} s"


def _median_hit_latency(port: int, request: ScheduleRequest, rounds: int) -> float:
    """Median TCP round-trip of an answer-cache hit, over one connection."""
    import statistics

    with ServiceClient(port=port) as client:
        miss = client.submit(request, decode=False)  # populate the cache
        assert not miss["report"]["cached"]
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            frame = client.submit(request, decode=False)
            samples.append(time.perf_counter() - start)
            assert frame["report"]["cached"]
    return statistics.median(samples)


def test_bench_service_tracing_overhead():
    """Tracing + histograms must not tax the hit path beyond 10%.

    The cached-hit round-trip is the service's fastest path, so it is
    where per-request observability overhead (trace stamping, two
    histogram observations, the e2e clock reads) would show first.
    ``observability=False`` is exactly the pre-tracing code path — the
    traced hit median must stay within 10% of it (plus a 200 us
    absolute floor: at ~100 us round-trips, scheduler jitter on a
    loaded CI box dwarfs any multiplicative bound).
    """
    request = ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0)
    rounds = 300

    with _live_server(
        backend="thread", max_workers=2, observability=False
    ) as port:
        untraced_s = _median_hit_latency(port, request, rounds)
    with _live_server(backend="thread", max_workers=2) as port:
        traced_s = _median_hit_latency(port, request, rounds)

    overhead = traced_s / untraced_s - 1.0
    print(
        f"\ncache hit untraced {untraced_s * 1e6:.0f} us vs traced "
        f"{traced_s * 1e6:.0f} us ({overhead * +100.0:.1f}% overhead)"
    )
    assert traced_s <= untraced_s * 1.10 + 200e-6, (
        f"tracing overhead {overhead * 100.0:.1f}%: traced hit "
        f"{traced_s * 1e6:.0f} us vs untraced {untraced_s * 1e6:.0f} us"
    )

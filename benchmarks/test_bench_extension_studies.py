"""Benchmarks for the extension studies (DESIGN.md section 7).

Each study is timed end to end; its headline quality numbers land in
``extra_info`` so the benchmark report doubles as a results table.
"""

from __future__ import annotations

from repro.experiments.heterogeneous import run_heterogeneous_study
from repro.experiments.m1_validation import run_m1_validation
from repro.experiments.model_accuracy import run_model_accuracy
from repro.experiments.optimality import run_optimality_study


def test_bench_m1_validation(benchmark, alpha_soc):
    report = benchmark(
        run_m1_validation, alpha_soc, 165.0, 60.0, (0.0,), 5e-3
    )
    assert report.ambient_bound_holds
    assert report.back_to_back_holds
    benchmark.extra_info["min_margin_c"] = round(
        report.with_carry_over[0].min_margin_c, 2
    )


def test_bench_model_accuracy(benchmark, alpha_soc):
    rows = benchmark(run_model_accuracy, alpha_soc, 150, 3)
    paper = next(r for r in rows if r.variant.startswith("paper"))
    assert paper.spearman_rho > 0.7
    benchmark.extra_info["paper_spearman_rho"] = round(paper.spearman_rho, 3)
    benchmark.extra_info["paper_screening_accuracy"] = round(
        paper.screening_accuracy, 3
    )
    print("\n[model-accuracy] " + " | ".join(
        f"{r.variant}: rho={r.spearman_rho:.3f}" for r in rows
    ))


def test_bench_optimality(benchmark):
    cases = benchmark(run_optimality_study, ((6, 1), (7, 3), (8, 5)))
    assert all(c.gap >= 0 for c in cases)
    benchmark.extra_info["total_gap"] = sum(c.gap for c in cases)


def test_bench_heterogeneous(benchmark):
    points = benchmark(run_heterogeneous_study, None, 165.0, (20.0, 60.0, 100.0))
    assert all(p.wasted_s >= 0.0 for p in points)
    benchmark.extra_info["max_wasted_s"] = round(
        max(p.wasted_s for p in points), 2
    )


def test_bench_grid_crosscheck(benchmark, alpha_soc):
    from repro.experiments.grid_crosscheck import run_grid_crosscheck

    report = benchmark(run_grid_crosscheck, alpha_soc, 30, 17, 32)
    assert report.spearman_rho > 0.9
    benchmark.extra_info["spearman_rho"] = round(report.spearman_rho, 3)
    benchmark.extra_info["mean_peak_ratio"] = round(report.mean_peak_ratio, 3)


def test_bench_refinement(benchmark, alpha_soc):
    from repro.experiments.refinement import run_refinement_study

    points = benchmark(
        run_refinement_study, alpha_soc, 165.0, (0.0, 10.0), (20.0, 60.0)
    )
    refine_points = [p for p in points if p.mechanism == "refine"]
    assert refine_points[-1].length_s <= refine_points[0].length_s
    benchmark.extra_info["refined_length_s"] = refine_points[-1].length_s


def test_bench_transient_scheduling(benchmark, alpha_soc):
    from repro.experiments.transient_scheduling import run_transient_scheduling

    points = benchmark(run_transient_scheduling, alpha_soc, ((165.0, 60.0),))
    steady = next(p for p in points if p.validation == "steady")
    transient = next(p for p in points if p.validation == "transient")
    assert transient.length_s <= steady.length_s
    benchmark.extra_info["steady_length_s"] = steady.length_s
    benchmark.extra_info["transient_length_s"] = transient.length_s

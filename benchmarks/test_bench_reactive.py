"""Reactive-loop benchmarks: guard-decision latency and event throughput.

Two questions about ``repro.reactive``:

* how long does one **guard decision** take — a `ThermalGuard.update`
  call (state classification + hysteresis + sliding-window trend fit)?
  This is the closed-loop control overhead per sensor sample, so it
  must stay microseconds: the virtual sensor emits one sample per
  integration step and a real-sensor adapter would run it per reading.
* how many **events per second** does a full closed-loop run sustain —
  schedule in, bit-reproducible timeline out — with the transient
  solver doing the actual physics underneath?

Run with the rest of the opt-in suite::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_reactive.py -q

The CI ``reactive-smoke`` job emits these as ``BENCH_reactive.json``.
"""

from __future__ import annotations

import pytest

from repro.api import ScheduleRequest, execute_request
from repro.reactive import (
    GuardConfig,
    ReactiveConfig,
    TemperatureSample,
    ThermalGuard,
    run_schedule_result,
)

#: Thresholds the worked example's ~53.3 C open-loop peak must cross,
#: so the benchmarked run exercises the throttle/reorder machinery.
GUARD = GuardConfig(elevated_c=49.0, critical_c=53.0, hysteresis_c=1.5)

#: Samples per guard-latency benchmark round.
SAMPLES = 2_000


@pytest.fixture(scope="module")
def result():
    report = execute_request(
        ScheduleRequest(soc="worked_example6", tl_c=80.0, stcl=60.0)
    )
    return report.result


@pytest.fixture(scope="module")
def sample_stream():
    """A deterministic saw-tooth crossing both thresholds repeatedly."""
    samples = []
    for i in range(SAMPLES):
        phase = i % 100
        temp = 45.0 + 0.2 * phase if phase < 50 else 55.0 - 0.2 * (phase - 50)
        samples.append(
            TemperatureSample(
                time_s=i * 0.005,
                temperatures_c={"B1": temp, "B2": temp - 2.0, "B3": 40.0},
            )
        )
    return samples


def test_bench_guard_decision_latency(benchmark, sample_stream):
    """Per-sample guard decision: classify + hysteresis + trend fit."""

    def decide():
        guard = ThermalGuard(GUARD)
        for sample in sample_stream:
            guard.update(sample)
        return guard

    guard = benchmark(decide)
    # The stream crosses both thresholds every cycle; the guard must
    # have actually worked, not short-circuited.
    assert sum(guard.transitions.values()) >= SAMPLES // 100
    # Record the per-decision latency alongside the batch timing.
    benchmark.extra_info["samples_per_round"] = SAMPLES
    benchmark.extra_info["guard_decisions_per_s"] = (
        SAMPLES / benchmark.stats.stats.mean
    )


def test_bench_closed_loop_events_per_second(benchmark, result):
    """Full closed-loop run: schedule -> bit-reproducible timeline."""

    def run():
        return run_schedule_result(
            result,
            guard_config=GUARD,
            config=ReactiveConfig(chunk_s=0.1),
        )

    report = benchmark(run)
    assert report.events[-1].kind == "done"
    assert report.throttles > 0
    benchmark.extra_info["events_per_run"] = len(report.events)
    benchmark.extra_info["events_per_s"] = (
        len(report.events) / benchmark.stats.stats.mean
    )
    benchmark.extra_info["samples_per_run"] = report.samples
    benchmark.extra_info["simulated_seconds_per_wall_second"] = (
        report.total_time_s / benchmark.stats.stats.mean
    )

"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each benchmark times a full (TL, STCL) scheduling run under one design
variant and records the quality metrics (length, effort) in
``extra_info`` so variants can be compared from the benchmark report:

* weight escalation factor (1.0 = no feedback, 1.1 = paper, 1.5, 2.0);
* session-model modifications M2 / M3 toggled off;
* vertical path included in the session model;
* candidate scan order.
"""

from __future__ import annotations

import pytest

from repro.core.scheduler import SchedulerConfig, ThermalAwareScheduler
from repro.core.session_model import SessionModelConfig, SessionThermalModel
from repro.errors import ScheduleInfeasibleError
from repro.soc.library import ALPHA15_STC_SCALE

#: A mid-grid operating point where feedback matters (violations occur).
TL_C = 155.0
STCL = 60.0


@pytest.mark.parametrize("factor", [1.0, 1.1, 1.5, 2.0])
def test_bench_weight_factor(benchmark, alpha_soc, alpha_simulator, factor):
    """Weight escalation ablation (paper rule: 1.1)."""
    model = SessionThermalModel(
        alpha_soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )
    scheduler = ThermalAwareScheduler(
        alpha_soc,
        simulator=alpha_simulator,
        session_model=model,
        config=SchedulerConfig(weight_factor=factor, max_discards=500),
    )

    def run():
        try:
            return scheduler.schedule(TL_C, STCL)
        except ScheduleInfeasibleError:
            return None  # factor=1.0 may fail to converge: that IS the result

    result = benchmark(run)
    if result is not None:
        benchmark.extra_info["length_s"] = result.length_s
        benchmark.extra_info["effort_s"] = result.effort_s
        benchmark.extra_info["converged"] = True
    else:
        benchmark.extra_info["converged"] = False


@pytest.mark.parametrize(
    "label,config",
    [
        ("paper", SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)),
        (
            "no-M2-keep-active-active",
            SessionModelConfig(
                drop_active_active=False, stc_scale=ALPHA15_STC_SCALE
            ),
        ),
        (
            "no-M3-float-passive",
            SessionModelConfig(ground_passive=False, stc_scale=ALPHA15_STC_SCALE),
        ),
        (
            "with-vertical-path",
            SessionModelConfig(include_vertical=True, stc_scale=ALPHA15_STC_SCALE),
        ),
    ],
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_bench_session_model_variant(
    benchmark, alpha_soc, alpha_simulator, label, config
):
    """Session-model modification ablations (M2, M3, vertical path)."""
    model = SessionThermalModel(alpha_soc, config)
    scheduler = ThermalAwareScheduler(
        alpha_soc, simulator=alpha_simulator, session_model=model
    )
    result = benchmark(scheduler.schedule, TL_C, STCL)
    assert result.max_temperature_c < TL_C  # all variants stay safe
    benchmark.extra_info["variant"] = label
    benchmark.extra_info["length_s"] = result.length_s
    benchmark.extra_info["effort_s"] = result.effort_s


@pytest.mark.parametrize(
    "order", ["input", "power_desc", "area_asc", "density_desc"]
)
def test_bench_candidate_order(benchmark, alpha_soc, alpha_simulator, order):
    """Candidate scan order sensitivity (paper: input order)."""
    model = SessionThermalModel(
        alpha_soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )
    scheduler = ThermalAwareScheduler(
        alpha_soc,
        simulator=alpha_simulator,
        session_model=model,
        config=SchedulerConfig(candidate_order=order),
    )
    result = benchmark(scheduler.schedule, TL_C, STCL)
    benchmark.extra_info["length_s"] = result.length_s
    benchmark.extra_info["effort_s"] = result.effort_s

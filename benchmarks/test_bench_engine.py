"""Batch-engine benchmarks: fleet throughput, backend speedup, cache value.

Three questions about the ``repro.engine`` subsystem, answered over a
120-scenario generated fleet:

* how fast does one worker chew through a fleet (jobs/s)?
* does the multiprocessing backend beat serial wall-clock? (skipped on
  single-CPU machines, where a process pool cannot win by definition);
* does the shared thermal-model cache actually hit, and what does it
  save against the build-everything-per-job ablation?
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import BatchRunner, generate_fleet

#: Acceptance floor: the engine must handle >= 100-scenario fleets.
FLEET_SIZE = 120


@pytest.fixture(scope="module")
def fleet():
    """The shared 120-job fleet (deterministic: seed 0)."""
    return generate_fleet(FLEET_SIZE, seed=0)


def _timed_run(fleet, **runner_kwargs):
    runner = BatchRunner(**runner_kwargs)
    start = time.perf_counter()
    batch = runner.run(fleet)
    return batch, time.perf_counter() - start


def test_bench_serial_fleet_throughput(benchmark, fleet):
    """End-to-end serial scheduling of the whole fleet."""
    batch = benchmark(lambda: BatchRunner(backend="serial").run(fleet))
    assert batch.n_jobs == FLEET_SIZE
    assert not batch.failed, [r.error for r in batch.failed]
    benchmark.extra_info["jobs"] = batch.n_jobs
    benchmark.extra_info["jobs_per_second"] = round(batch.jobs_per_second, 1)
    benchmark.extra_info["cache_hit_rate"] = round(batch.cache_hit_rate, 3)
    benchmark.extra_info["steady_solves"] = batch.total_steady_solves


def test_bench_multiworker_speedup(fleet):
    """The multiprocessing backend must beat serial wall-clock.

    A process pool cannot outrun one worker on a single-CPU machine, so
    the comparison only runs where parallelism is physically available.
    """
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(f"needs >= 2 CPUs for a meaningful speedup (have {cpus})")

    serial_batch, serial_s = _timed_run(fleet, backend="serial")
    process_batch, process_s = _timed_run(
        fleet, backend="process", max_workers=cpus
    )
    assert not serial_batch.failed and not process_batch.failed
    # Identical work was done (same schedules), only faster.
    for a, b in zip(serial_batch.results, process_batch.results):
        assert a.result.length_s == b.result.length_s
    speedup = serial_s / process_s
    print(
        f"\nserial {serial_s:.2f} s vs process[{cpus}] {process_s:.2f} s "
        f"-> speedup {speedup:.2f}x"
    )
    assert process_s < serial_s, (
        f"process backend ({process_s:.2f} s, {cpus} workers) did not beat "
        f"serial ({serial_s:.2f} s)"
    )


def test_bench_cache_effectiveness(fleet):
    """Fleets sharing floorplans must hit the model cache."""
    cached_batch, cached_s = _timed_run(fleet, backend="serial")
    uncached_batch, uncached_s = _timed_run(
        fleet, backend="serial", use_cache=False
    )
    assert not cached_batch.failed and not uncached_batch.failed

    # The generated fleet draws floorplans/packages from small pools, so
    # a 120-job fleet shares many (floorplan, package) pairs.
    assert cached_batch.cache_hits > 0
    assert cached_batch.cache_hit_rate > 0.25
    assert uncached_batch.cache_hits == 0

    stats = cached_batch.cache_stats
    assert stats is not None and stats.hits == cached_batch.cache_hits
    print(
        f"\ncache hit rate {cached_batch.cache_hit_rate * 100:.0f}% "
        f"({stats.entries} distinct models for {FLEET_SIZE} jobs); "
        f"cached {cached_s:.2f} s vs uncached {uncached_s:.2f} s"
    )


def test_bench_thread_backend_correctness_under_sharing(fleet):
    """Thread workers share one cache; results must match serial exactly."""
    serial_batch, _ = _timed_run(fleet, backend="serial")
    thread_batch, _ = _timed_run(fleet, backend="thread", max_workers=4)
    assert not thread_batch.failed
    for a, b in zip(serial_batch.results, thread_batch.results):
        assert a.result.length_s == b.result.length_s
        assert a.result.max_temperature_c == pytest.approx(
            b.result.max_temperature_c
        )
    # Concurrent workers may race to build the same key (each records a
    # miss, the loser's build is discarded), so hits can dip below the
    # serial count — but the distinct-model count must match exactly.
    assert thread_batch.cache_hits > 0
    assert thread_batch.cache_stats.entries == serial_batch.cache_stats.entries

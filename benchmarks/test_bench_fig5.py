"""Benchmark + regeneration of the paper's Figure 5.

Times the three-TL sweep (27 scheduling runs) and prints the length and
effort series exactly as the figure plots them.
"""

from __future__ import annotations

from repro.experiments.sweep import FIG5_TL_VALUES_C, PAPER_STCL_VALUES, run_sweep


def test_bench_fig5(benchmark, alpha_soc):
    grid = benchmark(
        run_sweep,
        soc=alpha_soc,
        tl_values_c=FIG5_TL_VALUES_C,
        stcl_values=PAPER_STCL_VALUES,
    )

    assert len(grid.points) == len(FIG5_TL_VALUES_C) * len(PAPER_STCL_VALUES)
    for point in grid.points:
        assert point.max_temperature_c < point.tl_c

    print("\n[fig5] STCL  " + "  ".join(
        f"len(TL={tl:g}) eff(TL={tl:g})" for tl in FIG5_TL_VALUES_C
    ))
    for stcl in grid.stcl_values:
        cells = []
        for tl in FIG5_TL_VALUES_C:
            point = grid.at(tl, stcl)
            cells.append(f"{point.length_s:11g}  {point.effort_s:11g}")
        print(f"[fig5] {stcl:4g}  " + "  ".join(cells))

"""Reduced-order superposition benchmarks: the candidate-solve hot path.

Four questions, on the largest builtin SoC (alpha15) and a fleet:

* how much faster is one block-level solve than the dense path?
* how much faster is *batched* candidate evaluation (the phase-A /
  what-if pattern) than per-session dense solves?  (acceptance: >= 5x)
* does end-to-end schedule generation get measurably faster with the
  reduced path, while deciding exactly the same schedule?
* what does fleet throughput look like with the operator shared
  through the thermal-model cache?

Run with ``--benchmark-json BENCH_reduced.json`` (the CI benchmarks job
does) to track the perf trajectory across PRs.
"""

from __future__ import annotations

import random
import statistics
import time

import pytest

from repro.core.scheduler import SchedulerConfig, ThermalAwareScheduler
from repro.engine import BatchRunner, generate_fleet

#: Candidate power maps per batched evaluation (a generous phase-B
#: what-if sweep; phase A alone is one map per core).
N_CANDIDATES = 256

#: Acceptance floor for batched candidate evaluation vs dense solves.
MIN_BATCH_SPEEDUP = 5.0


def _candidate_maps(soc, n=N_CANDIDATES, seed=0):
    """Random candidate-session power maps over the SoC's cores."""
    rng = random.Random(seed)
    names = list(soc.core_names)
    return [
        soc.session_power_map(rng.sample(names, rng.randint(1, len(names))))
        for _ in range(n)
    ]


def _median_time(fn, repeats=5):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def test_bench_single_dense_solve(benchmark, alpha_soc, alpha_simulator):
    """Baseline: one full-network steady-state solve."""
    power = alpha_soc.test_power_map()
    field = benchmark(lambda: alpha_simulator.steady_state(power))
    benchmark.extra_info["max_temperature_c"] = round(field.max_temperature_c(), 2)


def test_bench_single_reduced_solve(benchmark, alpha_soc, alpha_simulator):
    """One block-level matvec against the influence operator."""
    alpha_simulator.reduced_operator  # extraction is setup, not hot path
    power = alpha_soc.test_power_map()
    field = benchmark(lambda: alpha_simulator.block_steady_state(power))
    benchmark.extra_info["max_temperature_c"] = round(field.max_temperature_c(), 2)


def test_bench_batched_candidate_evaluation(benchmark, alpha_soc, alpha_simulator):
    """All candidate maps in one GEMM (the phase-A pattern)."""
    alpha_simulator.reduced_operator
    maps = _candidate_maps(alpha_soc)
    batch = benchmark(lambda: alpha_simulator.block_steady_state_batch(maps))
    benchmark.extra_info["n_candidates"] = len(maps)
    benchmark.extra_info["hottest_c"] = round(
        float(batch.max_temperatures_c().max()), 2
    )


def test_bench_batched_vs_dense_speedup(alpha_soc, alpha_simulator):
    """Acceptance: batched reduced evaluation >= 5x over dense solves."""
    alpha_simulator.reduced_operator
    maps = _candidate_maps(alpha_soc)

    def dense():
        for power_map in maps:
            alpha_simulator.steady_state(power_map)

    dense_s = _median_time(dense)
    reduced_s = _median_time(
        lambda: alpha_simulator.block_steady_state_batch(maps)
    )
    speedup = dense_s / reduced_s
    print(
        f"\n{len(maps)} candidate sessions: dense {dense_s * 1e3:.2f} ms, "
        f"batched reduced {reduced_s * 1e3:.2f} ms -> {speedup:.1f}x"
    )
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batched candidate evaluation speedup {speedup:.1f}x below the "
        f"{MIN_BATCH_SPEEDUP:.0f}x acceptance floor"
    )


def test_bench_schedule_reduced(benchmark, alpha_soc, alpha_simulator, alpha_session_model):
    """End-to-end schedule generation on the reduced path."""
    scheduler = ThermalAwareScheduler(
        alpha_soc,
        simulator=alpha_simulator,
        session_model=alpha_session_model,
        config=SchedulerConfig(steady_path="reduced"),
    )
    result = benchmark(lambda: scheduler.schedule(tl_c=165.0, stcl=60.0))
    benchmark.extra_info["n_sessions"] = result.n_sessions
    benchmark.extra_info["steady_solves"] = result.steady_solves


def test_bench_schedule_dense(benchmark, alpha_soc, alpha_simulator, alpha_session_model):
    """End-to-end schedule generation on the dense path (baseline)."""
    scheduler = ThermalAwareScheduler(
        alpha_soc,
        simulator=alpha_simulator,
        session_model=alpha_session_model,
        config=SchedulerConfig(steady_path="dense"),
    )
    result = benchmark(lambda: scheduler.schedule(tl_c=165.0, stcl=60.0))
    benchmark.extra_info["n_sessions"] = result.n_sessions
    benchmark.extra_info["steady_solves"] = result.steady_solves


def test_bench_schedule_paths_agree_and_reduced_wins(
    alpha_soc, alpha_simulator, alpha_session_model
):
    """Same schedule out of both paths; reduced must not be slower."""

    def run(path):
        scheduler = ThermalAwareScheduler(
            alpha_soc,
            simulator=alpha_simulator,
            session_model=alpha_session_model,
            config=SchedulerConfig(steady_path=path),
        )
        return scheduler.schedule(tl_c=165.0, stcl=60.0)

    reduced = run("reduced")
    dense = run("dense")
    assert [s.cores for s in reduced.schedule] == [
        s.cores for s in dense.schedule
    ]
    assert reduced.length_s == dense.length_s
    assert reduced.effort_s == dense.effort_s
    assert reduced.steady_solves == dense.steady_solves

    reduced_s = _median_time(lambda: run("reduced"))
    dense_s = _median_time(lambda: run("dense"))
    print(
        f"\nschedule wall time: reduced {reduced_s * 1e3:.2f} ms vs "
        f"dense {dense_s * 1e3:.2f} ms ({dense_s / reduced_s:.2f}x)"
    )
    # The measured win is ~1.3x — real but small enough that a noisy
    # shared CI runner could flip a strict comparison, so allow 10%
    # timing noise; the printed ratio is the tracked number.
    assert reduced_s < dense_s * 1.1, (
        f"reduced path ({reduced_s * 1e3:.2f} ms) fell behind dense "
        f"({dense_s * 1e3:.2f} ms) by more than timing noise"
    )


def test_bench_fleet_throughput_reduced(benchmark):
    """Fleet throughput with the operator shared through the cache."""
    fleet = generate_fleet(60, seed=0)
    batch = benchmark(lambda: BatchRunner(backend="serial").run(fleet))
    assert not batch.failed, [r.error for r in batch.failed]
    benchmark.extra_info["jobs"] = batch.n_jobs
    benchmark.extra_info["jobs_per_second"] = round(batch.jobs_per_second, 1)
    benchmark.extra_info["steady_solves"] = batch.total_steady_solves

"""Benchmark + regeneration of the paper's Table 1.

Times the full 81-point (TL, STCL) grid — the paper's whole evaluation
— and prints every regenerated row next to the paper's values.
"""

from __future__ import annotations

from repro.experiments.sweep import run_sweep
from repro.experiments.table1 import PAPER_TABLE1


def test_bench_table1(benchmark, alpha_soc):
    grid = benchmark(run_sweep, soc=alpha_soc)

    assert len(grid.points) == 81
    for point in grid.points:
        assert point.max_temperature_c < point.tl_c
        assert point.effort_s >= point.length_s - 1e-9

    benchmark.extra_info["total_simulated_seconds"] = sum(
        p.effort_s for p in grid.points
    )
    print(
        "\n[table1]  TL  STCL  len  eff   maxT     "
        "paper: len  eff   maxT"
    )
    for point in grid.points:
        paper = PAPER_TABLE1[(int(point.tl_c), int(point.stcl))]
        print(
            f"[table1] {point.tl_c:4g}  {point.stcl:4g}  "
            f"{point.length_s:3g}  {point.effort_s:3g}  {point.max_temperature_c:6.2f}"
            f"          {paper[0]:3d}  {paper[1]:3d}  {paper[2]:6.2f}"
        )

"""``python -m repro`` — the umbrella CLI without installed entry points.

Delegates to :func:`repro.cli.repro_main`, so every subcommand
(``schedule``, ``solve``, ``batch``) works from a source checkout::

    PYTHONPATH=src python -m repro solve --soc alpha15 --tl 165 --stcl 60
"""

from __future__ import annotations

import sys

from .cli import repro_main

if __name__ == "__main__":
    sys.exit(repro_main())

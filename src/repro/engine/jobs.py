"""Job specifications and results for the batch scheduling engine.

A :class:`JobSpec` pairs a :class:`~repro.engine.scenarios.ScenarioSpec`
(the SoC description) with the scheduling question asked of it: the
temperature limit ``TL``, the session-thermal-characteristic limit
``STCL`` and the scheduler-variant knobs.  Limits can be given
absolutely or as *headrooms* relative to the scenario's own thermal
regime; headrooms keep generated fleets feasible by construction.

A :class:`JobResult` is the complete record of one executed job:
the resolved limits, the :class:`~repro.core.scheduler.ScheduleResult`
(on success), the failure (on error — batch runs never die because one
scenario was infeasible), wall-clock timing, simulation-effort metrics
and whether the job's thermal model came out of the shared cache.

Both are frozen dataclasses of picklable content so they cross process
boundaries unchanged, and both round-trip through plain dicts (and
therefore through the JSONL archives the runner writes).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Literal, Mapping

from ..core.scheduler import ScheduleResult
from ..core.serialize import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    result_from_dict,
    result_to_dict,
)
from ..errors import ReproError, SchedulingError
from ..soc.system import SocUnderTest
from ..spec_utils import FrozenParams, hashable_params, validate_limit_fields
from .scenarios import ScenarioSpec


def _solver_needs_stcl(name: str) -> bool:
    """Whether the named solver's capability flag demands an STCL.

    Unknown names are let through here — a solver may be registered
    later or only in the worker process; the solve path re-checks and
    turns a genuinely missing solver into a per-job error record.
    """
    from ..api.solvers import get_solver  # deferred: api imports engine

    try:
        return get_solver(name).needs_stcl
    except ReproError:
        return False


@dataclass(frozen=True)
class JobSpec:
    """One scheduling question: a scenario plus limits and knobs.

    Exactly one of (``tl_c``, ``tl_headroom``) must be set.  An STCL
    (one of ``stcl``, ``stcl_headroom``) is required when the job's
    solver uses the STC heuristic (the default thermal-aware solver
    does) and optional otherwise — matching
    :class:`~repro.api.ScheduleRequest`, so the same job expressed
    through either front door behaves identically.

    Attributes
    ----------
    job_id:
        Unique identifier within a batch.
    scenario:
        Declarative SoC description.
    tl_c:
        Absolute temperature limit (Celsius).
    tl_headroom:
        Alternative: TL sits ``headroom x`` the hottest
        singleton-session temperature *rise* above ambient
        (``TL = ambient + headroom * (max BCMT - ambient)``; > 1
        guarantees phase A passes).
    stcl:
        Absolute session-thermal-characteristic limit.
    stcl_headroom:
        Alternative: ``STCL = headroom x`` the worst singleton STC
        (> 1 keeps every core individually schedulable).
    solver:
        Registered solver name the job dispatches to (see
        :func:`repro.api.available_solvers`); defaults to the paper's
        thermal-aware algorithm, so archives written before the solver
        field existed load unchanged.
    solver_params:
        Extra per-solver parameters (merged over the scheduler-variant
        knobs below for the thermal-aware solver; passed verbatim to
        every other solver).
    weight_factor, candidate_order, validation:
        Scheduler-variant knobs (see
        :class:`~repro.core.scheduler.SchedulerConfig`); only
        meaningful for ``solver="thermal_aware"``.
    include_vertical:
        Session-model ablation switch.
    stc_scale:
        STC normalisation; ``None`` uses the scenario's calibrated
        default.
    """

    job_id: str
    scenario: ScenarioSpec
    tl_c: float | None = None
    tl_headroom: float | None = None
    stcl: float | None = None
    stcl_headroom: float | None = None
    solver: str = "thermal_aware"
    solver_params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    weight_factor: float = 1.1
    candidate_order: str = "input"
    validation: Literal["steady", "transient"] = "steady"
    include_vertical: bool = False
    stc_scale: float | None = None

    def __post_init__(self) -> None:
        if not self.solver or not isinstance(self.solver, str):
            raise SchedulingError(
                f"job {self.job_id!r}: solver must be a non-empty name, "
                f"got {self.solver!r}"
            )
        object.__setattr__(
            self, "solver_params", FrozenParams(self.solver_params or {})
        )
        validate_limit_fields(
            tl_c=self.tl_c,
            tl_headroom=self.tl_headroom,
            stcl=self.stcl,
            stcl_headroom=self.stcl_headroom,
            error_cls=SchedulingError,
            prefix=f"job {self.job_id!r}: ",
        )
        if (
            self.stcl is None
            and self.stcl_headroom is None
            and _solver_needs_stcl(self.solver)
        ):
            raise SchedulingError(
                f"job {self.job_id!r}: exactly one of stcl / stcl_headroom is "
                f"required for solver {self.solver!r}"
            )

    def __hash__(self) -> int:
        # The generated hash would raise on the dict-typed
        # solver_params field; hash a canonical frozen view instead.
        return hash(
            (
                self.job_id,
                self.scenario,
                self.tl_c,
                self.tl_headroom,
                self.stcl,
                self.stcl_headroom,
                self.solver,
                hashable_params(self.solver_params),
                self.weight_factor,
                self.candidate_order,
                self.validation,
                self.include_vertical,
                self.stc_scale,
            )
        )

    def to_request(self) -> "ScheduleRequest":
        """The :class:`~repro.api.ScheduleRequest` this job asks.

        The scheduler-variant knobs (``weight_factor`` etc.) only apply
        to the thermal-aware solver; other solvers receive
        ``solver_params`` alone, so a fleet can flip between solvers
        without tripping parameter validation.
        """
        from ..api.request import ScheduleRequest  # deferred: api imports engine

        if self.solver == "thermal_aware":
            params = {
                "weight_factor": self.weight_factor,
                "candidate_order": self.candidate_order,
                "validation": self.validation,
                **self.solver_params,
            }
        else:
            params = dict(self.solver_params)
        return ScheduleRequest(
            scenario=self.scenario,
            tl_c=self.tl_c,
            tl_headroom=self.tl_headroom,
            stcl=self.stcl,
            stcl_headroom=self.stcl_headroom,
            solver=self.solver,
            params=params,
            include_vertical=self.include_vertical,
            stc_scale=self.stc_scale,
        )


#: Terminal states of an executed job.
JobStatus = Literal["ok", "error"]


@dataclass(frozen=True)
class JobResult:
    """The complete record of one executed batch job.

    Attributes
    ----------
    spec:
        The job as submitted.
    status:
        ``"ok"`` or ``"error"``.
    tl_c, stcl:
        The resolved absolute limits (``nan`` if resolution itself
        failed).
    result:
        The scheduling result (``None`` on error).
    error:
        Failure description (``None`` on success).
    elapsed_s:
        Wall-clock execution time of this job in its worker.
    steady_solves:
        Linear-system solves the job issued (model build + scheduling).
    cache_hit:
        Whether the job's thermal network + factorisation came out of
        the shared model cache.
    timings:
        Per-phase wall-clock durations in seconds, carried over from
        the solve report (``model_build``, ``limit_resolve``,
        ``solver``, ``total``, ``worker``).  ``None`` for error records
        and for archives predating the tracing layer.
    """

    spec: JobSpec
    status: JobStatus
    tl_c: float
    stcl: float
    result: ScheduleResult | None
    error: str | None
    elapsed_s: float
    steady_solves: int = 0
    cache_hit: bool = False
    timings: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        if self.timings is not None:
            object.__setattr__(
                self,
                "timings",
                {str(k): float(v) for k, v in dict(self.timings).items()},
            )
        if self.status == "ok" and self.result is None:
            raise SchedulingError(
                f"job {self.spec.job_id!r}: status 'ok' requires a result"
            )
        if self.status == "error" and self.error is None:
            raise SchedulingError(
                f"job {self.spec.job_id!r}: status 'error' requires an error"
            )

    @property
    def ok(self) -> bool:
        """True when the job produced a schedule."""
        return self.status == "ok"

    @property
    def length_s(self) -> float:
        """Test schedule length (nan on error)."""
        return self.result.length_s if self.result is not None else math.nan

    @property
    def effort_s(self) -> float:
        """Simulation effort (nan on error)."""
        return self.result.effort_s if self.result is not None else math.nan

    def describe(self) -> str:
        """One-line human-readable job summary."""
        if self.result is not None:
            body = (
                f"length {self.result.length_s:g} s in "
                f"{self.result.n_sessions} sessions, "
                f"effort {self.result.effort_s:g} s, "
                f"{self.steady_solves} solves"
            )
        else:
            body = f"ERROR: {self.error}"
        cache = "hit" if self.cache_hit else "miss"
        return (
            f"{self.spec.job_id}: {body} "
            f"[{self.elapsed_s * 1e3:.1f} ms, cache {cache}]"
        )


# -- dict / JSONL round-tripping -----------------------------------------------------


def job_spec_to_dict(spec: JobSpec) -> dict[str, Any]:
    """Serialise a job spec to a JSON-ready dict."""
    data = dataclasses.asdict(spec)  # recursive: scenario becomes a dict too
    data["schema_version"] = SCHEMA_VERSION
    return data


def job_spec_from_dict(data: dict[str, Any]) -> JobSpec:
    """Load a job spec back from its dict form."""
    version = data.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchedulingError(
            f"unsupported job spec schema version {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    payload = {k: v for k, v in data.items() if k != "schema_version"}
    payload["scenario"] = ScenarioSpec(**payload["scenario"])
    return JobSpec(**payload)


def job_result_to_dict(job_result: JobResult) -> dict[str, Any]:
    """Serialise a job result (spec + diagnostics + embedded schedule).

    The unresolved limits of error records are NaN in memory but
    ``null`` on disk: ``json.dumps`` would otherwise emit a bare
    ``NaN`` token, which strict JSON parsers (jq, non-Python loaders)
    reject.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "spec": job_spec_to_dict(job_result.spec),
        "status": job_result.status,
        "tl_c": None if math.isnan(job_result.tl_c) else job_result.tl_c,
        "stcl": None if math.isnan(job_result.stcl) else job_result.stcl,
        "error": job_result.error,
        "elapsed_s": job_result.elapsed_s,
        "steady_solves": job_result.steady_solves,
        "cache_hit": job_result.cache_hit,
        "timings": (
            None if job_result.timings is None else dict(job_result.timings)
        ),
        "result": (
            None
            if job_result.result is None
            else result_to_dict(job_result.result)
        ),
    }


def job_result_from_dict(
    data: dict[str, Any], soc: SocUnderTest | None = None
) -> JobResult:
    """Load a job result back, rebuilding its SoC to revalidate the schedule.

    Parameters
    ----------
    data:
        Dict form as produced by :func:`job_result_to_dict`.
    soc:
        Reused when provided (loading a fleet groups results by
        scenario); otherwise rebuilt from the embedded scenario spec.
    """
    version = data.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchedulingError(
            f"unsupported job result schema version {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    spec = job_spec_from_dict(data["spec"])
    result = None
    if data.get("result") is not None:
        if soc is None:
            soc = spec.scenario.build_soc()
        result = result_from_dict(data["result"], soc)
    return JobResult(
        spec=spec,
        status=data["status"],
        tl_c=math.nan if data["tl_c"] is None else float(data["tl_c"]),
        stcl=math.nan if data["stcl"] is None else float(data["stcl"]),
        result=result,
        error=data.get("error"),
        elapsed_s=float(data["elapsed_s"]),
        steady_solves=int(data.get("steady_solves", 0)),
        cache_hit=bool(data.get("cache_hit", False)),
        timings=data.get("timings"),
    )

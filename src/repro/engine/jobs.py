"""Job specifications and results for the batch scheduling engine.

A :class:`JobSpec` pairs a :class:`~repro.engine.scenarios.ScenarioSpec`
(the SoC description) with the scheduling question asked of it: the
temperature limit ``TL``, the session-thermal-characteristic limit
``STCL`` and the scheduler-variant knobs.  Limits can be given
absolutely or as *headrooms* relative to the scenario's own thermal
regime; headrooms keep generated fleets feasible by construction.

A :class:`JobResult` is the complete record of one executed job:
the resolved limits, the :class:`~repro.core.scheduler.ScheduleResult`
(on success), the failure (on error — batch runs never die because one
scenario was infeasible), wall-clock timing, simulation-effort metrics
and whether the job's thermal model came out of the shared cache.

Both are frozen dataclasses of picklable content so they cross process
boundaries unchanged, and both round-trip through plain dicts (and
therefore through the JSONL archives the runner writes).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any, Literal

from ..core.scheduler import SchedulerConfig, ScheduleResult
from ..core.serialize import SCHEMA_VERSION, result_from_dict, result_to_dict
from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..errors import SchedulingError
from ..soc.system import SocUnderTest
from .scenarios import ScenarioSpec


@dataclass(frozen=True)
class JobSpec:
    """One scheduling question: a scenario plus limits and knobs.

    Exactly one of (``tl_c``, ``tl_headroom``) and one of
    (``stcl``, ``stcl_headroom``) must be set.

    Attributes
    ----------
    job_id:
        Unique identifier within a batch.
    scenario:
        Declarative SoC description.
    tl_c:
        Absolute temperature limit (Celsius).
    tl_headroom:
        Alternative: TL sits ``headroom x`` the hottest
        singleton-session temperature *rise* above ambient
        (``TL = ambient + headroom * (max BCMT - ambient)``; > 1
        guarantees phase A passes).
    stcl:
        Absolute session-thermal-characteristic limit.
    stcl_headroom:
        Alternative: ``STCL = headroom x`` the worst singleton STC
        (> 1 keeps every core individually schedulable).
    weight_factor, candidate_order, validation:
        Scheduler-variant knobs (see
        :class:`~repro.core.scheduler.SchedulerConfig`).
    include_vertical:
        Session-model ablation switch.
    stc_scale:
        STC normalisation; ``None`` uses the scenario's calibrated
        default.
    """

    job_id: str
    scenario: ScenarioSpec
    tl_c: float | None = None
    tl_headroom: float | None = None
    stcl: float | None = None
    stcl_headroom: float | None = None
    weight_factor: float = 1.1
    candidate_order: str = "input"
    validation: Literal["steady", "transient"] = "steady"
    include_vertical: bool = False
    stc_scale: float | None = None

    def __post_init__(self) -> None:
        if (self.tl_c is None) == (self.tl_headroom is None):
            raise SchedulingError(
                f"job {self.job_id!r}: exactly one of tl_c / tl_headroom is "
                f"required"
            )
        if (self.stcl is None) == (self.stcl_headroom is None):
            raise SchedulingError(
                f"job {self.job_id!r}: exactly one of stcl / stcl_headroom is "
                f"required"
            )
        if self.tl_headroom is not None and self.tl_headroom <= 1.0:
            raise SchedulingError(
                f"job {self.job_id!r}: tl_headroom must be > 1 "
                f"(TL at or below the singleton peak is infeasible), "
                f"got {self.tl_headroom!r}"
            )
        if self.stcl_headroom is not None and self.stcl_headroom <= 0.0:
            raise SchedulingError(
                f"job {self.job_id!r}: stcl_headroom must be positive, "
                f"got {self.stcl_headroom!r}"
            )

    def session_model_config(self) -> SessionModelConfig:
        """The session-model configuration this job requests."""
        scale = (
            self.stc_scale
            if self.stc_scale is not None
            else self.scenario.default_stc_scale()
        )
        return SessionModelConfig(
            include_vertical=self.include_vertical, stc_scale=scale
        )

    def scheduler_config(self) -> SchedulerConfig:
        """The scheduler configuration this job requests."""
        return SchedulerConfig(
            weight_factor=self.weight_factor,
            candidate_order=self.candidate_order,  # type: ignore[arg-type]
            validation=self.validation,
        )

    def resolve_limits(
        self, model: SessionThermalModel, bcmt_c: dict[str, float]
    ) -> tuple[float, float]:
        """Turn headroom-style limits into absolute (TL, STCL).

        Parameters
        ----------
        model:
            The session thermal model of the built scenario.
        bcmt_c:
            Best-case (singleton) max temperature per core — the
            scheduler's phase-A quantities, which the runner computes
            once and reuses here.
        """
        if self.tl_c is not None:
            tl_c = self.tl_c
        else:
            assert self.tl_headroom is not None
            ambient = model.soc.package.ambient_c
            peak_rise = max(bcmt_c.values()) - ambient
            tl_c = ambient + self.tl_headroom * peak_rise
        if self.stcl is not None:
            stcl = self.stcl
        else:
            assert self.stcl_headroom is not None
            worst = max(
                model.session_thermal_characteristic([name])
                for name in model.soc.core_names
            )
            if not math.isfinite(worst):
                raise SchedulingError(
                    f"job {self.job_id!r}: a core has an infinite singleton "
                    f"STC under the lateral-only session model (isolated "
                    f"block on a non-tiling floorplan); set "
                    f"include_vertical=True"
                )
            stcl = self.stcl_headroom * worst
        return tl_c, stcl


#: Terminal states of an executed job.
JobStatus = Literal["ok", "error"]


@dataclass(frozen=True)
class JobResult:
    """The complete record of one executed batch job.

    Attributes
    ----------
    spec:
        The job as submitted.
    status:
        ``"ok"`` or ``"error"``.
    tl_c, stcl:
        The resolved absolute limits (``nan`` if resolution itself
        failed).
    result:
        The scheduling result (``None`` on error).
    error:
        Failure description (``None`` on success).
    elapsed_s:
        Wall-clock execution time of this job in its worker.
    steady_solves:
        Linear-system solves the job issued (model build + scheduling).
    cache_hit:
        Whether the job's thermal network + factorisation came out of
        the shared model cache.
    """

    spec: JobSpec
    status: JobStatus
    tl_c: float
    stcl: float
    result: ScheduleResult | None
    error: str | None
    elapsed_s: float
    steady_solves: int = 0
    cache_hit: bool = False

    def __post_init__(self) -> None:
        if self.status == "ok" and self.result is None:
            raise SchedulingError(
                f"job {self.spec.job_id!r}: status 'ok' requires a result"
            )
        if self.status == "error" and self.error is None:
            raise SchedulingError(
                f"job {self.spec.job_id!r}: status 'error' requires an error"
            )

    @property
    def ok(self) -> bool:
        """True when the job produced a schedule."""
        return self.status == "ok"

    @property
    def length_s(self) -> float:
        """Test schedule length (nan on error)."""
        return self.result.length_s if self.result is not None else math.nan

    @property
    def effort_s(self) -> float:
        """Simulation effort (nan on error)."""
        return self.result.effort_s if self.result is not None else math.nan

    def describe(self) -> str:
        """One-line human-readable job summary."""
        if self.result is not None:
            body = (
                f"length {self.result.length_s:g} s in "
                f"{self.result.n_sessions} sessions, "
                f"effort {self.result.effort_s:g} s, "
                f"{self.steady_solves} solves"
            )
        else:
            body = f"ERROR: {self.error}"
        cache = "hit" if self.cache_hit else "miss"
        return (
            f"{self.spec.job_id}: {body} "
            f"[{self.elapsed_s * 1e3:.1f} ms, cache {cache}]"
        )


# -- dict / JSONL round-tripping -----------------------------------------------------


def job_spec_to_dict(spec: JobSpec) -> dict[str, Any]:
    """Serialise a job spec to a JSON-ready dict."""
    data = dataclasses.asdict(spec)  # recursive: scenario becomes a dict too
    data["schema_version"] = SCHEMA_VERSION
    return data


def job_spec_from_dict(data: dict[str, Any]) -> JobSpec:
    """Load a job spec back from its dict form."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchedulingError(
            f"unsupported job spec schema version {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    payload = {k: v for k, v in data.items() if k != "schema_version"}
    payload["scenario"] = ScenarioSpec(**payload["scenario"])
    return JobSpec(**payload)


def job_result_to_dict(job_result: JobResult) -> dict[str, Any]:
    """Serialise a job result (spec + diagnostics + embedded schedule).

    The unresolved limits of error records are NaN in memory but
    ``null`` on disk: ``json.dumps`` would otherwise emit a bare
    ``NaN`` token, which strict JSON parsers (jq, non-Python loaders)
    reject.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "spec": job_spec_to_dict(job_result.spec),
        "status": job_result.status,
        "tl_c": None if math.isnan(job_result.tl_c) else job_result.tl_c,
        "stcl": None if math.isnan(job_result.stcl) else job_result.stcl,
        "error": job_result.error,
        "elapsed_s": job_result.elapsed_s,
        "steady_solves": job_result.steady_solves,
        "cache_hit": job_result.cache_hit,
        "result": (
            None
            if job_result.result is None
            else result_to_dict(job_result.result)
        ),
    }


def job_result_from_dict(
    data: dict[str, Any], soc: SocUnderTest | None = None
) -> JobResult:
    """Load a job result back, rebuilding its SoC to revalidate the schedule.

    Parameters
    ----------
    data:
        Dict form as produced by :func:`job_result_to_dict`.
    soc:
        Reused when provided (loading a fleet groups results by
        scenario); otherwise rebuilt from the embedded scenario spec.
    """
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchedulingError(
            f"unsupported job result schema version {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    spec = job_spec_from_dict(data["spec"])
    result = None
    if data.get("result") is not None:
        if soc is None:
            soc = spec.scenario.build_soc()
        result = result_from_dict(data["result"], soc)
    return JobResult(
        spec=spec,
        status=data["status"],
        tl_c=math.nan if data["tl_c"] is None else float(data["tl_c"]),
        stcl=math.nan if data["stcl"] is None else float(data["stcl"]),
        result=result,
        error=data.get("error"),
        elapsed_s=float(data["elapsed_s"]),
        steady_solves=int(data.get("steady_solves", 0)),
        cache_hit=bool(data.get("cache_hit", False)),
    )

"""Declarative scheduling scenarios and seeded fleet generation.

A :class:`ScenarioSpec` is a *description* of a system under test — not
the built objects.  It is a frozen dataclass of primitives, so it is
hashable, picklable (it crosses process boundaries in the
multiprocessing backend) and trivially JSON-serialisable; the heavy
artefacts (floorplan, package, SoC) are built on demand in whatever
worker executes the job, where the batch engine's thermal-model cache
deduplicates the expensive parts.

:func:`generate_fleet` turns "as many scenarios as you can imagine"
into one seeded call: it emits a diverse mix of grid and random
slicing-tree floorplans, heterogeneous packages (different cooling
regimes), and varied power profiles, while deliberately drawing
floorplan/package parameters from small pools so that many jobs share a
thermal network — the sharing the cache exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Literal, Sequence

import numpy as np

from ..errors import ReproError, SchedulingError
from ..floorplan.floorplan import Floorplan
from ..floorplan.generator import grid_floorplan, slicing_floorplan
from ..power.generator import PowerGeneratorConfig, generate_power_profile
from ..soc.library import (
    ALPHA15_STC_SCALE,
    alpha15_soc,
    hypothetical7_soc,
    worked_example6_soc,
)
from ..soc.system import SocUnderTest
from ..thermal.package import DEFAULT_PACKAGE, PackageConfig

#: Floorplan families a scenario can describe.
ScenarioKind = Literal["grid", "slicing", "alpha15", "hypothetical7", "worked_example6"]

#: Kinds backed by built-in library SoCs (no generator parameters).
BUILTIN_KINDS = ("alpha15", "hypothetical7", "worked_example6")


@dataclass(frozen=True)
class ScenarioSpec:
    """A self-contained, picklable description of one system under test.

    Attributes
    ----------
    kind:
        Floorplan family: ``"grid"``/``"slicing"`` are generated,
        the rest are the built-in library platforms.
    rows, cols:
        Grid dimensions (``kind="grid"`` only).
    n_blocks:
        Block count (``kind="slicing"`` only).
    floorplan_seed:
        Seed of the slicing-tree generator.
    split_bias:
        Cut-position bias of the slicing generator.
    die_width, die_height:
        Die size in metres.
    power_seed:
        Seed of the synthetic power profile (generated kinds) or the
        alpha15 multiplier draw.
    power_scale:
        Uniform scaling applied to the power profile.
    test_time_s:
        Per-core test time in seconds.
    convection_resistance:
        Package sink-to-ambient convection resistance (K/W) — the knob
        that varies the cooling regime across a heterogeneous fleet.
    ambient_c:
        Ambient temperature (Celsius).
    """

    kind: ScenarioKind = "grid"
    rows: int = 3
    cols: int = 3
    n_blocks: int = 9
    floorplan_seed: int = 0
    split_bias: float = 0.5
    die_width: float = 16e-3
    die_height: float = 16e-3
    power_seed: int = 0
    power_scale: float = 1.0
    test_time_s: float = 1.0
    convection_resistance: float = DEFAULT_PACKAGE.convection_resistance
    ambient_c: float = DEFAULT_PACKAGE.ambient_c

    def __post_init__(self) -> None:
        if self.kind not in ("grid", "slicing") + BUILTIN_KINDS:
            raise SchedulingError(f"unknown scenario kind {self.kind!r}")
        if self.power_scale <= 0.0:
            raise SchedulingError(
                f"power_scale must be positive, got {self.power_scale!r}"
            )
        if self.test_time_s <= 0.0:
            raise SchedulingError(
                f"test_time_s must be positive, got {self.test_time_s!r}"
            )

    # -- derived identity ---------------------------------------------------------

    @property
    def name(self) -> str:
        """Stable human-readable scenario name."""
        if self.kind == "grid":
            core = f"grid{self.rows}x{self.cols}"
        elif self.kind == "slicing":
            core = f"slicing{self.n_blocks}-f{self.floorplan_seed}"
        else:
            core = self.kind
        return f"{core}-p{self.power_seed}-r{self.convection_resistance:g}"

    def default_stc_scale(self) -> float:
        """The STC normalisation calibrated for this platform."""
        return ALPHA15_STC_SCALE if self.kind == "alpha15" else 1.0

    def needs_vertical_path(self) -> bool:
        """Whether the session model must include the vertical heat path.

        The lateral-only paper model assigns an isolated core (no
        touching neighbours) an infinite thermal characteristic, which
        makes every limit unsatisfiable.  That can only happen on
        floorplans that do not tile the die — of the supported kinds,
        only ``hypothetical7`` (48% die coverage; its outer cores are
        islands).  Generated grids and slicing trees always tile fully.
        """
        return self.kind == "hypothetical7"

    def thermal_key(self) -> tuple:
        """Hashable identity of the thermal *network* this spec builds.

        Two specs with equal keys produce the same floorplan, package
        and adjacency — hence the same compiled network, factorisation
        and reduced operator — even when their power profiles or test
        times differ.  The service's request coalescer groups pending
        jobs by this key (a coarser key than the full request content
        hash), so one shared model build serves the whole group.  Only
        the fields that feed :meth:`build_floorplan` /
        :meth:`build_package` participate; ``power_seed`` /
        ``power_scale`` / ``test_time_s`` deliberately do not.
        """
        key: tuple = (self.kind, self.convection_resistance, self.ambient_c)
        if self.kind == "grid":
            key += (self.rows, self.cols, self.die_width, self.die_height)
        elif self.kind == "slicing":
            key += (
                self.n_blocks,
                self.die_width,
                self.die_height,
                self.floorplan_seed,
                self.split_bias,
            )
        return key

    # -- builders -----------------------------------------------------------------

    def build_package(self) -> PackageConfig:
        """The package stack this scenario describes."""
        return replace(
            DEFAULT_PACKAGE,
            convection_resistance=self.convection_resistance,
            ambient_c=self.ambient_c,
        )

    def build_floorplan(self) -> Floorplan:
        """Construct the floorplan (geometry only; cheap)."""
        if self.kind == "grid":
            return grid_floorplan(
                self.rows, self.cols, self.die_width, self.die_height
            )
        if self.kind == "slicing":
            return slicing_floorplan(
                self.n_blocks,
                self.die_width,
                self.die_height,
                seed=self.floorplan_seed,
                split_bias=self.split_bias,
            )
        return self.build_soc().floorplan

    def build_soc(self) -> SocUnderTest:
        """Construct the full system under test this scenario describes."""
        package = self.build_package()
        if self.kind == "alpha15":
            return alpha15_soc(
                package=package,
                power_scale=self.power_scale,
                seed=self.power_seed,
                test_time_s=self.test_time_s,
            )
        if self.kind == "hypothetical7":
            return hypothetical7_soc(package=package, test_time_s=self.test_time_s)
        if self.kind == "worked_example6":
            return worked_example6_soc(package=package, test_time_s=self.test_time_s)
        floorplan = self.build_floorplan()
        profile = generate_power_profile(
            floorplan, config=PowerGeneratorConfig(seed=self.power_seed)
        )
        if self.power_scale != 1.0:
            profile = profile.scaled(self.power_scale)
        return SocUnderTest.from_profile(
            floorplan,
            profile,
            package=package,
            test_time_s=self.test_time_s,
            name=self.name,
        )


@dataclass(frozen=True)
class FleetConfig:
    """Shape of a generated scenario fleet.

    Attributes
    ----------
    grid_dims:
        Pool of (rows, cols) grid shapes to draw from.
    slicing_blocks:
        Pool of slicing-tree block counts.
    n_floorplan_seeds:
        Size of the slicing-seed pool.  Keeping it small guarantees
        that distinct jobs share floorplans (and hence thermal
        networks), which is what the model cache exploits; set it to
        the fleet size for maximally diverse geometry.
    convection_pool:
        Cooling regimes (convection resistance, K/W) drawn per job.
    power_scale_range:
        Log-uniform range of power-profile scaling.
    slicing_fraction:
        Fraction of generated scenarios using slicing floorplans (the
        rest are grids).
    include_builtins:
        Start the fleet with the built-in platforms (alpha15 etc.).
    tl_headroom_range:
        Per-job temperature-limit headroom over the hottest singleton
        (must stay > 1 so phase A always passes).
    stcl_headroom_range:
        Per-job STCL headroom over the worst singleton STC (> 1 keeps
        every core schedulable).
    """

    grid_dims: Sequence[tuple[int, int]] = ((2, 2), (3, 3), (3, 4), (4, 4))
    slicing_blocks: Sequence[int] = (6, 9, 12, 15)
    n_floorplan_seeds: int = 3
    convection_pool: Sequence[float] = (0.35, 0.45, 0.6)
    power_scale_range: tuple[float, float] = (0.8, 1.6)
    slicing_fraction: float = 0.5
    include_builtins: bool = True
    tl_headroom_range: tuple[float, float] = (1.08, 1.35)
    stcl_headroom_range: tuple[float, float] = (1.15, 2.5)

    def __post_init__(self) -> None:
        if not 0.0 <= self.slicing_fraction <= 1.0:
            raise SchedulingError(
                f"slicing_fraction must lie in [0, 1], got {self.slicing_fraction!r}"
            )
        if self.n_floorplan_seeds < 1:
            raise SchedulingError(
                f"n_floorplan_seeds must be >= 1, got {self.n_floorplan_seeds!r}"
            )
        for label, (low, high) in (
            ("tl_headroom_range", self.tl_headroom_range),
            ("stcl_headroom_range", self.stcl_headroom_range),
        ):
            if not 1.0 < low <= high:
                raise SchedulingError(
                    f"{label} must satisfy 1 < low <= high, got {(low, high)!r}"
                )


def generate_scenarios(
    count: int, seed: int = 0, config: FleetConfig = FleetConfig()
) -> list[ScenarioSpec]:
    """Emit a diverse, deterministic fleet of *count* scenarios.

    The same ``(count, seed, config)`` always yields the same fleet.
    """
    if count < 1:
        raise SchedulingError(f"fleet size must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    scenarios: list[ScenarioSpec] = []

    if config.include_builtins:
        builtins = [
            ScenarioSpec(kind="alpha15", power_seed=2005),
            ScenarioSpec(kind="hypothetical7"),
            ScenarioSpec(kind="worked_example6"),
        ]
        scenarios.extend(builtins[:count])

    while len(scenarios) < count:
        convection = float(rng.choice(np.asarray(config.convection_pool)))
        scale_low, scale_high = config.power_scale_range
        power_scale = float(
            np.exp(rng.uniform(np.log(scale_low), np.log(scale_high)))
        )
        common = dict(
            power_seed=int(rng.integers(0, 2**31 - 1)),
            power_scale=power_scale,
            convection_resistance=convection,
        )
        if rng.random() < config.slicing_fraction:
            n_blocks = int(rng.choice(np.asarray(config.slicing_blocks)))
            spec = ScenarioSpec(
                kind="slicing",
                n_blocks=n_blocks,
                floorplan_seed=int(rng.integers(0, config.n_floorplan_seeds)),
                **common,
            )
        else:
            rows, cols = config.grid_dims[int(rng.integers(len(config.grid_dims)))]
            spec = ScenarioSpec(kind="grid", rows=rows, cols=cols, **common)
        scenarios.append(spec)
    return scenarios


def _fleet_wants_stcl(solver: str) -> bool:
    """Whether fleet jobs for this solver should carry an STCL headroom.

    Solvers that skip the STC heuristic get none, sparing every job the
    per-core singleton-STC resolution.  Unknown names keep it: they may
    be registered only in the worker process and might need it there.
    """
    from ..api.solvers import get_solver  # deferred: api imports engine

    try:
        return get_solver(solver).needs_stcl
    except ReproError:
        return True


def generate_fleet(
    count: int,
    seed: int = 0,
    config: FleetConfig = FleetConfig(),
    solver: str = "thermal_aware",
    solver_params: dict | None = None,
) -> list["JobSpec"]:
    """Generate *count* ready-to-run jobs: scenarios plus per-job limits.

    Limits are expressed as *headrooms* relative to each scenario's own
    thermal regime (resolved in the worker by the unified solver API,
    see :class:`repro.api.Workbench`), so every job in the fleet is
    feasible by construction regardless of its geometry, cooling or
    power scale.

    Parameters
    ----------
    count, seed, config:
        Fleet shape; the same triple always yields the same fleet.
    solver:
        Registered solver every job dispatches to — the one-switch
        head-to-head: the same fleet can be scheduled thermal-aware,
        power-constrained or sequentially and the archives compared.
    solver_params:
        Per-solver parameters applied to every job.

    Raises
    ------
    SchedulingError
        When ``count`` is not a positive integer.
    """
    from .jobs import JobSpec  # deferred: jobs.py imports this module

    if count < 1:
        raise SchedulingError(
            f"fleet size must be >= 1, got {count}; an empty fleet would "
            f"silently schedule nothing"
        )
    needs_stcl = _fleet_wants_stcl(solver)
    rng = np.random.default_rng(seed ^ 0x5EED)
    tl_low, tl_high = config.tl_headroom_range
    stcl_low, stcl_high = config.stcl_headroom_range
    jobs = []
    for i, scenario in enumerate(generate_scenarios(count, seed, config)):
        tl_draw = float(rng.uniform(tl_low, tl_high))
        # Always drawn so the RNG stream (hence tl per job) is identical
        # across solver choices — fleets stay comparable head-to-head.
        stcl_draw = float(rng.uniform(stcl_low, stcl_high))
        jobs.append(
            JobSpec(
                job_id=f"job-{i:05d}-{scenario.name}",
                scenario=scenario,
                tl_headroom=tl_draw,
                stcl_headroom=stcl_draw if needs_stcl else None,
                solver=solver,
                solver_params=dict(solver_params or {}),
                include_vertical=scenario.needs_vertical_path(),
            )
        )
    return jobs

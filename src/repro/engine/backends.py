"""Pluggable execution backends for the batch engine.

A backend answers one question: *how do N independent jobs get mapped
over workers?*  Three are registered out of the box:

* ``"serial"`` — in-process loop; zero overhead, the baseline every
  benchmark compares against.
* ``"thread"`` — a thread pool.  The linear-algebra kernels release the
  GIL, so threads overlap the solver-bound portion of jobs while
  sharing one in-process thermal-model cache.
* ``"process"`` — a process pool for true CPU parallelism.  Job specs
  and results are plain picklable dataclasses, so they cross the
  boundary unchanged; each worker process keeps its own model cache.

Additional backends (a cluster dispatcher, an async queue) register via
:func:`register_backend` and become selectable by name everywhere a
backend name is accepted (``BatchRunner``, the ``repro batch`` CLI).
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

from ..errors import SchedulingError

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def default_worker_count() -> int:
    """Worker count used when none is requested: every available CPU."""
    return max(1, os.cpu_count() or 1)


class ExecutionBackend(ABC):
    """Maps a worker function over job specs, preserving input order.

    Attributes
    ----------
    name:
        Registry name.
    shares_memory:
        True when workers run in the caller's address space (serial,
        threads) and can therefore share one model cache; the runner
        uses per-process caches otherwise.
    """

    name: str = "abstract"
    shares_memory: bool = True

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise SchedulingError(
                f"max_workers must be >= 1, got {max_workers!r}"
            )
        self._max_workers = max_workers

    @property
    def max_workers(self) -> int:
        """Effective worker count."""
        return self._max_workers or default_worker_count()

    @abstractmethod
    def map(
        self,
        worker: Callable[[_ItemT], _ResultT],
        items: Sequence[_ItemT],
    ) -> list[_ResultT]:
        """Apply *worker* to every item; results in input order."""

    def create_executor(self) -> Executor:
        """A long-lived ``concurrent.futures`` pool for this backend.

        ``map`` serves one-shot batches; a long-lived service instead
        submits jobs one at a time as they arrive, so it needs the pool
        itself (and owns its shutdown).  Backends with no pool semantics
        (a hypothetical cluster dispatcher) may refuse.
        """
        raise SchedulingError(
            f"backend {self.name!r} does not provide a job-at-a-time executor"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class SerialBackend(ExecutionBackend):
    """Run jobs one after another in the calling thread."""

    name = "serial"
    shares_memory = True

    @property
    def max_workers(self) -> int:
        return 1

    def map(self, worker, items):
        return [worker(item) for item in items]

    def create_executor(self) -> Executor:
        # One worker thread preserves the backend's one-at-a-time
        # semantics while staying awaitable from an event loop.
        return ThreadPoolExecutor(max_workers=1)


class ThreadBackend(ExecutionBackend):
    """Run jobs on a thread pool sharing the caller's memory."""

    name = "thread"
    shares_memory = True

    def map(self, worker, items):
        if not items:
            return []
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(worker, items))

    def create_executor(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self.max_workers)


class ProcessBackend(ExecutionBackend):
    """Run jobs on a process pool (true CPU parallelism).

    The worker function and every item/result must be picklable; the
    runner passes a module-level worker that maintains a per-process
    model cache.
    """

    name = "process"
    shares_memory = False

    def map(self, worker, items):
        if not items:
            return []
        # Submitting in chunks amortises IPC overhead for large fleets.
        chunksize = max(1, len(items) // (4 * self.max_workers))
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(worker, items, chunksize=chunksize))

    def create_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self.max_workers)


#: Backend registry: name -> backend class.
_REGISTRY: dict[str, type[ExecutionBackend]] = {}


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Register a backend class under its ``name`` (usable as a decorator)."""
    name = cls.name
    if not name or name == "abstract":
        raise SchedulingError(f"backend {cls.__name__} needs a concrete name")
    _REGISTRY[name] = cls
    return cls


def available_backends() -> list[str]:
    """Registered backend names as a deterministically sorted list.

    Sorted so CLIs, docs and error messages render identically run to
    run regardless of registration order.
    """
    return sorted(_REGISTRY)


def create_backend(
    name: str, max_workers: int | None = None
) -> ExecutionBackend:
    """Instantiate a registered backend by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise SchedulingError(
            f"unknown execution backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    return cls(max_workers=max_workers)


for _cls in (SerialBackend, ThreadBackend, ProcessBackend):
    register_backend(_cls)

"""Shared thermal-model cache for the batch engine.

Building a thermal model is the expensive, power-independent part of a
scheduling job: compiling the RC network from floorplan + package and
Cholesky-factorising its conductance matrix.  Scenarios in a fleet
frequently share that pair (same grid shape, same cooling regime) while
differing in powers, limits or scheduler knobs — so the batch engine
caches ``(compiled network, factorisation, reduced operator)`` under a
**content hash**
of the floorplan geometry and package parameters, and hands every job a
lightweight :class:`~repro.thermal.simulator.ThermalSimulator` facade
(with its own effort counters) around the shared immutable artefacts.

The cache is thread-safe (the thread backend shares one instance across
workers) and keeps hit/miss statistics for batch summaries.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..floorplan.adjacency import AdjacencyMap
from ..floorplan.floorplan import Floorplan
from ..thermal.builder import BuiltModel, build_thermal_network
from ..thermal.package import PackageConfig
from ..thermal.reduced import ReducedSteadyOperator
from ..thermal.simulator import ThermalSimulator
from ..thermal.steady_state import SteadyStateSolver


def floorplan_fingerprint(floorplan: Floorplan) -> str:
    """Content hash of a floorplan's thermally relevant geometry.

    Block order matters (it defines the solver's node indexing) and
    float coordinates are hashed via ``repr`` so any bit-level
    difference produces a different key — false cache misses are
    acceptable, false hits are not.  The floorplan *name* is excluded:
    two identically shaped dies share a thermal network regardless of
    what they are called.
    """
    digest = hashlib.sha256()
    for block in floorplan:
        rect = block.rect
        digest.update(
            f"{block.name}|{rect.x!r}|{rect.y!r}|{rect.width!r}|{rect.height!r};".encode()
        )
    outline = floorplan.outline
    digest.update(
        f"@{outline.x!r}|{outline.y!r}|{outline.width!r}|{outline.height!r}".encode()
    )
    return digest.hexdigest()


def package_fingerprint(package: PackageConfig) -> str:
    """Content hash of every package parameter (materials included)."""
    digest = hashlib.sha256()
    digest.update(
        "|".join(
            [
                repr(package.die_thickness),
                repr(package.die_material),
                repr(package.tim_thickness),
                repr(package.tim_material),
                repr(package.spreader_side),
                repr(package.spreader_thickness),
                repr(package.spreader_material),
                repr(package.sink_side),
                repr(package.sink_thickness),
                repr(package.sink_material),
                repr(package.convection_resistance),
                repr(package.convection_capacitance),
                repr(package.rim_coefficient),
                repr(package.ambient_c),
            ]
        ).encode()
    )
    return digest.hexdigest()


def adjacency_fingerprint(adjacency: AdjacencyMap) -> str:
    """Content hash of an adjacency map's thermally relevant structure.

    A custom adjacency (different tolerance, hence different interface
    topology and shared-edge lengths) changes the lateral conductances
    of the built network, so it must key the cache — a false hit here
    returns wrong temperatures.
    """
    digest = hashlib.sha256()
    for interface in adjacency.interfaces:
        digest.update(
            f"{interface.block_a}|{interface.block_b}|{interface.side_of_a}|"
            f"{interface.length!r};".encode()
        )
    for name in adjacency.iter_block_names():
        for segment in adjacency.boundary_segments(name):
            digest.update(
                f"@{segment.block}|{segment.side}|{segment.length!r};".encode()
            )
    return digest.hexdigest()


def model_key(
    floorplan: Floorplan,
    package: PackageConfig,
    adjacency: AdjacencyMap | None = None,
) -> str:
    """Cache key of the (floorplan, package, adjacency) triple.

    ``adjacency=None`` (build the default map from the floorplan) and
    an explicitly passed default map hash differently — a false miss,
    which is acceptable; every caller that reuses a SoC's precomputed
    map passes it consistently, so they share keys.
    """
    key = floorplan_fingerprint(floorplan) + ":" + package_fingerprint(package)
    if adjacency is not None:
        key += ":" + adjacency_fingerprint(adjacency)
    return key


#: Per-process model cache shared by every process-pool worker function
#: (batch runner and scheduling service alike).  Lazily created in each
#: worker; with the default fork start method children inherit a
#: reference to the parent's (possibly empty) cache object, so each
#: process re-binds its own instance on first use, keyed by pid.
_PROCESS_LOCAL_CACHE: "ThermalModelCache | None" = None
_PROCESS_LOCAL_OWNER: int | None = None


def process_local_cache() -> "ThermalModelCache":
    """The calling process's own lazily created model cache.

    Workers of a long-lived service and of one-shot batches both route
    through this accessor, so a worker process that served a batch job
    enters its next service job with the model already warm.
    """
    import os

    global _PROCESS_LOCAL_CACHE, _PROCESS_LOCAL_OWNER
    if _PROCESS_LOCAL_CACHE is None or _PROCESS_LOCAL_OWNER != os.getpid():
        _PROCESS_LOCAL_CACHE = ThermalModelCache()
        _PROCESS_LOCAL_OWNER = os.getpid()
    return _PROCESS_LOCAL_CACHE


def resolve_cache(
    cache: "ThermalModelCache | None", use_cache: bool
) -> "ThermalModelCache | None":
    """The cache an engine component should use.

    ``cache or ThermalModelCache()`` would be wrong here: the cache
    defines ``__len__``, so a passed-in *empty* cache is falsy and
    would be silently replaced, losing the sharing the caller set up.
    """
    if not use_cache:
        return None
    return cache if cache is not None else ThermalModelCache()


class SharedReducedSlot:
    """Lazily-extracted, shared reduced operator for one cache entry.

    The influence-matrix extraction is only worth paying when some job
    actually takes the reduced steady path (a dense- or transient-mode
    fleet never does), so the cache stores this one-slot thunk instead
    of an eager operator: the first facade that needs the operator
    builds it, every later facade for the same model shares it.
    Callable so it plugs straight into
    :meth:`~repro.thermal.simulator.ThermalSimulator.from_handles`.
    """

    def __init__(self, model: BuiltModel, solver: SteadyStateSolver) -> None:
        self._model = model
        self._solver = solver
        self._operator: ReducedSteadyOperator | None = None  # guarded-by: _lock
        self._lock = threading.Lock()

    def __call__(self) -> ReducedSteadyOperator:
        with self._lock:
            if self._operator is None:
                self._operator = ReducedSteadyOperator.from_model(
                    self._model, self._solver
                )
            return self._operator


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`ThermalModelCache`.

    Attributes
    ----------
    hits:
        Lookups served from the cache.
    misses:
        Lookups that had to build (and factorise) a model.
    entries:
        Models currently cached.
    evictions:
        Entries dropped by the LRU bound.
    """

    hits: int
    misses: int
    entries: int
    evictions: int

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"thermal-model cache: {self.hits} hits / {self.lookups} lookups "
            f"({self.hit_rate * 100:.0f}%), {self.entries} entries, "
            f"{self.evictions} evictions"
        )


class ThermalModelCache:
    """Content-hash-keyed cache of compiled networks and factorisations.

    Parameters
    ----------
    max_entries:
        LRU bound on cached models (``None`` = unbounded).  A compiled
        model plus factor for an *n*-block die is O((n+7)^2) floats, so
        even large fleets rarely need a bound; it exists for services
        that run forever.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self._max_entries = max_entries
        self._entries: OrderedDict[
            str, tuple[BuiltModel, SteadyStateSolver, SharedReducedSlot]
        ] = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss statistics (snapshot)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                evictions=self._evictions,
            )

    def reset_stats(self) -> None:
        """Zero the counters (entries are kept)."""
        with self._lock:
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def clear(self) -> None:
        """Drop every cached model and zero the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def simulator_for(
        self,
        floorplan: Floorplan,
        package: PackageConfig,
        adjacency: AdjacencyMap | None = None,
    ) -> tuple[ThermalSimulator, bool]:
        """A fresh simulator facade over the cached model for this pair.

        Returns
        -------
        (simulator, hit)
            *simulator* has its own effort counters but shares the
            compiled network and factorisation with every other
            simulator handed out for the same content hash; *hit* says
            whether the model came from the cache.
        """
        key = model_key(floorplan, package, adjacency)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits += 1
        if cached is not None:
            model, solver, reduced = cached
            return ThermalSimulator.from_handles(model, solver, reduced), True

        # Build outside the lock: factorisation is the expensive part and
        # the thread backend must not serialise on it.  Two threads may
        # race to build the same key; the loser's build is discarded.
        # The reduced operator's slot rides along so cold fleet workers
        # skip the influence-matrix extraction too (it is filled by the
        # first facade that takes the reduced path, then shared).
        model = build_thermal_network(floorplan, package, adjacency)
        solver = SteadyStateSolver(model.network)
        reduced = SharedReducedSlot(model, solver)
        with self._lock:
            self._misses += 1
            existing = self._entries.get(key)
            if existing is not None:
                model, solver, reduced = existing
                self._entries.move_to_end(key)
            else:
                self._entries[key] = (model, solver, reduced)
                if (
                    self._max_entries is not None
                    and len(self._entries) > self._max_entries
                ):
                    self._entries.popitem(last=False)
                    self._evictions += 1
        return ThermalSimulator.from_handles(model, solver, reduced), False

"""The batch runner: fan jobs out over a backend, aggregate, persist.

:func:`run_job` is the single-job execution path: convert the job to a
:class:`~repro.api.ScheduleRequest`, dispatch it through the solver
registry via :func:`repro.api.execute_request` (which builds the
scenario, borrows a thermal model from the cache and resolves limits),
and never raise — infeasible scenarios become ``status="error"``
records instead of killing the fleet.  :class:`BatchRunner` maps it over an execution
backend and returns a :class:`BatchResult` with per-job records plus
the aggregate timing, simulation-effort and cache statistics, and can
stream the records to a JSONL archive via :mod:`repro.core.serialize`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Iterable, Sequence

from ..core.serialize import dump_jsonl, load_jsonl
from ..errors import SchedulingError
from .backends import ExecutionBackend, create_backend
from .cache import (
    CacheStats,
    ThermalModelCache,
    process_local_cache,
    resolve_cache,
)
from .jobs import JobResult, JobSpec, job_result_from_dict, job_result_to_dict
from .scenarios import ScenarioSpec


def run_job(spec: JobSpec, cache: ThermalModelCache | None = None) -> JobResult:
    """Execute one batch job; failures become error records, not raises.

    The job is converted to a :class:`~repro.api.ScheduleRequest` and
    dispatched through the solver registry, so a fleet can mix
    thermal-aware, power-constrained and sequential jobs (or any
    registered extension) in one batch.

    Parameters
    ----------
    spec:
        The job to run.
    cache:
        Shared thermal-model cache; when omitted the job builds (and
        factorises) its own network.
    """
    from ..api.workbench import execute_request  # deferred: api imports engine

    start = time.perf_counter()
    try:
        report = execute_request(spec.to_request(), cache=cache)
    # Catch everything, not just ReproError: a buggy third-party solver
    # registered via register_solver must not kill a 1000-job fleet and
    # discard the results already computed.
    except Exception as exc:
        return JobResult(
            spec=spec,
            status="error",
            tl_c=math.nan,
            stcl=math.nan,
            result=None,
            error=f"{type(exc).__name__}: {exc}",
            elapsed_s=time.perf_counter() - start,
            steady_solves=getattr(exc, "solve_steady_solves", 0),
            cache_hit=getattr(exc, "solve_cache_hit", False),
        )
    elapsed_s = time.perf_counter() - start
    # The spec->request conversion happens out here, so the job's wall
    # time exceeds the report's; record it as the "worker" phase like
    # the service's worker path does.
    timings = (
        {**report.timings, "worker": elapsed_s}
        if report.timings is not None
        else None
    )
    return JobResult(
        spec=spec,
        status="ok",
        tl_c=report.tl_c,
        stcl=report.stcl,
        result=report.result,
        error=None,
        elapsed_s=elapsed_s,
        steady_solves=report.steady_solves,
        cache_hit=report.cache_hit,
        timings=timings,
    )


def _process_run_job(spec: JobSpec) -> JobResult:
    """Module-level (hence picklable) worker for the process backend.

    The per-process cache lives in :func:`~repro.engine.cache.process_local_cache`
    so batch workers and scheduling-service workers sharing a process
    also share warm models.
    """
    return run_job(spec, process_local_cache())


def _process_run_job_uncached(spec: JobSpec) -> JobResult:
    """Process-backend worker for ``use_cache=False`` runs."""
    return run_job(spec, None)


@dataclass(frozen=True)
class BatchResult:
    """Everything a batch run produced.

    Attributes
    ----------
    results:
        Per-job records, in submission order.
    backend:
        Backend name used.
    workers:
        Worker count of the backend.
    wall_s:
        Wall-clock time of the whole fan-out.
    cache_stats:
        Snapshot of the shared in-process cache (``None`` for backends
        with per-process caches; use the per-job ``cache_hit`` flags,
        aggregated below, which work for every backend).
    """

    results: tuple[JobResult, ...]
    backend: str
    workers: int
    wall_s: float
    cache_stats: CacheStats | None = None

    # -- structure ----------------------------------------------------------------

    @property
    def n_jobs(self) -> int:
        """Total jobs executed."""
        return len(self.results)

    @property
    def ok(self) -> tuple[JobResult, ...]:
        """Jobs that produced a schedule."""
        return tuple(r for r in self.results if r.ok)

    @property
    def failed(self) -> tuple[JobResult, ...]:
        """Jobs that ended in an error record."""
        return tuple(r for r in self.results if not r.ok)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, job_id: str) -> JobResult:
        for result in self.results:
            if result.spec.job_id == job_id:
                return result
        raise SchedulingError(f"no job {job_id!r} in this batch")

    # -- aggregate metrics ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Jobs whose thermal model came out of a cache (any backend)."""
        return sum(1 for r in self.results if r.cache_hit)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of jobs served from a model cache."""
        return self.cache_hits / self.n_jobs if self.results else 0.0

    @property
    def total_length_s(self) -> float:
        """Summed schedule length over successful jobs (s)."""
        return math.fsum(r.result.length_s for r in self.ok if r.result)

    @property
    def total_effort_s(self) -> float:
        """Summed simulation effort over successful jobs (s)."""
        return math.fsum(r.result.effort_s for r in self.ok if r.result)

    @property
    def total_steady_solves(self) -> int:
        """Summed steady-state solves over all jobs."""
        return sum(r.steady_solves for r in self.results)

    @property
    def total_job_s(self) -> float:
        """Summed per-job wall time — compute the backend parallelised."""
        return math.fsum(r.elapsed_s for r in self.results)

    @property
    def jobs_per_second(self) -> float:
        """Batch throughput."""
        return self.n_jobs / self.wall_s if self.wall_s > 0.0 else math.inf

    def describe(self, limit: int = 10) -> str:
        """Multi-line human-readable batch summary.

        Parameters
        ----------
        limit:
            Per-job lines shown (0 disables; failures always shown).
        """
        lines = [
            f"Batch of {self.n_jobs} jobs on backend {self.backend!r} "
            f"({self.workers} workers): {len(self.ok)} ok, "
            f"{len(self.failed)} failed, wall {self.wall_s:.2f} s "
            f"({self.jobs_per_second:.1f} jobs/s)",
            f"  schedule length {self.total_length_s:g} s total, "
            f"simulation effort {self.total_effort_s:g} s, "
            f"{self.total_steady_solves} steady-state solves",
            f"  model cache: {self.cache_hits}/{self.n_jobs} jobs hit "
            f"({self.cache_hit_rate * 100:.0f}%)",
        ]
        if self.cache_stats is not None:
            lines.append(f"  {self.cache_stats.describe()}")
        for result in self.results[:limit] if limit else ():
            lines.append(f"  {result.describe()}")
        shown = min(limit, self.n_jobs) if limit else 0
        for result in self.failed:
            if limit and result in self.results[:limit]:
                continue
            lines.append(f"  {result.describe()}")
            shown += 1
        if shown < self.n_jobs:
            lines.append(f"  ... {self.n_jobs - shown} more jobs")
        return "\n".join(lines)


class BatchRunner:
    """Fans a fleet of jobs out over an execution backend.

    Parameters
    ----------
    backend:
        Backend name (``"serial"``, ``"thread"``, ``"process"``, or any
        registered extension) or a ready
        :class:`~repro.engine.backends.ExecutionBackend` instance.
    max_workers:
        Worker count (ignored when *backend* is an instance; defaults
        to the CPU count).
    cache:
        Thermal-model cache shared across jobs on memory-sharing
        backends.  Defaults to a fresh unbounded cache; pass an
        existing one to retain models across batches (a long-running
        service), or ``None`` explicitly via ``use_cache=False``.
    use_cache:
        Disable model sharing entirely (every job builds its own
        network) — the ablation the cache benchmark compares against.
    """

    def __init__(
        self,
        backend: str | ExecutionBackend = "serial",
        max_workers: int | None = None,
        cache: ThermalModelCache | None = None,
        use_cache: bool = True,
    ) -> None:
        if isinstance(backend, ExecutionBackend):
            self._backend = backend
        else:
            self._backend = create_backend(backend, max_workers=max_workers)
        self._cache = resolve_cache(cache, use_cache)

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend."""
        return self._backend

    @property
    def cache(self) -> ThermalModelCache | None:
        """The shared model cache (memory-sharing backends only)."""
        return self._cache

    def run(
        self,
        jobs: Sequence[JobSpec],
        jsonl_path: str | Path | None = None,
    ) -> BatchResult:
        """Execute every job and aggregate the records.

        Parameters
        ----------
        jobs:
            The fleet; must be non-empty, and job ids must be unique.
        jsonl_path:
            When given, every job record is archived to this JSON-Lines
            file (one self-contained record per line).

        Raises
        ------
        SchedulingError
            On an empty fleet or duplicate job ids — both almost always
            mean a fleet-construction bug upstream, and an empty batch
            would otherwise silently produce an empty archive.
        """
        if not jobs:
            raise SchedulingError(
                "batch contains no jobs; generate a fleet first "
                "(e.g. generate_fleet(count, seed))"
            )
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise SchedulingError(f"duplicate job ids in batch: {dupes}")

        if self._backend.shares_memory:
            worker = partial(run_job, cache=self._cache)
        elif self._cache is not None:
            worker = _process_run_job
        else:
            worker = _process_run_job_uncached

        start = time.perf_counter()
        results = tuple(self._backend.map(worker, list(jobs)))
        wall_s = time.perf_counter() - start

        # The in-process cache snapshot only means something on backends
        # that actually used it; process workers keep their own caches
        # (their activity is visible via the per-job cache_hit flags).
        shared_cache_used = self._cache is not None and self._backend.shares_memory
        batch = BatchResult(
            results=results,
            backend=self._backend.name,
            workers=self._backend.max_workers,
            wall_s=wall_s,
            cache_stats=self._cache.stats if shared_cache_used else None,
        )
        if jsonl_path is not None:
            save_batch_jsonl(batch.results, jsonl_path)
        return batch


def save_batch_jsonl(results: Iterable[JobResult], path: str | Path) -> int:
    """Archive job records as JSONL; returns the record count."""
    return dump_jsonl((job_result_to_dict(r) for r in results), path)


def load_batch_jsonl(path: str | Path) -> list[JobResult]:
    """Load job records back from a JSONL archive.

    Schedules are revalidated against freshly rebuilt SoCs; SoCs are
    rebuilt once per distinct scenario, not once per record.
    """
    socs: dict[ScenarioSpec, object] = {}
    results: list[JobResult] = []
    for record in load_jsonl(path):
        scenario = ScenarioSpec(**record["spec"]["scenario"])
        if record.get("result") is not None and scenario not in socs:
            socs[scenario] = scenario.build_soc()
        results.append(job_result_from_dict(record, soc=socs.get(scenario)))  # type: ignore[arg-type]
    return results

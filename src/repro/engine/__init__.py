"""Batch scheduling engine: scenario fleets, parallel backends, model cache.

The single-run flow answers one ``(SoC, TL, STCL)`` question; this
subsystem turns it into a high-throughput batch service:

* :mod:`scenarios` — declarative, picklable SoC descriptions and a
  seeded generator that emits diverse fleets in one call;
* :mod:`jobs` — frozen :class:`JobSpec` / :class:`JobResult` records
  that round-trip through dicts and JSONL;
* :mod:`cache` — a content-hash-keyed cache sharing compiled thermal
  networks and steady-state factorisations across jobs;
* :mod:`backends` — a pluggable execution-backend registry (serial,
  thread, multiprocessing);
* :mod:`runner` — :class:`BatchRunner`, which fans jobs out, aggregates
  results and archives them as JSONL.

Quickstart::

    from repro.engine import BatchRunner, generate_fleet

    fleet = generate_fleet(100, seed=0)
    batch = BatchRunner(backend="process").run(fleet)
    print(batch.describe())
"""

from .backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    create_backend,
    default_worker_count,
    register_backend,
)
from .cache import (
    CacheStats,
    ThermalModelCache,
    floorplan_fingerprint,
    model_key,
    package_fingerprint,
    process_local_cache,
)
from .jobs import (
    JobResult,
    JobSpec,
    job_result_from_dict,
    job_result_to_dict,
    job_spec_from_dict,
    job_spec_to_dict,
)
from .runner import (
    BatchResult,
    BatchRunner,
    load_batch_jsonl,
    run_job,
    save_batch_jsonl,
)
from .scenarios import (
    FleetConfig,
    ScenarioSpec,
    generate_fleet,
    generate_scenarios,
)

__all__ = [
    "BatchResult",
    "BatchRunner",
    "CacheStats",
    "ExecutionBackend",
    "FleetConfig",
    "JobResult",
    "JobSpec",
    "ProcessBackend",
    "ScenarioSpec",
    "SerialBackend",
    "ThermalModelCache",
    "ThreadBackend",
    "available_backends",
    "create_backend",
    "default_worker_count",
    "floorplan_fingerprint",
    "generate_fleet",
    "generate_scenarios",
    "job_result_from_dict",
    "job_result_to_dict",
    "job_spec_from_dict",
    "job_spec_to_dict",
    "load_batch_jsonl",
    "model_key",
    "package_fingerprint",
    "process_local_cache",
    "register_backend",
    "run_job",
    "save_batch_jsonl",
]

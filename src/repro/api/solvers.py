"""The ``Solver`` protocol and the solver registry.

Every scheduling algorithm in this library — the paper's thermal-aware
Algorithm 1, the power-constrained and random baselines it argues
against, the purely sequential reference and the exact branch-and-bound
optimum — answers the same question: *given a system and limits,
produce a test schedule*.  This module gives them one calling shape.

A solver is a stateless singleton registered by name via
:func:`register_solver`.  It declares capability flags (``needs_stcl``:
does it use the STC session model and therefore require an STCL?) and
its accepted parameter names, validates request parameters before any
thermal work happens, and returns a
:class:`~repro.core.scheduler.ScheduleResult`.  Baseline solvers, which
are thermally blind by design, get their schedules annotated post hoc
with simulated temperatures so the uniform report can compare peak
temperatures and hot-spot rates across solvers.

Adding a scheduler to the comparison space is now one class::

    @register_solver
    class MySolver(Solver):
        name = "mine"
        needs_stcl = False
        param_names = frozenset({"alpha"})

        def solve(self, context, params):
            schedule = ...  # build a TestSchedule for context.soc
            return self.baseline_result(context, schedule), {}
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping

from ..core.baselines import (
    OptimalMinSessionsScheduler,
    PowerConstrainedConfig,
    PowerConstrainedScheduler,
    RandomScheduler,
    sequential_schedule,
)
from ..core.safety import annotate_schedule
from ..core.scheduler import SchedulerConfig, ScheduleResult, ThermalAwareScheduler
from ..core.session import TestSchedule
from ..core.session_model import SessionThermalModel
from ..errors import RequestError
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator


@dataclass(frozen=True)
class SolveContext:
    """Everything a solver needs, prepared once by the workbench.

    Attributes
    ----------
    soc:
        The built system under test.
    simulator:
        The accurate thermal simulator (possibly a facade over a shared
        cached model; its effort counters belong to this solve).
    model:
        The STC session thermal model.
    tl_c:
        Resolved absolute temperature limit (Celsius).
    stcl:
        Resolved STC limit (``nan`` when the request carried none).
    growth_memo:
        Optional session-growth memo shared across a coalesced batch of
        requests evaluated against the same session model (see
        :class:`~repro.core.scheduler.ThermalAwareScheduler`); ``None``
        for solo solves.
    """

    soc: SocUnderTest
    simulator: ThermalSimulator
    model: SessionThermalModel
    tl_c: float
    stcl: float
    growth_memo: dict | None = None


class Solver(ABC):
    """One scheduling algorithm behind the unified ``solve(request)`` door.

    Class attributes
    ----------------
    name:
        Registry name (the ``solver=`` switch).
    needs_stcl:
        Capability flag: the solver uses the STC session model, so the
        request must resolve an STCL.
    param_names:
        Parameter keys this solver accepts; anything else is rejected
        by :meth:`validate_params` before thermal work starts.
    """

    name: ClassVar[str] = "abstract"
    needs_stcl: ClassVar[bool] = False
    param_names: ClassVar[frozenset[str]] = frozenset()

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Reject parameters the solver does not accept.

        Raises
        ------
        RequestError
            On unknown keys, with the accepted set in the message.
        """
        unknown = sorted(set(params) - self.param_names)
        if unknown:
            accepted = ", ".join(sorted(self.param_names)) or "(none)"
            raise RequestError(
                f"solver {self.name!r} does not accept params {unknown}; "
                f"accepted: {accepted}"
            )

    @abstractmethod
    def solve(
        self, context: SolveContext, params: Mapping[str, Any]
    ) -> tuple[ScheduleResult, dict[str, Any]]:
        """Produce a schedule for the prepared context.

        Returns
        -------
        (result, extras)
            The uniform scheduling result plus solver-specific
            diagnostics for the report's ``extras`` mapping.
        """

    def baseline_result(
        self, context: SolveContext, schedule: TestSchedule
    ) -> ScheduleResult:
        """Wrap a thermally blind schedule into a uniform result.

        The schedule is annotated with freshly simulated steady-state
        temperatures (the construction itself spent none — that
        blindness is the point of the baselines), so peak temperature
        and hot-spot metrics are comparable across solvers.
        """
        annotated = annotate_schedule(schedule, simulator=context.simulator)
        return ScheduleResult(
            schedule=annotated,
            tl_c=context.tl_c,
            stcl=context.stcl,
            length_s=annotated.length_s,
            effort_s=0.0,
            max_temperature_c=annotated.max_temperature_c,
            bcmt_c={},
            weights={},
        )

    def __repr__(self) -> str:
        return f"<solver {self.name!r}>"


#: Solver registry: name -> stateless singleton.
_REGISTRY: dict[str, Solver] = {}


def register_solver(cls: type[Solver]) -> type[Solver]:
    """Register a solver class under its ``name`` (usable as a decorator)."""
    name = cls.name
    if not name or name == "abstract":
        raise RequestError(f"solver {cls.__name__} needs a concrete name")
    _REGISTRY[name] = cls()
    return cls


def available_solvers() -> list[str]:
    """Registered solver names, deterministically sorted."""
    return sorted(_REGISTRY)


def get_solver(name: str) -> Solver:
    """Look a solver up by registry name.

    Raises
    ------
    RequestError
        On unknown names, listing what is available.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise RequestError(
            f"unknown solver {name!r}; available: "
            f"{', '.join(available_solvers())}"
        ) from None


# -- the built-in solver fleet ---------------------------------------------------------


@register_solver
class ThermalAwareSolver(Solver):
    """The paper's Algorithm 1 (STC-guided growth, simulate, escalate)."""

    name = "thermal_aware"
    needs_stcl = True
    param_names = frozenset(
        {
            "weight_factor",
            "candidate_order",
            "on_stuck",
            "max_discards",
            "count_phase_a_effort",
            "validation",
            "transient_dt_s",
        }
    )

    def solve(
        self, context: SolveContext, params: Mapping[str, Any]
    ) -> tuple[ScheduleResult, dict[str, Any]]:
        config = SchedulerConfig(**dict(params))
        scheduler = ThermalAwareScheduler(
            context.soc,
            simulator=context.simulator,
            session_model=context.model,
            config=config,
            growth_memo=context.growth_memo,
        )
        result = scheduler.schedule(context.tl_c, context.stcl)
        return result, {
            "discarded": result.n_discarded,
            "forced_singletons": result.forced_singletons,
        }


@register_solver
class PowerConstrainedSolver(Solver):
    """Classic chip-level power-cap packing (first-fit / FFD).

    Parameters
    ----------
    power_limit_w:
        Absolute session power cap.  When omitted the cap is derived
        from the SoC itself as
        ``max(1.02 x biggest core, power_fraction x total test power)``,
        which keeps every generated fleet schedulable without per-SoC
        tuning.
    power_fraction:
        Fraction of the total test power used by the derived cap
        (default 0.5).
    sort_descending:
        First-fit-decreasing when true (the literature's standard).
    """

    name = "power_constrained"
    needs_stcl = False
    param_names = frozenset({"power_limit_w", "power_fraction", "sort_descending"})

    @staticmethod
    def default_power_limit_w(soc: SocUnderTest, fraction: float = 0.5) -> float:
        """The derived cap used when a request names none."""
        biggest = max(core.test_power_w for core in soc)
        return max(1.02 * biggest, fraction * soc.total_test_power_w())

    def solve(
        self, context: SolveContext, params: Mapping[str, Any]
    ) -> tuple[ScheduleResult, dict[str, Any]]:
        fraction = float(params.get("power_fraction", 0.5))
        cap = params.get("power_limit_w")
        if cap is None:
            cap = self.default_power_limit_w(context.soc, fraction)
        config = PowerConstrainedConfig(
            power_limit_w=float(cap),
            sort_descending=bool(params.get("sort_descending", True)),
        )
        schedule = PowerConstrainedScheduler(context.soc, config).schedule()
        return self.baseline_result(context, schedule), {
            "power_limit_w": config.power_limit_w
        }


@register_solver
class SequentialSolver(Solver):
    """One core per session, input order — the longest sensible schedule."""

    name = "sequential"
    needs_stcl = False
    param_names = frozenset()

    def solve(
        self, context: SolveContext, params: Mapping[str, Any]
    ) -> tuple[ScheduleResult, dict[str, Any]]:
        schedule = sequential_schedule(context.soc)
        return self.baseline_result(context, schedule), {}


@register_solver
class RandomSolver(Solver):
    """Seeded random packing under an optional power cap (sanity baseline)."""

    name = "random"
    needs_stcl = False
    param_names = frozenset({"seed", "power_limit_w"})

    def solve(
        self, context: SolveContext, params: Mapping[str, Any]
    ) -> tuple[ScheduleResult, dict[str, Any]]:
        cap = params.get("power_limit_w")
        scheduler = RandomScheduler(
            context.soc,
            seed=int(params.get("seed", 0)),
            power_limit_w=None if cap is None else float(cap),
        )
        schedule = scheduler.schedule()
        return self.baseline_result(context, schedule), {}


@register_solver
class OptimalMinSessionsSolver(Solver):
    """Exact branch-and-bound minimum-session search (small SoCs only)."""

    name = "optimal"
    needs_stcl = False
    param_names = frozenset({"max_cores"})

    def solve(
        self, context: SolveContext, params: Mapping[str, Any]
    ) -> tuple[ScheduleResult, dict[str, Any]]:
        scheduler = OptimalMinSessionsScheduler(
            context.soc,
            simulator=context.simulator,
            max_cores=int(params.get("max_cores", 12)),
        )
        schedule = scheduler.schedule(context.tl_c)
        result = self.baseline_result(context, schedule)
        return result, {"thermal_solve_count": scheduler.thermal_solve_count}

"""Problem and request specifications for the unified solver API.

A :class:`ScheduleRequest` is the one question shape every scheduler in
this library answers: *which system, which limits, which solver, which
knobs*.  It is a frozen dataclass of primitives (plus a picklable
:class:`~repro.engine.scenarios.ScenarioSpec`), so requests cross
process boundaries unchanged and round-trip through plain dicts — and
therefore through the JSONL archives the batch engine writes.

A :class:`SolveReport` is the uniform answer: the resolved limits, the
full :class:`~repro.core.scheduler.ScheduleResult` (every solver
produces one, baselines included, with their schedules thermally
annotated post hoc), timing/effort diagnostics, and a per-solver
``extras`` mapping for anything solver-specific (the power cap a
power-constrained run derived, the subset count an exact search
explored, ...).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..core.scheduler import ScheduleResult
from ..core.serialize import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    result_from_dict,
    result_to_dict,
)
from ..core.session import TestSchedule
from ..errors import RequestError
from ..engine.scenarios import BUILTIN_KINDS, ScenarioSpec
from ..spec_utils import FrozenParams, hashable_params, validate_limit_fields

#: Built-in platforms a request may name instead of an inline scenario —
#: exactly the scenario kinds backed by library SoCs, so the two lists
#: cannot drift.
BUILTIN_SOC_NAMES = BUILTIN_KINDS

#: The solver used when a request does not name one.
DEFAULT_SOLVER = "thermal_aware"


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling question, solver included.

    Exactly one of (``soc``, ``scenario``) selects the system under
    test, exactly one of (``tl_c``, ``tl_headroom``) sets the
    temperature limit, and at most one of (``stcl``, ``stcl_headroom``)
    sets the session-thermal-characteristic limit (solvers that do not
    use the STC heuristic ignore it; the thermal-aware solver requires
    it).

    Attributes
    ----------
    soc:
        Name of a built-in platform (one of
        :data:`BUILTIN_SOC_NAMES`); hyphens are accepted in place of
        underscores.
    scenario:
        Inline declarative SoC description (generated floorplans,
        custom cooling, ...).
    tl_c:
        Absolute temperature limit ``TL`` (Celsius).
    tl_headroom:
        Alternative: ``TL = ambient + headroom * (max BCMT - ambient)``
        (> 1 guarantees every core passes phase A).
    stcl:
        Absolute session-thermal-characteristic limit.
    stcl_headroom:
        Alternative: ``STCL = headroom x`` the worst singleton STC.
    solver:
        Registered solver name (see
        :func:`repro.api.solvers.available_solvers`).
    params:
        Per-solver parameters; unknown keys are rejected at solve time
        by the named solver's ``validate_params``.
    include_vertical:
        Include the vertical heat path in the STC session model
        (automatically enabled for floorplans that do not tile the
        die, e.g. the hypothetical7 platform).
    stc_scale:
        STC normalisation; ``None`` uses the platform's calibrated
        default.
    """

    soc: str | None = None
    scenario: ScenarioSpec | None = None
    tl_c: float | None = None
    tl_headroom: float | None = None
    stcl: float | None = None
    stcl_headroom: float | None = None
    solver: str = DEFAULT_SOLVER
    params: Mapping[str, Any] = field(default_factory=dict)
    include_vertical: bool = False
    stc_scale: float | None = None

    def __post_init__(self) -> None:
        if (self.soc is None) == (self.scenario is None):
            raise RequestError(
                "a request selects its system with exactly one of "
                "soc=<builtin name> / scenario=<ScenarioSpec>"
            )
        if self.soc is not None:
            canonical = self.soc.replace("-", "_")
            if canonical not in BUILTIN_SOC_NAMES:
                raise RequestError(
                    f"unknown built-in SoC {self.soc!r}; available: "
                    f"{', '.join(BUILTIN_SOC_NAMES)}"
                )
            object.__setattr__(self, "soc", canonical)
        validate_limit_fields(
            tl_c=self.tl_c,
            tl_headroom=self.tl_headroom,
            stcl=self.stcl,
            stcl_headroom=self.stcl_headroom,
            error_cls=RequestError,
        )
        if not self.solver or not isinstance(self.solver, str):
            raise RequestError(f"solver must be a non-empty name, got {self.solver!r}")
        object.__setattr__(self, "params", FrozenParams(self.params or {}))
        for key in self.params:
            if not isinstance(key, str):
                raise RequestError(f"params keys must be strings, got {key!r}")

    def __hash__(self) -> int:
        # The generated hash would raise on the dict-typed params
        # field; hash a canonical frozen view of it instead.
        return hash(
            (
                self.soc,
                self.scenario,
                self.tl_c,
                self.tl_headroom,
                self.stcl,
                self.stcl_headroom,
                self.solver,
                hashable_params(self.params),
                self.include_vertical,
                self.stc_scale,
            )
        )

    @property
    def has_stcl(self) -> bool:
        """True when the request carries an STCL (absolute or headroom)."""
        return self.stcl is not None or self.stcl_headroom is not None

    def content_hash(self) -> str:
        """Stable cross-process content hash of this request.

        Hashes the canonical (key-sorted, compact) JSON of the request's
        dict form, so two requests hash equal exactly when their JSONL
        wire frames are byte-identical — the property the scheduling
        service's in-flight deduplication relies on.  Unlike ``hash()``,
        the digest survives process boundaries and interpreter hash
        randomisation.
        """
        payload = request_to_dict(self)
        del payload["schema_version"]  # identity, not format vintage
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def describe(self) -> str:
        """One-line human-readable request summary."""
        if self.soc is not None:
            system = self.soc
        else:
            assert self.scenario is not None  # __post_init__: exactly one source
            system = self.scenario.name
        tl = f"TL={self.tl_c:g}" if self.tl_c is not None else f"TLx{self.tl_headroom:g}"
        if self.stcl is not None:
            stcl = f", STCL={self.stcl:g}"
        elif self.stcl_headroom is not None:
            stcl = f", STCLx{self.stcl_headroom:g}"
        else:
            stcl = ""
        return f"{self.solver}({system}, {tl}{stcl})"


def request_to_dict(request: ScheduleRequest) -> dict[str, Any]:
    """Serialise a request to a JSON-ready dict."""
    data = dataclasses.asdict(request)  # recursive: scenario becomes a dict
    data["schema_version"] = SCHEMA_VERSION
    return data


def request_from_dict(data: dict[str, Any]) -> ScheduleRequest:
    """Load a request back from its dict form."""
    version = data.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise RequestError(
            f"unsupported request schema version {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    payload = {k: v for k, v in data.items() if k != "schema_version"}
    if payload.get("scenario") is not None:
        payload["scenario"] = ScenarioSpec(**payload["scenario"])
    return ScheduleRequest(**payload)


@dataclass(frozen=True)
class SolveReport:
    """The uniform answer every registered solver returns.

    Attributes
    ----------
    solver:
        Registered name of the solver that ran.
    request:
        The request as submitted (``None`` when the solve was issued
        against a prebuilt SoC via :meth:`Workbench.solve_soc`).
    tl_c:
        The resolved absolute temperature limit (Celsius).
    stcl:
        The resolved STC limit (``nan`` when the request carried none
        and the solver does not use it).
    result:
        Full scheduling result; baselines get a synthesised one with an
        annotated schedule, zero construction effort and empty
        weight/BCMT maps.
    elapsed_s:
        Wall-clock time of the solve (context build excluded).
    steady_solves:
        Steady-state linear-system solves the whole request issued
        (limit resolution included).
    cache_hit:
        Whether the thermal model came out of a shared cache.
    cached:
        Answer provenance: ``True`` when this report was served from
        the scheduling service's answer cache instead of a fresh solve
        (``elapsed_s`` etc. then describe the *original* solve).
    timings:
        Per-phase wall-clock durations in seconds (``model_build``,
        ``limit_resolve``, ``solver``, ``total``; the service adds
        ``worker``, ``queue_wait`` and ``service_total``).  ``None``
        for reports predating the tracing layer — every consumer must
        stay ``None``-safe.
    extras:
        Solver-specific diagnostics.
    """

    solver: str
    request: ScheduleRequest | None
    tl_c: float
    stcl: float
    result: ScheduleResult
    elapsed_s: float
    steady_solves: int = 0
    cache_hit: bool = False
    cached: bool = False
    timings: Mapping[str, float] | None = None
    extras: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "extras", dict(self.extras or {}))
        if self.timings is not None:
            object.__setattr__(
                self,
                "timings",
                {str(k): float(v) for k, v in dict(self.timings).items()},
            )

    @property
    def request_hash(self) -> str | None:
        """Provenance: the content hash of the request this report answers.

        ``None`` for reports produced without a request object
        (:meth:`Workbench.solve_soc`).  Wire frames and archives carry
        it so clients can pair reports with submissions without trusting
        transport-level correlation ids alone.
        """
        return None if self.request is None else self.request.content_hash()

    @property
    def schedule(self) -> TestSchedule:
        """The produced test schedule."""
        return self.result.schedule

    @property
    def length_s(self) -> float:
        """Test schedule length (s)."""
        return self.result.length_s

    @property
    def n_sessions(self) -> int:
        """Number of sessions in the schedule."""
        return self.result.n_sessions

    @property
    def max_temperature_c(self) -> float:
        """Peak simulated temperature over the schedule (Celsius)."""
        return self.result.max_temperature_c

    @property
    def hot_spot_rate(self) -> float:
        """Fraction of sessions whose peak reaches ``tl_c`` (0..1).

        0 by construction for the thermal-aware solver; the comparison
        metric for the thermally blind baselines.
        """
        sessions = self.schedule.sessions
        hot = sum(1 for s in sessions if s.max_temperature_c >= self.tl_c)
        return hot / len(sessions)

    @property
    def margin_c(self) -> float:
        """Temperature headroom ``TL - peak`` (negative when unsafe)."""
        return self.tl_c - self.max_temperature_c

    def describe(self) -> str:
        """Multi-line human-readable report."""
        stcl = "" if math.isnan(self.stcl) else f", STCL={self.stcl:g}"
        lines = [
            f"{self.solver} solve (TL={self.tl_c:g} degC{stcl}): "
            f"length {self.length_s:g} s in {self.n_sessions} sessions, "
            f"peak {self.max_temperature_c:.2f} degC "
            f"(hot-spot rate {self.hot_spot_rate * 100:.0f}%)",
            f"  {self.steady_solves} steady-state solves in "
            f"{self.elapsed_s * 1e3:.1f} ms, model cache "
            f"{'hit' if self.cache_hit else 'miss'}"
            f"{' (served from the answer cache)' if self.cached else ''}",
        ]
        if self.timings:
            phases = ", ".join(
                f"{name} {duration * 1e3:.1f} ms"
                for name, duration in self.timings.items()
            )
            lines.append(f"  phases: {phases}")
        if self.extras:
            pairs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.extras.items()))
            lines.append(f"  {pairs}")
        lines.append(self.schedule.describe())
        return "\n".join(lines)


def report_to_dict(report: SolveReport) -> dict[str, Any]:
    """Serialise a solve report to a JSON-ready dict.

    Only reports that carry their request can be serialised: the
    embedded request is what lets a loader rebuild the SoC and
    revalidate the schedule, and what gives archives their provenance
    (``request_hash``).  ``solve_soc`` reports have no request and are
    rejected.  NaN limits become ``null`` so the output stays strict
    JSON.
    """
    if report.request is None:
        raise RequestError(
            "reports without a request (solve_soc) cannot be serialised; "
            "express the system as a ScheduleRequest to archive its reports"
        )
    return {
        "schema_version": SCHEMA_VERSION,
        "solver": report.solver,
        "request": request_to_dict(report.request),
        "request_hash": report.request_hash,
        "tl_c": report.tl_c,
        "stcl": None if math.isnan(report.stcl) else report.stcl,
        "result": result_to_dict(report.result),
        "elapsed_s": report.elapsed_s,
        "steady_solves": report.steady_solves,
        "cache_hit": report.cache_hit,
        "cached": report.cached,
        "timings": None if report.timings is None else dict(report.timings),
        "extras": dict(report.extras),
    }


def report_from_dict(data: dict[str, Any]) -> SolveReport:
    """Load a solve report back, rebuilding its SoC from the request.

    The schedule is revalidated against a freshly built SoC (the same
    guarantee the batch archive loader gives), so a corrupted or
    hand-edited record cannot smuggle in an impossible schedule.
    """
    version = data.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise RequestError(
            f"unsupported report schema version {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    request = request_from_dict(data["request"])
    stored_hash = data.get("request_hash")
    if stored_hash is not None and stored_hash != request.content_hash():
        raise RequestError(
            "report provenance mismatch: stored request_hash "
            f"{stored_hash[:12]}... does not match the embedded request"
        )
    if request.scenario is not None:
        scenario = request.scenario
    else:
        from .workbench import _builtin_scenario  # deferred: workbench imports us

        assert request.soc is not None  # __post_init__: exactly one source
        scenario = _builtin_scenario(request.soc)
    soc = scenario.build_soc()
    return SolveReport(
        solver=data["solver"],
        request=request,
        tl_c=float(data["tl_c"]),
        stcl=math.nan if data["stcl"] is None else float(data["stcl"]),
        result=result_from_dict(data["result"], soc),
        elapsed_s=float(data["elapsed_s"]),
        steady_solves=int(data.get("steady_solves", 0)),
        cache_hit=bool(data.get("cache_hit", False)),
        cached=bool(data.get("cached", False)),
        # .get twice over: archives written before the tracing layer
        # carry no "timings" key at all, and newer ones may carry null.
        timings=data.get("timings"),
        extras=data.get("extras") or {},
    )

"""The workbench: one front door for single solves and whole fleets.

:class:`Workbench` owns a shared
:class:`~repro.engine.cache.ThermalModelCache` and routes every
scheduling question through the same path — resolve the system, borrow
a thermal model from the cache, resolve the limits, dispatch to the
registered solver, report uniformly.  Single requests
(:meth:`Workbench.solve`), prebuilt SoCs (:meth:`Workbench.solve_soc`)
and generated fleets (:meth:`Workbench.run_fleet`, which fans a batch
out over an execution backend with the *same* cache) all share it.

Module-level :func:`solve` is the one-liner for scripts::

    from repro.api import ScheduleRequest, solve

    report = solve(ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0))
    print(report.describe())
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from ..errors import ReproError, RequestError
from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..engine.cache import ThermalModelCache, resolve_cache
from ..obs.trace import RequestTrace
from ..engine.scenarios import ScenarioSpec
from ..soc.library import ALPHA15_POWER_SEED
from ..spec_utils import validate_limit_fields
from ..soc.system import SocUnderTest
from ..thermal.reduced import MemoizedSteadyOperator
from ..thermal.simulator import ThermalSimulator
from .request import ScheduleRequest, SolveReport
from .solvers import Solver, SolveContext, get_solver

if TYPE_CHECKING:
    from ..engine.jobs import JobSpec
    from ..engine.runner import BatchResult


def _builtin_scenario(name: str) -> ScenarioSpec:
    """The scenario describing a built-in platform by name.

    Routing builtins through :class:`ScenarioSpec` keeps one source of
    truth for platform construction, STC calibration and the
    vertical-path requirement; alpha15's power profile is the
    calibrated seeded draw, the other builtins ignore the seed.
    """
    seed = ALPHA15_POWER_SEED if name == "alpha15" else 0
    return ScenarioSpec(kind=name, power_seed=seed)


@dataclass
class _SharedBuild:
    """One shared model build serving a coalesced group of requests.

    Everything here is either immutable at solve time (the SoC, the
    session model, the reduced operator behind the simulator facade) or
    a pure memo keyed by exact inputs (the operator's power memo, the
    session-growth memo), so pushing many requests through one build
    sequentially produces bit-identical reports to solo solves.
    ``cache_hit`` is per-use bookkeeping: the first request of a group
    reports the underlying model-cache outcome, later ones report what
    a sequential solo run would have seen (a hit, when caching is on).
    """

    soc: SocUnderTest
    simulator: ThermalSimulator
    model: SessionThermalModel
    cache_hit: bool
    growth_memo: dict = field(default_factory=dict)


class Workbench:
    """Shared-cache facade over every registered solver.

    Parameters
    ----------
    cache:
        Thermal-model cache shared by every solve issued through this
        workbench (and by fleets run on memory-sharing backends).
        Defaults to a fresh unbounded cache.
    use_cache:
        Disable model sharing entirely; every solve builds its own
        network.
    """

    def __init__(
        self,
        cache: ThermalModelCache | None = None,
        use_cache: bool = True,
    ) -> None:
        self._cache = resolve_cache(cache, use_cache)

    @property
    def cache(self) -> ThermalModelCache | None:
        """The shared thermal-model cache (``None`` when disabled)."""
        return self._cache

    # -- system resolution -----------------------------------------------------------

    def _resolve_system(
        self, request: ScheduleRequest
    ) -> tuple[SocUnderTest, float, bool]:
        """Build the SoC and its model defaults (stc scale, vertical path)."""
        if request.soc is not None:
            scenario = _builtin_scenario(request.soc)
        else:
            scenario = request.scenario
            assert scenario is not None  # __post_init__ guarantees one source
        return (
            scenario.build_soc(),
            scenario.default_stc_scale(),
            scenario.needs_vertical_path(),
        )

    def _simulator_for(self, soc: SocUnderTest) -> tuple[ThermalSimulator, bool]:
        if self._cache is not None:
            return self._cache.simulator_for(soc.floorplan, soc.package, soc.adjacency)
        return ThermalSimulator(soc.floorplan, soc.package, soc.adjacency), False

    # -- the unified solve path --------------------------------------------------------

    def solve(self, request: ScheduleRequest) -> SolveReport:
        """Answer one scheduling request through the registered solver.

        Raises
        ------
        RequestError
            Unknown solver, rejected parameters, or a thermal-aware
            style solver asked to run without an STCL.
        ReproError
            Whatever the solver itself raises (infeasible limits,
            phase-A violations, ...).
        """
        solver = get_solver(request.solver)
        solver.validate_params(request.params)
        if solver.needs_stcl and not request.has_stcl:
            raise RequestError(
                f"solver {request.solver!r} needs an STCL; set stcl= or "
                f"stcl_headroom= on the request"
            )
        soc, default_scale, needs_vertical = self._resolve_system(request)
        return self._execute(
            solver=solver,
            request=request,
            soc=soc,
            params=request.params,
            tl_c=request.tl_c,
            tl_headroom=request.tl_headroom,
            stcl=request.stcl,
            stcl_headroom=request.stcl_headroom,
            include_vertical=request.include_vertical or needs_vertical,
            stc_scale=(
                request.stc_scale if request.stc_scale is not None else default_scale
            ),
        )

    def solve_batch(
        self, requests: Sequence[ScheduleRequest]
    ) -> list[SolveReport | BaseException]:
        """Answer a coalesced group of requests through shared model builds.

        Requests are processed **sequentially** against shared
        artefacts: one SoC + session model per distinct
        ``(scenario, include_vertical, stc_scale)``, one simulator
        (with a :class:`~repro.thermal.reduced.MemoizedSteadyOperator`
        and a shared session-growth memo) per distinct thermal network
        — so repeated GEMM inputs across the group are answered from
        memory, bit-identical to solo solves by construction (a memo
        hit replays the exact array a solo solve computes; nothing is
        cross-request column-stacked).

        Per-request failures are returned in place as the raised
        exception (annotated with ``solve_elapsed_s`` /
        ``solve_steady_solves`` / ``solve_cache_hit`` where possible)
        so one infeasible request never poisons its group.
        """
        shares: dict[tuple[ScenarioSpec, bool, float], _SharedBuild] = {}
        sims: dict[tuple, ThermalSimulator] = {}
        results: list[SolveReport | BaseException] = []
        for request in requests:
            start = time.perf_counter()
            try:
                results.append(self._solve_one_shared(request, shares, sims))
            except Exception as exc:
                try:
                    setattr(exc, "solve_elapsed_s", time.perf_counter() - start)
                except AttributeError:
                    pass  # exceptions with __slots__ cannot carry extras
                results.append(exc)
        return results

    def _solve_one_shared(
        self,
        request: ScheduleRequest,
        shares: dict[tuple[ScenarioSpec, bool, float], _SharedBuild],
        sims: dict[tuple, ThermalSimulator],
    ) -> SolveReport:
        """One request of a coalesced group (mirrors :meth:`solve`)."""
        solver = get_solver(request.solver)
        solver.validate_params(request.params)
        if solver.needs_stcl and not request.has_stcl:
            raise RequestError(
                f"solver {request.solver!r} needs an STCL; set stcl= or "
                f"stcl_headroom= on the request"
            )
        if request.soc is not None:
            scenario = _builtin_scenario(request.soc)
        else:
            scenario = request.scenario
            assert scenario is not None  # __post_init__ guarantees one source
        include_vertical = request.include_vertical or scenario.needs_vertical_path()
        stc_scale = (
            request.stc_scale
            if request.stc_scale is not None
            else scenario.default_stc_scale()
        )
        build_key = (scenario, include_vertical, stc_scale)
        shared = shares.get(build_key)
        if shared is None:
            soc = scenario.build_soc()
            sim_key = scenario.thermal_key()
            simulator = sims.get(sim_key)
            if simulator is None:
                base, cache_hit = self._simulator_for(soc)
                simulator = ThermalSimulator.from_handles(
                    base.model,
                    base.steady_solver,
                    MemoizedSteadyOperator(base.reduced_operator),
                )
                sims[sim_key] = simulator
            else:
                cache_hit = self._cache is not None
            shared = _SharedBuild(
                soc=soc,
                simulator=simulator,
                model=SessionThermalModel(
                    soc,
                    SessionModelConfig(
                        include_vertical=include_vertical, stc_scale=stc_scale
                    ),
                ),
                cache_hit=cache_hit,
            )
            shares[build_key] = shared
        try:
            return self._execute(
                solver=solver,
                request=request,
                soc=shared.soc,
                params=request.params,
                tl_c=request.tl_c,
                tl_headroom=request.tl_headroom,
                stcl=request.stcl,
                stcl_headroom=request.stcl_headroom,
                include_vertical=include_vertical,
                stc_scale=stc_scale,
                shared=shared,
            )
        finally:
            # The next request reusing this build sees what a
            # sequential solo run would: a model-cache hit (when on).
            shared.cache_hit = self._cache is not None

    def solve_soc(
        self,
        soc: SocUnderTest,
        solver: str = "thermal_aware",
        *,
        tl_c: float | None = None,
        tl_headroom: float | None = None,
        stcl: float | None = None,
        stcl_headroom: float | None = None,
        params: Mapping[str, Any] | None = None,
        include_vertical: bool = False,
        stc_scale: float = 1.0,
    ) -> SolveReport:
        """Solve against a prebuilt SoC (same path, no request object).

        The experiments and tests use this for systems that are not
        expressible as a :class:`ScenarioSpec` (custom floorplans,
        hand-tuned power profiles); the report's ``request`` is
        ``None``.
        """
        solver_obj = get_solver(solver)
        params = dict(params or {})
        solver_obj.validate_params(params)
        validate_limit_fields(
            tl_c=tl_c,
            tl_headroom=tl_headroom,
            stcl=stcl,
            stcl_headroom=stcl_headroom,
            error_cls=RequestError,
        )
        if solver_obj.needs_stcl and stcl is None and stcl_headroom is None:
            raise RequestError(
                f"solver {solver!r} needs an STCL; pass stcl= or stcl_headroom="
            )
        return self._execute(
            solver=solver_obj,
            request=None,
            soc=soc,
            params=params,
            tl_c=tl_c,
            tl_headroom=tl_headroom,
            stcl=stcl,
            stcl_headroom=stcl_headroom,
            include_vertical=include_vertical,
            stc_scale=stc_scale,
        )

    def _execute(
        self,
        *,
        solver: Solver,
        request: ScheduleRequest | None,
        soc: SocUnderTest,
        params: Mapping[str, Any],
        tl_c: float | None,
        tl_headroom: float | None,
        stcl: float | None,
        stcl_headroom: float | None,
        include_vertical: bool,
        stc_scale: float,
        shared: _SharedBuild | None = None,
    ) -> SolveReport:
        start = time.perf_counter()
        trace = RequestTrace()
        with trace.phase("model_build"):
            if shared is not None:
                simulator, cache_hit = shared.simulator, shared.cache_hit
                model = shared.model
            else:
                simulator, cache_hit = self._simulator_for(soc)
                model = SessionThermalModel(
                    soc,
                    SessionModelConfig(
                        include_vertical=include_vertical, stc_scale=stc_scale
                    ),
                )
        solves_before = simulator.steady_solve_count
        try:
            return self._resolve_and_solve(
                solver=solver,
                request=request,
                soc=soc,
                params=params,
                tl_c=tl_c,
                tl_headroom=tl_headroom,
                stcl=stcl,
                stcl_headroom=stcl_headroom,
                simulator=simulator,
                model=model,
                cache_hit=cache_hit,
                solves_before=solves_before,
                start=start,
                trace=trace,
                growth_memo=None if shared is None else shared.growth_memo,
            )
        except Exception as exc:
            # Error-record consumers (the batch runner) still want the
            # effort spent before the failure; exceptions carry it out.
            # Any exception type: run_job records non-ReproError solver
            # bugs too, and their effort must not read as zero.
            try:
                setattr(
                    exc,
                    "solve_steady_solves",
                    simulator.steady_solve_count - solves_before,
                )
                setattr(exc, "solve_cache_hit", cache_hit)
            except AttributeError:
                pass  # exceptions with __slots__ cannot carry extras
            raise

    def _resolve_and_solve(
        self,
        *,
        solver: Solver,
        request: ScheduleRequest | None,
        soc: SocUnderTest,
        params: Mapping[str, Any],
        tl_c: float | None,
        tl_headroom: float | None,
        stcl: float | None,
        stcl_headroom: float | None,
        simulator: ThermalSimulator,
        model: SessionThermalModel,
        cache_hit: bool,
        solves_before: int,
        start: float,
        trace: RequestTrace,
        growth_memo: dict | None = None,
    ) -> SolveReport:
        with trace.phase("limit_resolve"):
            if tl_c is None:
                assert tl_headroom is not None
                ambient = soc.package.ambient_c
                # All singleton sessions in one batched reduced-operator
                # application (the same trick as the scheduler's phase A).
                names = list(soc.core_names)
                batch = simulator.block_steady_state_batch(
                    [{name: soc[name].test_power_w} for name in names]
                )
                peak = float(batch.own_temperatures_c(names).max())
                tl_c = ambient + tl_headroom * (peak - ambient)
            if stcl is None and stcl_headroom is not None:
                worst = max(
                    model.session_thermal_characteristic([name])
                    for name in soc.core_names
                )
                if not math.isfinite(worst):
                    raise RequestError(
                        "a core has an infinite singleton STC under the "
                        "lateral-only session model (isolated block on a "
                        "non-tiling floorplan); set include_vertical=True"
                    )
                stcl = stcl_headroom * worst

        context = SolveContext(
            soc=soc,
            simulator=simulator,
            model=model,
            tl_c=float(tl_c),
            stcl=math.nan if stcl is None else float(stcl),
            growth_memo=growth_memo,
        )
        try:
            with trace.phase("solver"):
                result, extras = solver.solve(context, params)
        except ReproError:
            raise
        except (TypeError, ValueError) as exc:
            # validate_params only vets key names; value coercion
            # happens inside the solver.  Surface bad values as the
            # library's own error so batch fleets record them instead
            # of dying and the CLI prints them instead of a traceback.
            raise RequestError(
                f"solver {solver.name!r} rejected params "
                f"{dict(params)!r}: {exc}"
            ) from exc
        elapsed_s = time.perf_counter() - start
        # "total" is the same wall clock as elapsed_s, so phase sums
        # and the headline number can never disagree.
        trace.record("total", elapsed_s)
        return SolveReport(
            solver=solver.name,
            request=request,
            tl_c=context.tl_c,
            stcl=context.stcl,
            result=result,
            elapsed_s=elapsed_s,
            steady_solves=simulator.steady_solve_count - solves_before,
            cache_hit=cache_hit,
            timings=trace.timings,
            extras=extras,
        )

    # -- fleets ------------------------------------------------------------------------

    def run_fleet(
        self,
        jobs: Sequence["JobSpec"],
        backend: str = "serial",
        max_workers: int | None = None,
        jsonl_path: str | Path | None = None,
    ) -> "BatchResult":
        """Fan a fleet of :class:`~repro.engine.jobs.JobSpec` out.

        Delegates to :class:`~repro.engine.runner.BatchRunner` with this
        workbench's cache, so single solves and fleet jobs share warm
        thermal models (on memory-sharing backends).

        Returns
        -------
        repro.engine.runner.BatchResult
        """
        from ..engine.runner import BatchRunner

        runner = BatchRunner(
            backend=backend,
            max_workers=max_workers,
            cache=self._cache,
            use_cache=self._cache is not None,
        )
        return runner.run(jobs, jsonl_path=jsonl_path)


#: Lazily created process-wide workbench behind the module-level solve().
_DEFAULT_WORKBENCH: Workbench | None = None


def default_workbench() -> Workbench:
    """The process-wide workbench used by :func:`solve` (created lazily)."""
    global _DEFAULT_WORKBENCH
    if _DEFAULT_WORKBENCH is None:
        _DEFAULT_WORKBENCH = Workbench()
    return _DEFAULT_WORKBENCH


def solve(request: ScheduleRequest) -> SolveReport:
    """Answer one request through the process-wide default workbench.

    Repeated calls share one thermal-model cache, so solving many
    requests against the same platform only factorises its network
    once.
    """
    return default_workbench().solve(request)


def execute_request(
    request: ScheduleRequest, cache: ThermalModelCache | None = None
) -> SolveReport:
    """One-shot execution path used by the batch runner's workers.

    Parameters
    ----------
    request:
        The question.
    cache:
        The worker's model cache (``None`` builds a throwaway network).
    """
    return Workbench(cache=cache, use_cache=cache is not None).solve(request)


def execute_requests_batch(
    requests: Sequence[ScheduleRequest],
    cache: ThermalModelCache | None = None,
) -> list[SolveReport | BaseException]:
    """Batch execution path used by the service's request coalescer.

    One :meth:`Workbench.solve_batch` over the whole group: shared
    model builds and memoised GEMMs, per-request reports (or in-place
    exceptions) bit-identical to solo :func:`execute_request` calls.
    """
    return Workbench(cache=cache, use_cache=cache is not None).solve_batch(
        requests
    )

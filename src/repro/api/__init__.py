"""Unified solver API: one front door over every scheduler.

The repo hosts several schedulers — the paper's thermal-aware
Algorithm 1, the power-constrained / random baselines, the sequential
reference and the exact branch-and-bound optimum.  This subsystem gives
them one calling shape:

* :mod:`request` — frozen, picklable :class:`ScheduleRequest` problem
  specs and the uniform :class:`SolveReport` answer;
* :mod:`solvers` — the :class:`Solver` protocol, the
  :func:`register_solver` registry and the built-in solver fleet;
* :mod:`workbench` — the :class:`Workbench` facade owning a shared
  thermal-model cache and routing single solves and whole fleets
  through the same path.

Quickstart::

    from repro.api import ScheduleRequest, solve

    report = solve(ScheduleRequest(soc="alpha15", tl_c=165.0, stcl=60.0))
    baseline = solve(
        ScheduleRequest(soc="alpha15", tl_c=165.0, solver="power_constrained")
    )
    print(report.length_s, baseline.hot_spot_rate)
"""

from .request import (
    BUILTIN_SOC_NAMES,
    DEFAULT_SOLVER,
    ScheduleRequest,
    SolveReport,
    report_from_dict,
    report_to_dict,
    request_from_dict,
    request_to_dict,
)
from .solvers import (
    OptimalMinSessionsSolver,
    PowerConstrainedSolver,
    RandomSolver,
    SequentialSolver,
    SolveContext,
    Solver,
    ThermalAwareSolver,
    available_solvers,
    get_solver,
    register_solver,
)
from .workbench import (
    Workbench,
    default_workbench,
    execute_request,
    execute_requests_batch,
    solve,
)

__all__ = [
    "BUILTIN_SOC_NAMES",
    "DEFAULT_SOLVER",
    "OptimalMinSessionsSolver",
    "PowerConstrainedSolver",
    "RandomSolver",
    "ScheduleRequest",
    "SequentialSolver",
    "SolveContext",
    "SolveReport",
    "Solver",
    "ThermalAwareSolver",
    "Workbench",
    "available_solvers",
    "default_workbench",
    "execute_request",
    "execute_requests_batch",
    "get_solver",
    "register_solver",
    "report_from_dict",
    "report_to_dict",
    "request_from_dict",
    "request_to_dict",
    "solve",
]

"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class.  Subclasses
are grouped by subsystem: geometry/floorplan, thermal simulation, power
modelling and scheduling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GeometryError(ReproError):
    """A geometric primitive was constructed with invalid data.

    Examples: a rectangle with non-positive width, a floorplan block
    placed outside the die outline.
    """


class FloorplanError(ReproError):
    """A floorplan-level consistency error.

    Examples: duplicate block names, overlapping blocks, an empty
    floorplan, a reference to a block that does not exist.
    """


class FloorplanFormatError(FloorplanError):
    """A HotSpot ``.flp`` file (or string) could not be parsed."""


class ThermalModelError(ReproError):
    """An RC thermal network is structurally invalid.

    Examples: a node with no path to thermal ground (the steady-state
    system would be singular), a non-positive resistance or capacitance.
    """


class SolverError(ReproError):
    """A thermal solve failed numerically (singular system, NaNs, ...)."""


class PowerModelError(ReproError):
    """A power profile is inconsistent with the SoC it is attached to."""


class RequestError(ReproError):
    """A unified-API scheduling request is invalid.

    Examples: neither (or both) of a built-in SoC name and an inline
    scenario, a missing temperature limit, an unknown solver name, or
    parameters the named solver does not accept.
    """


class SchedulingError(ReproError):
    """Test-schedule generation failed.

    The most important subclass is :class:`CoreThermalViolationError`,
    raised when a core violates the temperature limit even when tested
    alone (Algorithm 1, lines 1-7 of the paper).
    """


class CoreThermalViolationError(SchedulingError):
    """A core exceeds the temperature limit in a purely sequential test.

    The paper's Algorithm 1 (lines 4-6) requires such violations to be
    fixed by redesigning the core's test infrastructure or by raising the
    temperature limit ``TL``; neither can be done automatically, so the
    scheduler surfaces the condition as this exception.

    Attributes
    ----------
    core_name:
        Name of the offending core.
    max_temperature_c:
        Peak steady-state temperature of the core tested alone (Celsius).
    limit_c:
        The temperature limit ``TL`` that was violated (Celsius).
    """

    def __init__(self, core_name: str, max_temperature_c: float, limit_c: float):
        self.core_name = core_name
        self.max_temperature_c = max_temperature_c
        self.limit_c = limit_c
        super().__init__(
            f"core {core_name!r} reaches {max_temperature_c:.2f} degC when tested "
            f"alone, violating the temperature limit TL={limit_c:.2f} degC; fix the "
            f"core's test infrastructure or increase TL (paper Algorithm 1, line 5)"
        )


class ScheduleInfeasibleError(SchedulingError):
    """No thermally safe schedule could be found under the given limits.

    Raised when session construction cannot make progress, e.g. a single
    core repeatedly violates ``TL`` in a session of its own (which phase A
    should have caught), or an iteration cap is exhausted.
    """


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class ServiceError(ReproError):
    """The async scheduling service failed to accept or answer a request.

    Class attribute ``retryable`` rides every service error (and its
    wire ``error`` frame): ``True`` marks transient conditions a client
    should retry with backoff (busy, lost connection), ``False`` marks
    answers that will not change (infeasible request, protocol abuse).
    """

    #: Whether retrying the same request later can succeed.
    retryable = False


class ServiceBusyError(ServiceError):
    """The service is shedding load (backpressure signal).

    Raised by ``submit_nowait`` when the bounded job queue is full, and
    by *both* submit paths when the queue depth passes a configured
    shed watermark.  Clients that cannot wait should retry later with
    backoff; clients that can wait (and no watermark is set) should use
    the awaiting submit path, which blocks until queue space frees up
    instead of raising.

    Attributes
    ----------
    retry_after_s:
        Server-side hint: how long to wait before retrying, estimated
        from the queue depth and recent solve latency (``None`` when
        the raiser has no estimate).  A
        :class:`repro.service.fleet.RetryPolicy` honours it before
        falling back to exponential backoff.
    """

    retryable = True

    def __init__(self, message: str, retry_after_s: "float | None" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceConnectionError(ServiceError):
    """The TCP connection to a service could not be made, or was lost.

    Always retryable: solves are deterministic and deduplicated by
    content hash server-side, so re-submitting after a reconnect can
    never double-apply work.  Raised by the clients in place of raw
    ``ConnectionError``/``OSError`` so callers (and
    :class:`repro.service.fleet.RetryPolicy`) can classify it without
    string matching.
    """

    retryable = True


class ServiceClosedError(ServiceError):
    """The service is shutting down (or stopped) and accepts no new jobs."""


class ProtocolError(ServiceError):
    """A JSONL wire frame was malformed or of an unknown type."""


class ReactiveError(ReproError):
    """Closed-loop execution failed: bad guard config, sensor misuse,
    or a schedule the reactive executor cannot run."""


class AnalysisError(ReproError):
    """The static-analysis pass (``repro check``) could not run.

    Examples: an unparseable source file, an unknown rule name passed to
    ``--select``/``--ignore``, or a corrupt baseline file.  Rule
    *findings* are not errors — they are the pass's normal output.
    """

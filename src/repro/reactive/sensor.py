"""Virtual temperature sensor backed by the transient thermal solver.

A :class:`VirtualSensor` is the closed-loop stand-in for on-die
thermal diodes: it advances :meth:`ThermalSimulator.transient` through
whatever power map the executor is currently applying, carries the
thermal state (node temperature rises) across calls, and emits one
timestamped :class:`TemperatureSample` per integration step.

Timestamps are simulated seconds from an injectable start time, so a
run is bit-for-bit reproducible: the same schedule, thresholds, and
step size always produce the identical sample stream.  A real-sensor
adapter only has to produce the same ``TemperatureSample`` shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import ReactiveError
from ..thermal.builder import die_node
from ..thermal.simulator import ThermalSimulator

__all__ = ["TemperatureSample", "VirtualSensor"]


@dataclass(frozen=True)
class TemperatureSample:
    """Block temperatures (Celsius) observed at one instant."""

    time_s: float
    temperatures_c: Mapping[str, float]

    def __post_init__(self) -> None:
        if not self.temperatures_c:
            raise ReactiveError("a temperature sample needs >= 1 block")

    @property
    def max_temperature_c(self) -> float:
        return max(self.temperatures_c.values())

    @property
    def hottest_block(self) -> str:
        # max() over items keeps the first of exact ties deterministic.
        hottest, _ = max(
            self.temperatures_c.items(), key=lambda item: item[1]
        )
        return hottest

    def to_dict(self) -> dict[str, object]:
        return {
            "time_s": self.time_s,
            "temperatures_c": dict(self.temperatures_c),
        }


class VirtualSensor:
    """Steps the transient solver through an executing schedule.

    Parameters
    ----------
    simulator:
        The thermal model acting as the die.
    dt:
        Integration step, which is also the sampling period (s).
    start_time_s:
        Timestamp of the first emitted sample minus ``dt`` — inject a
        fake epoch here to line samples up with an external timeline.
    """

    def __init__(
        self,
        simulator: ThermalSimulator,
        *,
        dt: float = 5e-3,
        start_time_s: float = 0.0,
    ) -> None:
        if dt <= 0.0:
            raise ReactiveError(f"sensor step must be positive, got {dt!r}")
        self._simulator = simulator
        self._dt = dt
        self._time_s = start_time_s
        self._rises: np.ndarray | None = None
        self._block_columns: list[tuple[str, int]] | None = None

    @property
    def simulator(self) -> ThermalSimulator:
        return self._simulator

    @property
    def dt(self) -> float:
        return self._dt

    @property
    def time_s(self) -> float:
        """Simulated time at the last emitted sample."""
        return self._time_s

    def advance(
        self, power_by_block: Mapping[str, float], duration_s: float
    ) -> list[TemperatureSample]:
        """Apply a power map for a duration; emit one sample per step.

        The duration is rounded up to whole steps (matching the
        transient solver), and the thermal state carries over to the
        next call — a schedule advanced in chunks heats exactly as the
        same schedule advanced in one call.
        """
        if duration_s <= 0.0:
            raise ReactiveError(
                f"advance duration must be positive, got {duration_s!r}"
            )
        result = self._simulator.transient(
            power_by_block,
            duration_s,
            dt=self._dt,
            initial_rises=self._rises,
        )
        self._rises = result.final_rises()
        if self._block_columns is None:
            names = result.node_names
            self._block_columns = [
                (block, names.index(die_node(block)))
                for block in self._simulator.floorplan.block_names
            ]
        ambient = self._simulator.ambient_c
        samples = []
        for row in result.rises:
            self._time_s += self._dt
            samples.append(
                TemperatureSample(
                    time_s=self._time_s,
                    temperatures_c={
                        block: ambient + float(row[column])
                        for block, column in self._block_columns
                    },
                )
            )
        return samples

    def steps_for(self, duration_s: float) -> int:
        """Number of samples :meth:`advance` will emit for a duration."""
        # Mirror the solver's own rounding exactly.
        return int(np.ceil(duration_s / self._dt))

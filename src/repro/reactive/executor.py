"""Closed-loop execution of a thermal-safe test schedule.

The paper's schedules are generated a priori and executed open-loop.
:class:`ReactiveExecutor` runs one session-by-session against a
:class:`~repro.reactive.sensor.VirtualSensor` and lets a
:class:`~repro.reactive.guard.ThermalGuard` steer the run:

* **throttle** — in ELEVATED the remaining test time of the current
  session is stretched at reduced power (work done scales with the
  throttle factor, so a session throttled at 0.5 takes twice as long
  to finish its remaining work);
* **pause** — in CRITICAL all test power is dropped and the die cools
  until the guard downgrades (hysteresis applies);
* **reorder** — at a session boundary in ELEVATED the executor picks,
  among the remaining sessions, the one predicted to heat the current
  hottest block least — a single batched reduced-operator evaluation
  (`block_steady_state_batch`), the same GEMM the scheduler uses for
  candidate evaluation.

Everything is driven by simulated time from the sensor, so a run is
bit-reproducible: same schedule, config, and step size give the
identical event timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..errors import ReactiveError
from ..thermal.simulator import ThermalSimulator
from .guard import GuardAnalysis, GuardConfig, ThermalGuard, ThermalState
from .sensor import VirtualSensor

if TYPE_CHECKING:
    from ..core.scheduler import ScheduleResult
    from ..core.session import TestSchedule

__all__ = [
    "EVENT_KINDS",
    "ReactiveConfig",
    "ReactiveEvent",
    "ReactiveExecutor",
    "ReactiveRunReport",
    "run_schedule_result",
]

#: Every event kind a reactive run can emit, in no particular order.
EVENT_KINDS = (
    "queued",
    "running",
    "throttled",
    "restored",
    "paused",
    "resumed",
    "reordered",
    "session_done",
    "done",
)


@dataclass(frozen=True)
class ReactiveConfig:
    """Control-loop knobs of a :class:`ReactiveExecutor`.

    ``chunk_s`` is the control period: the executor advances the
    sensor that far between guard decisions.  ``throttle_factor``
    scales session power in ELEVATED; the session's remaining work is
    stretched by its inverse.  ``pause_s`` is how long one cooling
    interval lasts in CRITICAL; ``max_pause_s`` bounds the total time
    a single run may spend paused before giving up.
    """

    chunk_s: float = 0.02
    throttle_factor: float = 0.5
    pause_s: float = 0.05
    max_pause_s: float = 30.0
    reorder: bool = True

    def __post_init__(self) -> None:
        if self.chunk_s <= 0.0:
            raise ReactiveError(
                f"control period must be positive, got {self.chunk_s!r}"
            )
        if not 0.0 < self.throttle_factor < 1.0:
            raise ReactiveError(
                f"throttle factor must be in (0, 1), got "
                f"{self.throttle_factor!r}"
            )
        if self.pause_s <= 0.0:
            raise ReactiveError(
                f"pause interval must be positive, got {self.pause_s!r}"
            )
        if self.max_pause_s < self.pause_s:
            raise ReactiveError(
                f"pause budget ({self.max_pause_s!r} s) is below one pause "
                f"interval ({self.pause_s!r} s)"
            )


@dataclass(frozen=True)
class ReactiveEvent:
    """One entry of a reactive run's timeline."""

    seq: int
    kind: str
    time_s: float
    session: int | None
    cores: tuple[str, ...]
    guard_state: str
    max_temperature_c: float
    hottest_block: str
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "time_s": self.time_s,
            "session": self.session,
            "cores": list(self.cores),
            "guard_state": self.guard_state,
            "max_temperature_c": self.max_temperature_c,
            "hottest_block": self.hottest_block,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class ReactiveRunReport:
    """Outcome of one closed-loop (or open-loop) run."""

    events: tuple[ReactiveEvent, ...]
    total_time_s: float
    work_s: float
    peak_temperature_c: float
    peak_block: str
    peak_by_block: Mapping[str, float]
    throttles: int
    pauses: int
    reorders: int
    guard_transitions: Mapping[str, int]
    dwell_s: Mapping[str, float]
    samples: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "events": [event.to_dict() for event in self.events],
            "total_time_s": self.total_time_s,
            "work_s": self.work_s,
            "peak_temperature_c": self.peak_temperature_c,
            "peak_block": self.peak_block,
            "peak_by_block": dict(self.peak_by_block),
            "throttles": self.throttles,
            "pauses": self.pauses,
            "reorders": self.reorders,
            "guard_transitions": dict(self.guard_transitions),
            "dwell_s": dict(self.dwell_s),
            "samples": self.samples,
        }

    def describe(self) -> str:
        """One-paragraph human summary."""
        stretch = self.total_time_s / self.work_s if self.work_s else 1.0
        return (
            f"reactive run: {self.work_s:g} s of test work in "
            f"{self.total_time_s:g} s (x{stretch:.2f}), peak "
            f"{self.peak_temperature_c:.2f} C on {self.peak_block}, "
            f"{self.throttles} throttle(s), {self.pauses} pause(s), "
            f"{self.reorders} reorder(s), "
            f"{sum(self.guard_transitions.values())} guard transition(s)"
        )


@dataclass
class _SessionState:
    """A pending session with its remaining work at full power."""

    index: int
    cores: tuple[str, ...]
    power: dict[str, float]
    remaining_s: float
    duration_s: float = field(init=False)

    def __post_init__(self) -> None:
        self.duration_s = self.remaining_s


class ReactiveExecutor:
    """Runs a schedule session-by-session under thermal-guard control."""

    def __init__(
        self,
        sensor: VirtualSensor,
        guard: ThermalGuard,
        config: ReactiveConfig | None = None,
        *,
        on_event: Callable[[ReactiveEvent], None] | None = None,
    ) -> None:
        self._sensor = sensor
        self._guard = guard
        self._config = config or ReactiveConfig()
        self._on_event = on_event
        self._events: list[ReactiveEvent] = []
        self._peak_by_block: dict[str, float] = {}
        self._samples = 0
        self._last: GuardAnalysis | None = None
        self._throttles = 0
        self._pauses = 0
        self._reorders = 0

    # -- event emission ------------------------------------------------------------

    def _emit(
        self,
        kind: str,
        session: _SessionState | None = None,
        detail: str = "",
    ) -> None:
        analysis = self._last
        event = ReactiveEvent(
            seq=len(self._events),
            kind=kind,
            time_s=self._sensor.time_s,
            session=session.index if session is not None else None,
            cores=session.cores if session is not None else (),
            guard_state=self._guard.state.value,
            max_temperature_c=(
                analysis.max_temperature_c if analysis is not None else 0.0
            ),
            hottest_block=(
                analysis.hottest_block if analysis is not None else ""
            ),
            detail=detail,
        )
        self._events.append(event)
        if self._on_event is not None:
            self._on_event(event)

    # -- sensing -------------------------------------------------------------------

    def _advance(
        self, power: Mapping[str, float], duration_s: float
    ) -> GuardAnalysis:
        """Advance the die one control chunk; return the last analysis."""
        samples = self._sensor.advance(power, duration_s)
        analysis = self._last
        for sample in samples:
            analysis = self._guard.update(sample)
            for block, temp in sample.temperatures_c.items():
                if temp > self._peak_by_block.get(block, float("-inf")):
                    self._peak_by_block[block] = temp
        self._samples += len(samples)
        if analysis is None:  # pragma: no cover - advance always samples
            raise ReactiveError("sensor advance produced no samples")
        self._last = analysis
        return analysis

    # -- re-planning ---------------------------------------------------------------

    def _pick_next(self, pending: list[_SessionState]) -> int:
        """Index into *pending* of the session to run next.

        In ELEVATED (with reordering on) the remaining sessions are
        batch-evaluated with the reduced steady-state operator and the
        one predicted to heat the currently hottest block least wins;
        ties keep schedule order.  Otherwise: schedule order.
        """
        if (
            not self._config.reorder
            or len(pending) < 2
            or self._last is None
            or self._guard.state is not ThermalState.ELEVATED
        ):
            return 0
        hot_block = self._last.hottest_block
        batch = self._sensor.simulator.block_steady_state_batch(
            [session.power for session in pending]
        )
        best = 0
        best_temp = float("inf")
        for j, session in enumerate(pending):
            predicted = batch.field(j).temperature_c(hot_block)
            if predicted < best_temp - 1e-12:
                best = j
                best_temp = predicted
        return best

    # -- the control loop ----------------------------------------------------------

    def run(
        self,
        schedule: TestSchedule,
        *,
        closed_loop: bool = True,
    ) -> ReactiveRunReport:
        """Execute *schedule*; with ``closed_loop=False`` the guard still
        observes (and the timeline is still recorded) but never acts —
        the open-loop baseline the acceptance tests compare against."""
        soc = schedule.soc
        pending = [
            _SessionState(
                index=i,
                cores=tuple(session.cores),
                power=soc.session_power_map(session.cores),
                remaining_s=session.duration_s,
            )
            for i, session in enumerate(schedule.sessions)
        ]
        if not pending:
            raise ReactiveError("cannot run an empty schedule")
        work_total = sum(s.remaining_s for s in pending)
        start_s = self._sensor.time_s
        paused_total = 0.0

        for session in pending:
            self._emit("queued", session)

        while pending:
            if closed_loop and self._guard.state is ThermalState.CRITICAL:
                paused_total += self._cool_down(paused_total)
                continue
            pick = self._pick_next(pending) if closed_loop else 0
            session = pending.pop(pick)
            if pick != 0:
                self._reorders += 1
                self._emit(
                    "reordered",
                    session,
                    detail=(
                        f"avoiding {self._last.hottest_block}"
                        if self._last is not None
                        else ""
                    ),
                )
            self._emit("running", session)
            paused_total = self._run_session(
                session, closed_loop, paused_total
            )
            self._emit("session_done", session)

        self._emit("done")
        return ReactiveRunReport(
            events=tuple(self._events),
            total_time_s=self._sensor.time_s - start_s,
            work_s=work_total,
            peak_temperature_c=max(self._peak_by_block.values()),
            peak_block=max(
                self._peak_by_block, key=lambda b: self._peak_by_block[b]
            ),
            peak_by_block=dict(self._peak_by_block),
            throttles=self._throttles,
            pauses=self._pauses,
            reorders=self._reorders,
            guard_transitions=self._guard.transitions,
            dwell_s=self._guard.dwell_s,
            samples=self._samples,
        )

    def _run_session(
        self,
        session: _SessionState,
        closed_loop: bool,
        paused_total: float,
    ) -> float:
        throttled = False
        while session.remaining_s > 1e-12:
            if closed_loop and self._guard.state is ThermalState.CRITICAL:
                if throttled:
                    throttled = False
                paused_total += self._cool_down(paused_total, session)
                continue
            want = (
                closed_loop
                and self._guard.state is ThermalState.ELEVATED
            )
            if want and not throttled:
                throttled = True
                self._throttles += 1
                self._emit(
                    "throttled",
                    session,
                    detail=f"power x{self._config.throttle_factor:g}",
                )
            elif throttled and not want:
                throttled = False
                self._emit("restored", session, detail="full power")
            factor = self._config.throttle_factor if throttled else 1.0
            # A chunk at reduced power completes chunk*factor of the
            # session's remaining (full-power) test time.
            chunk = min(self._config.chunk_s, session.remaining_s / factor)
            power = (
                {k: v * factor for k, v in session.power.items()}
                if throttled
                else session.power
            )
            self._advance(power, chunk)
            session.remaining_s -= chunk * factor
        return paused_total

    def _cool_down(
        self, paused_total: float, session: _SessionState | None = None
    ) -> float:
        """One cooling interval at zero test power; returns its length."""
        if paused_total >= self._config.max_pause_s:
            raise ReactiveError(
                f"guard stayed CRITICAL after {paused_total:g} s of "
                f"cooling (budget {self._config.max_pause_s:g} s); the "
                f"schedule cannot be run under these thresholds"
            )
        self._pauses += 1
        self._emit("paused", session, detail="cooling at zero test power")
        self._advance({}, self._config.pause_s)
        if self._guard.state is not ThermalState.CRITICAL:
            self._emit("resumed", session)
        return self._config.pause_s


def run_schedule_result(
    result: ScheduleResult,
    *,
    guard_config: GuardConfig | None = None,
    config: ReactiveConfig | None = None,
    dt: float = 5e-3,
    simulator: ThermalSimulator | None = None,
    on_event: Callable[[ReactiveEvent], None] | None = None,
    closed_loop: bool = True,
) -> ReactiveRunReport:
    """Run a solved :class:`ScheduleResult` under closed-loop control.

    Convenience assembly used by the service streaming path and the
    CLI: builds the simulator for the result's SoC (unless one is
    passed in), derives guard thresholds from the result's temperature
    limit when no :class:`GuardConfig` is given, and wires sensor,
    guard, and executor together.
    """
    schedule = result.schedule
    soc = schedule.soc
    if simulator is None:
        simulator = ThermalSimulator(
            soc.floorplan, soc.package, soc.adjacency
        )
    if guard_config is None:
        guard_config = GuardConfig.from_limit(
            result.tl_c, simulator.ambient_c
        )
    sensor = VirtualSensor(simulator, dt=dt)
    guard = ThermalGuard(guard_config)
    executor = ReactiveExecutor(sensor, guard, config, on_event=on_event)
    return executor.run(schedule, closed_loop=closed_loop)

"""Closed-loop reactive schedule execution.

The paper's thermal-safe schedules are computed a priori and executed
open-loop; this package closes the loop.  The transient thermal solver
becomes a :class:`VirtualSensor`, a :class:`ThermalGuard` state
machine classifies each sample (NORMAL / ELEVATED / CRITICAL with
trend estimation and hysteresis), and a :class:`ReactiveExecutor`
runs a solved schedule session-by-session — throttling, pausing, and
reordering the remaining sessions as the die heats.  The service layer
streams the resulting event timeline to watching clients as
``progress``/``event`` push frames.
"""

from .executor import (
    EVENT_KINDS,
    ReactiveConfig,
    ReactiveEvent,
    ReactiveExecutor,
    ReactiveRunReport,
    run_schedule_result,
)
from .guard import GuardAnalysis, GuardConfig, ThermalGuard, ThermalState
from .sensor import TemperatureSample, VirtualSensor

__all__ = [
    "EVENT_KINDS",
    "GuardAnalysis",
    "GuardConfig",
    "ReactiveConfig",
    "ReactiveEvent",
    "ReactiveExecutor",
    "ReactiveRunReport",
    "TemperatureSample",
    "ThermalGuard",
    "ThermalState",
    "VirtualSensor",
    "run_schedule_result",
]

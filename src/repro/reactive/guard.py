"""Thermal-guard state machine for closed-loop schedule execution.

The guard watches a stream of :class:`~repro.reactive.sensor.TemperatureSample`
objects and classifies the die into three states:

* ``NORMAL`` — comfortably below the elevated threshold; keep going.
* ``ELEVATED`` — above the elevated threshold; throttle remaining work.
* ``CRITICAL`` — at or above the critical threshold; pause and cool.

Upgrades are immediate (a single hot sample is enough — heat is not a
thing to average away), downgrades require the temperature to fall a
hysteresis band *below* the threshold so the state machine cannot flap
on samples that hover at a boundary.  Every update also fits a
least-squares line through a sliding window of recent samples, so each
:class:`GuardAnalysis` carries the current warming/cooling trend in
degrees per second alongside the headroom to critical.

The guard itself holds no clock: time is whatever the samples say it
is, which makes every test (and every replay of a recorded scenario)
bit-for-bit deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum

from ..errors import ReactiveError
from .sensor import TemperatureSample

__all__ = [
    "GuardAnalysis",
    "GuardConfig",
    "ThermalGuard",
    "ThermalState",
]


class ThermalState(Enum):
    """Guard severity, ordered NORMAL < ELEVATED < CRITICAL."""

    NORMAL = "normal"
    ELEVATED = "elevated"
    CRITICAL = "critical"

    @property
    def severity(self) -> int:
        return _SEVERITY[self]


_SEVERITY = {
    ThermalState.NORMAL: 0,
    ThermalState.ELEVATED: 1,
    ThermalState.CRITICAL: 2,
}

#: Recommended action per state, reported in every analysis.
_ACTIONS = {
    ThermalState.NORMAL: "continue",
    ThermalState.ELEVATED: "throttle",
    ThermalState.CRITICAL: "pause",
}


@dataclass(frozen=True)
class GuardConfig:
    """Thresholds and window sizes of a :class:`ThermalGuard`.

    ``hysteresis_c`` is subtracted from a threshold before a downgrade
    is allowed: having entered ELEVATED at ``elevated_c``, the guard
    returns to NORMAL only below ``elevated_c - hysteresis_c``.
    """

    elevated_c: float
    critical_c: float
    hysteresis_c: float = 1.0
    trend_window_s: float = 0.5

    def __post_init__(self) -> None:
        if not self.elevated_c < self.critical_c:
            raise ReactiveError(
                f"elevated threshold ({self.elevated_c!r} C) must be below "
                f"critical ({self.critical_c!r} C)"
            )
        if self.hysteresis_c < 0.0:
            raise ReactiveError(
                f"hysteresis must be non-negative, got {self.hysteresis_c!r}"
            )
        if self.trend_window_s <= 0.0:
            raise ReactiveError(
                f"trend window must be positive, got {self.trend_window_s!r}"
            )

    @classmethod
    def from_limit(
        cls,
        limit_c: float,
        ambient_c: float,
        *,
        elevated_fraction: float = 0.7,
        hysteresis_fraction: float = 0.05,
        trend_window_s: float = 0.5,
    ) -> GuardConfig:
        """Derive thresholds from a temperature limit above ambient.

        Critical sits at the limit itself; elevated at
        ``elevated_fraction`` of the span from ambient to the limit.
        """
        span = limit_c - ambient_c
        if span <= 0.0:
            raise ReactiveError(
                f"limit {limit_c!r} C is not above ambient {ambient_c!r} C"
            )
        if not 0.0 < elevated_fraction < 1.0:
            raise ReactiveError(
                f"elevated fraction must be in (0, 1), got "
                f"{elevated_fraction!r}"
            )
        return cls(
            elevated_c=ambient_c + elevated_fraction * span,
            critical_c=limit_c,
            hysteresis_c=max(hysteresis_fraction * span, 0.0),
            trend_window_s=trend_window_s,
        )


@dataclass(frozen=True)
class GuardAnalysis:
    """One guard decision: state, headroom, trend, recommended action."""

    time_s: float
    state: ThermalState
    previous_state: ThermalState
    max_temperature_c: float
    hottest_block: str
    headroom_c: float
    trend_c_per_s: float
    recommended_action: str

    @property
    def transitioned(self) -> bool:
        return self.state is not self.previous_state

    @property
    def throttle_recommended(self) -> bool:
        return self.state.severity >= ThermalState.ELEVATED.severity

    def to_dict(self) -> dict[str, object]:
        return {
            "time_s": self.time_s,
            "state": self.state.value,
            "previous_state": self.previous_state.value,
            "max_temperature_c": self.max_temperature_c,
            "hottest_block": self.hottest_block,
            "headroom_c": self.headroom_c,
            "trend_c_per_s": self.trend_c_per_s,
            "recommended_action": self.recommended_action,
        }


class ThermalGuard:
    """NORMAL / ELEVATED / CRITICAL state machine over a sample stream.

    Feed samples in timestamp order via :meth:`update`; each call
    returns a :class:`GuardAnalysis`.  The guard accumulates transition
    counts and per-state dwell time (by sample timestamps, so both are
    deterministic under a fake clock) for the service metrics layer.
    """

    def __init__(self, config: GuardConfig) -> None:
        self._config = config
        self._state = ThermalState.NORMAL
        self._window: deque[tuple[float, float]] = deque()
        self._last_time_s: float | None = None
        self._transitions: dict[str, int] = {}
        self._dwell_s: dict[str, float] = {
            state.value: 0.0 for state in ThermalState
        }

    @property
    def config(self) -> GuardConfig:
        return self._config

    @property
    def state(self) -> ThermalState:
        return self._state

    @property
    def transitions(self) -> dict[str, int]:
        """Transition counts keyed ``"normal->elevated"`` etc."""
        return dict(self._transitions)

    @property
    def dwell_s(self) -> dict[str, float]:
        """Seconds spent in each state, by state value."""
        return dict(self._dwell_s)

    def update(self, sample: TemperatureSample) -> GuardAnalysis:
        """Classify one sample and return the resulting analysis."""
        time_s = sample.time_s
        if self._last_time_s is not None:
            if time_s < self._last_time_s:
                raise ReactiveError(
                    f"samples must be in time order: {time_s!r} s after "
                    f"{self._last_time_s!r} s"
                )
            # Dwell is attributed to the state held *before* this sample.
            self._dwell_s[self._state.value] += time_s - self._last_time_s
        self._last_time_s = time_s

        temp = sample.max_temperature_c
        previous = self._state
        self._state = self._next_state(previous, temp)
        if self._state is not previous:
            key = f"{previous.value}->{self._state.value}"
            self._transitions[key] = self._transitions.get(key, 0) + 1

        self._window.append((time_s, temp))
        cutoff = time_s - self._config.trend_window_s
        while self._window and self._window[0][0] < cutoff:
            self._window.popleft()

        return GuardAnalysis(
            time_s=time_s,
            state=self._state,
            previous_state=previous,
            max_temperature_c=temp,
            hottest_block=sample.hottest_block,
            headroom_c=self._config.critical_c - temp,
            trend_c_per_s=self._trend(),
            recommended_action=_ACTIONS[self._state],
        )

    def _next_state(
        self, current: ThermalState, temp: float
    ) -> ThermalState:
        cfg = self._config
        # Upgrades are immediate.
        if temp >= cfg.critical_c:
            return ThermalState.CRITICAL
        if temp >= cfg.elevated_c:
            return (
                current
                if current is ThermalState.CRITICAL
                and temp >= cfg.critical_c - cfg.hysteresis_c
                else ThermalState.ELEVATED
            )
        # Below elevated: downgrades must clear the hysteresis band.
        if current is ThermalState.CRITICAL:
            if temp >= cfg.critical_c - cfg.hysteresis_c:
                return ThermalState.CRITICAL
            return ThermalState.ELEVATED
        if current is ThermalState.ELEVATED:
            if temp >= cfg.elevated_c - cfg.hysteresis_c:
                return ThermalState.ELEVATED
            return ThermalState.NORMAL
        return ThermalState.NORMAL

    def _trend(self) -> float:
        """Least-squares slope (C/s) over the sliding window."""
        n = len(self._window)
        if n < 2:
            return 0.0
        mean_t = sum(t for t, _ in self._window) / n
        mean_y = sum(y for _, y in self._window) / n
        num = sum((t - mean_t) * (y - mean_y) for t, y in self._window)
        den = sum((t - mean_t) ** 2 for t, _ in self._window)
        if den == 0.0:
            return 0.0
        return num / den

"""Rule registry for ``repro check``.

Mirrors the solver registry of :mod:`repro.api.solvers`: rules are
classes decorated with :func:`register_rule`, looked up by a stable
kebab-case ``name``, and enumerated with :func:`available_rules`.  A
rule receives the whole :class:`~repro.analysis.project.Project` (not
one file at a time) because the interesting checks here are
cross-file: a codec in ``repro.api`` must match a dataclass defined
two modules away.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Type

from ..errors import AnalysisError
from .findings import Finding
from .project import Project

_REGISTRY: dict[str, "LintRule"] = {}


class LintRule(ABC):
    """Base class for analysis rules.

    Class attributes
    ----------------
    name:
        Stable kebab-case identifier — used in ``--select``/``--ignore``,
        in ``# repro: ignore[name]`` suppressions, and in baseline
        fingerprints.  Renaming a rule invalidates its baseline entries.
    description:
        One-line summary shown by ``repro check --list-rules``.
    """

    name: str = ""
    description: str = ""

    @abstractmethod
    def check(self, project: Project) -> Iterator[Finding]:
        """Yield every violation of this rule in *project*."""

    def finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a finding attributed to this rule."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.name,
            message=message,
            hint=hint,
        )


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule (as a singleton instance) to the registry."""
    if not cls.name:
        raise AnalysisError(f"rule class {cls.__name__} declares no name")
    if cls.name in _REGISTRY:
        raise AnalysisError(f"duplicate rule name {cls.name!r}")
    if not cls.description:
        raise AnalysisError(f"rule {cls.name!r} declares no description")
    _REGISTRY[cls.name] = cls()
    return cls


def get_rule(name: str) -> LintRule:
    """Look up one rule by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AnalysisError(
            f"unknown rule {name!r}; available: "
            f"{', '.join(sorted(_REGISTRY)) or '(none)'}"
        ) from None


def available_rules() -> list[LintRule]:
    """Every registered rule, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def resolve_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[LintRule]:
    """The rules to run: all by default, narrowed by select/ignore."""
    if select:
        rules = [get_rule(name) for name in select]
    else:
        rules = available_rules()
    if ignore:
        dropped = {get_rule(name).name for name in ignore}
        rules = [rule for rule in rules if rule.name not in dropped]
    return rules

"""Render a :class:`~repro.analysis.runner.CheckResult` for humans or CI.

Two formats, matching the rest of the CLI:

* ``text`` — compiler-style ``path:line:col: [rule] message`` lines,
  new findings first, then a one-line summary.
* ``json`` — the :meth:`CheckResult.to_dict` payload, pretty-printed,
  suitable for upload as a CI artifact.
"""

from __future__ import annotations

import json

from .runner import CheckResult


def render_text(result: CheckResult, verbose: bool = False) -> str:
    """Human-readable report; baselined findings only shown when *verbose*."""
    lines: list[str] = []
    if result.diff.new:
        lines.append("new findings (not in baseline):")
        for finding in result.diff.new:
            lines.append("  " + finding.render().replace("\n", "\n  "))
    if result.diff.baselined and verbose:
        lines.append("baselined findings (known debt):")
        for finding in result.diff.baselined:
            lines.append("  " + finding.render().replace("\n", "\n  "))
    if result.diff.stale:
        lines.append(
            "stale baseline entries (fixed debt; run --update-baseline "
            "to retire them):"
        )
        for fingerprint in result.diff.stale:
            lines.append(f"  {fingerprint}")
    summary = (
        f"checked {result.files_checked} files with "
        f"{len(result.rules)} rules: "
        f"{len(result.diff.new)} new, "
        f"{len(result.diff.baselined)} baselined, "
        f"{len(result.diff.stale)} stale baseline entries"
    )
    lines.append(("FAIL: " if not result.ok else "OK: ") + summary)
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    """Machine-readable report (stable key order)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)

"""Codebase-aware static analysis for the repro package.

``repro.analysis`` is the home of ``repro check``: an AST-walking lint
framework plus rules that encode this repository's own conventions —
the things a generic linter cannot know, like which attributes are
guarded by which lock, which dataclasses must stay field-for-field in
sync with their dict/JSONL/wire codecs, and which calls must never run
on the service's event loop.

The public surface mirrors the solver registry of :mod:`repro.api`:

* :class:`~repro.analysis.registry.LintRule` — base class for rules.
* :func:`~repro.analysis.registry.register_rule` — class decorator that
  adds a rule to the registry.
* :func:`~repro.analysis.runner.run_check` — load sources, run rules,
  apply the baseline, return a :class:`~repro.analysis.runner.CheckResult`.

Importing this package registers the built-in rules as a side effect
(exactly like importing :mod:`repro.api.builtin_solvers`).
"""

from .baseline import Baseline, BaselineDiff
from .findings import Finding
from .project import Project, SourceFile
from .registry import LintRule, available_rules, get_rule, register_rule
from .runner import CheckResult, run_check

# Importing the rules package registers every built-in rule.
from . import rules as _rules  # noqa: F401  (imported for side effect)

__all__ = [
    "Baseline",
    "BaselineDiff",
    "CheckResult",
    "Finding",
    "LintRule",
    "Project",
    "SourceFile",
    "available_rules",
    "get_rule",
    "register_rule",
    "run_check",
]

"""Committed-baseline ratchet for ``repro check``.

The baseline file maps finding fingerprints (``rule::path::message``)
to occurrence counts.  Semantics:

* A finding whose fingerprint is in the baseline, up to its recorded
  count, is *baselined* — reported but not failing.
* Any finding beyond the baseline (new fingerprint, or more occurrences
  of a known one) is *new* — it fails the check.
* A baseline entry no match occurred for is *stale* — the debt was paid
  down; ``--update-baseline`` removes it, so the baseline only ever
  ratchets toward zero unless someone deliberately rewrites it.

The file is plain sorted JSON so diffs in review show exactly which
debt was added or retired.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..errors import AnalysisError
from .findings import Finding

BASELINE_VERSION = 1

#: Conventional baseline filename at the repository root.
DEFAULT_BASELINE_NAME = "repro-check-baseline.json"


@dataclass
class BaselineDiff:
    """Result of applying a baseline to a list of findings."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no finding escapes the baseline."""
        return not self.new


class Baseline:
    """A fingerprint -> count mapping with ratchet semantics."""

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts = dict(counts or {})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        for finding in findings:
            counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") != BASELINE_VERSION
            or not isinstance(payload.get("findings"), dict)
        ):
            raise AnalysisError(
                f"baseline {path} is not a version-{BASELINE_VERSION} "
                f"repro-check baseline"
            )
        counts = {}
        for fingerprint, count in payload["findings"].items():
            if not isinstance(count, int) or count < 1:
                raise AnalysisError(
                    f"baseline {path}: bad count {count!r} for {fingerprint!r}"
                )
            counts[fingerprint] = count
        return cls(counts)

    def save(self, path: Path) -> None:
        """Write the baseline as stable, review-friendly JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": {k: self.counts[k] for k in sorted(self.counts)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def apply(self, findings: Iterable[Finding]) -> BaselineDiff:
        """Split *findings* into new vs baselined, and note stale entries."""
        diff = BaselineDiff()
        remaining = dict(self.counts)
        for finding in findings:
            budget = remaining.get(finding.fingerprint, 0)
            if budget > 0:
                remaining[finding.fingerprint] = budget - 1
                diff.baselined.append(finding)
            else:
                diff.new.append(finding)
        diff.stale = sorted(
            fingerprint for fingerprint, count in remaining.items() if count > 0
        )
        return diff

"""Source loading for the analysis pass.

A :class:`Project` is a parsed snapshot of Python sources: each
:class:`SourceFile` carries the text, the split lines, the ``ast`` tree,
its dotted module name, and the per-line ``# repro: ignore[...]``
suppressions.  Two constructors cover the two consumers:

* :meth:`Project.load` walks the real package tree on disk (the CLI).
* :meth:`Project.from_sources` builds a project from an in-memory
  ``{path: source}`` mapping (the fixture-snippet tests), so every rule
  can be exercised against hand-written positive/negative cases without
  touching the filesystem.

Paths are always stored relative to the *parent* of the package root
(``repro/service/service.py``), never to the current directory — the
baseline fingerprints embed them, so they must not depend on where
``repro check`` happens to be invoked from.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from ..errors import AnalysisError

#: Matches ``# repro: ignore`` and ``# repro: ignore[rule-a, rule-b]``.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[\w\-, ]*)\])?"
)


def _module_name(rel_path: str) -> str:
    """Dotted module for a package-relative posix path."""
    parts = rel_path.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _parse_suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
    """Per-line suppressed rules; an empty set means *all* rules."""
    out: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = frozenset()
        else:
            out[lineno] = frozenset(
                name.strip() for name in rules.split(",") if name.strip()
            )
    return out


@dataclass
class SourceFile:
    """One parsed source file."""

    path: str  # package-relative posix path, e.g. "repro/service/pool.py"
    module: str  # dotted module, e.g. "repro.service.pool"
    text: str
    tree: ast.Module
    lines: list[str] = field(repr=False)
    suppressions: dict[int, frozenset[str]] = field(repr=False)

    @classmethod
    def from_text(cls, path: str, text: str) -> "SourceFile":
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {path}: {exc.msg} (line {exc.lineno})"
            ) from exc
        lines = text.splitlines()
        return cls(
            path=path,
            module=_module_name(path),
            text=text,
            tree=tree,
            lines=lines,
            suppressions=_parse_suppressions(lines),
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True if *rule* is suppressed on *line* (or its decorator line)."""
        suppressed = self.suppressions.get(line)
        if suppressed is None:
            return False
        return not suppressed or rule in suppressed

    def line_text(self, lineno: int) -> str:
        """The 1-indexed source line, or '' when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Project:
    """A set of parsed source files plus lookup helpers for rules."""

    def __init__(self, files: list[SourceFile]) -> None:
        self.files = sorted(files, key=lambda sf: sf.path)
        self._by_path = {sf.path: sf for sf in self.files}

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build a project from ``{package-relative path: source text}``."""
        return cls([SourceFile.from_text(p, t) for p, t in sources.items()])

    @classmethod
    def load(cls, package_root: Path) -> "Project":
        """Parse every ``*.py`` under *package_root* (the ``repro`` dir)."""
        package_root = package_root.resolve()
        if not package_root.is_dir():
            raise AnalysisError(f"not a directory: {package_root}")
        base = package_root.parent
        files = []
        for path in sorted(package_root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(base).as_posix()
            files.append(SourceFile.from_text(rel, path.read_text()))
        if not files:
            raise AnalysisError(f"no Python sources under {package_root}")
        return cls(files)

    def get(self, path: str) -> SourceFile | None:
        return self._by_path.get(path)

    def files_under(self, module_prefix: str) -> list[SourceFile]:
        """Files whose module is *module_prefix* or lives beneath it."""
        return [
            sf
            for sf in self.files
            if sf.module == module_prefix
            or sf.module.startswith(module_prefix + ".")
        ]

    def iter_classes(self) -> Iterator[tuple[SourceFile, ast.ClassDef]]:
        """Every class definition in the project, at any nesting level."""
        for sf in self.files:
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.ClassDef):
                    yield sf, node

    def iter_functions(
        self,
    ) -> Iterator[tuple[SourceFile, ast.FunctionDef | ast.AsyncFunctionDef]]:
        """Every function definition in the project."""
        for sf in self.files:
            for node in ast.walk(sf.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sf, node

    def find_class(self, name: str) -> tuple[SourceFile, ast.ClassDef] | None:
        """First class named *name*, searching the whole project."""
        for sf, node in self.iter_classes():
            if node.name == name:
                return sf, node
        return None

    def find_function(
        self, name: str
    ) -> tuple[SourceFile, ast.FunctionDef | ast.AsyncFunctionDef] | None:
        """First module-level function named *name* in the project."""
        for sf in self.files:
            for node in sf.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == name
                ):
                    return sf, node
        return None

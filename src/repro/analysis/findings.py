"""The unit of lint output: a :class:`Finding` with a stable fingerprint.

A finding pins a rule violation to ``path:line`` for humans and to a
*fingerprint* for the baseline.  The fingerprint deliberately excludes
the line number so that unrelated edits shifting a legacy finding up or
down the file do not invalidate the committed baseline; it is the
triple ``rule::path::message``.  Two identical legacy findings in one
file share a fingerprint — the baseline stores a *count* per
fingerprint, so adding a third occurrence still fails the check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Sort order is (path, line, col, rule) so text output reads like a
    compiler's: file by file, top to bottom.
    """

    path: str
    line: int
    col: int
    rule: str = field(compare=True)
    message: str = ""
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        """Baseline identity: stable across line shifts, not across edits."""
        return f"{self.rule}::{self.path}::{self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON form used by ``repro check --format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One-line human form: ``path:line:col: [rule] message``."""
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

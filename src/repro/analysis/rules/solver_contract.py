"""Rule: ``register_solver`` registrations honour the solver contract.

PR 2's registry made every scheduling algorithm a stateless singleton
declaring its capabilities up front; the upcoming solver zoo (Babu et
al. superposition strategies) will stress exactly that contract.  For
every class registered with ``@register_solver`` (or a
``register_solver(Cls)`` call) this rule requires:

* an explicit string ``name`` — the registry key;
* an explicit ``needs_stcl`` boolean — capability flags are part of
  the contract, not something to inherit silently;
* an explicit ``param_names`` declaration — the validation gate;
* every ``params.get("x")`` / ``params["x"]`` key used inside the
  class to be in that declared set (otherwise ``validate_params``
  rejects requests the solver actually understands — or worse, the
  solver silently ignores typo'd request parameters);
* no duplicate registry names across the project;
* no module-level scipy/matplotlib/pandas import in a module that
  registers a solver: solver modules must stay importable for CLI
  listings and analysis without pulling the heavy numeric stack
  (numpy is the package-wide baseline and is fine).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceFile
from ..registry import LintRule, register_rule
from ._ast_util import str_constant

#: Module-level imports that drag in the heavy numeric stack.
HEAVY_IMPORTS = ("scipy", "matplotlib", "pandas")

#: Class attributes every registered solver must declare explicitly.
REQUIRED_DECLARATIONS = ("name", "needs_stcl", "param_names")


def _is_register_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "register_solver"
    if isinstance(node, ast.Attribute):
        return node.attr == "register_solver"
    return False


def registered_solver_classes(
    project: Project,
) -> list[tuple[SourceFile, ast.ClassDef]]:
    """Every class registered via decorator or direct call."""
    classes: list[tuple[SourceFile, ast.ClassDef]] = []
    for sf in project.files:
        called_names: set[str] = set()
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Call)
                and _is_register_decorator(node.func)
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                called_names.add(node.args[0].id)
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in called_names or any(
                _is_register_decorator(d) for d in node.decorator_list
            ):
                classes.append((sf, node))
    return classes


def _class_assignments(cls: ast.ClassDef) -> dict[str, ast.expr]:
    """Directly assigned class attributes (name -> value expression)."""
    out: dict[str, ast.expr] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.value is not None:
                out[stmt.target.id] = stmt.value
    return out


def _declared_param_names(value: ast.expr) -> set[str] | None:
    """Statically evaluate a param_names declaration, else None.

    Understands ``frozenset({...})``, ``frozenset()``, set/tuple/list
    literals of string constants.
    """
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id in {"frozenset", "set"}:
            if not value.args:
                return set()
            return _declared_param_names(value.args[0])
        return None
    if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        names = set()
        for element in value.elts:
            text = str_constant(element)
            if text is None:
                return None
            names.add(text)
        return names
    return None


def _params_keys_used(cls: ast.ClassDef) -> list[tuple[str, ast.AST]]:
    """Every string key pulled out of a ``params`` mapping in the class."""
    used: list[tuple[str, ast.AST]] = []
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and isinstance(func.value, ast.Name)
                and func.value.id == "params"
                and node.args
            ):
                key = str_constant(node.args[0])
                if key is not None:
                    used.append((key, node))
        elif isinstance(node, ast.Subscript):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "params"
            ):
                key = str_constant(node.slice)
                if key is not None:
                    used.append((key, node))
    return used


@register_rule
class SolverContractRule(LintRule):
    name = "solver-contract"
    description = (
        "register_solver classes must declare name/needs_stcl/param_names, "
        "use only declared params, and avoid scipy-at-import modules"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        solver_classes = registered_solver_classes(project)
        yield from self._check_declarations(solver_classes)
        yield from self._check_duplicate_names(solver_classes)
        yield from self._check_heavy_imports(project, solver_classes)

    def _check_declarations(
        self, solver_classes: list[tuple[SourceFile, ast.ClassDef]]
    ) -> Iterator[Finding]:
        for sf, cls in solver_classes:
            assigned = _class_assignments(cls)
            for required in REQUIRED_DECLARATIONS:
                if required not in assigned:
                    yield self.finding(
                        sf.path,
                        cls.lineno,
                        cls.col_offset,
                        f"registered solver {cls.name} does not declare "
                        f"{required!r} explicitly",
                        hint=(
                            "capability flags and accepted params are part "
                            "of the register_solver contract; declare them "
                            "in the class body even when inheriting the "
                            "default value"
                        ),
                    )
            declared = None
            if "param_names" in assigned:
                declared = _declared_param_names(assigned["param_names"])
            if declared is None:
                continue  # dynamic declaration: subset check not possible
            for key, node in _params_keys_used(cls):
                if key not in declared:
                    yield self.finding(
                        sf.path,
                        node.lineno,
                        node.col_offset,
                        f"solver {cls.name} reads params[{key!r}] but does "
                        f"not declare it in param_names",
                        hint=(
                            "add the key to param_names so validate_params "
                            "accepts requests that use it"
                        ),
                    )

    def _check_duplicate_names(
        self, solver_classes: list[tuple[SourceFile, ast.ClassDef]]
    ) -> Iterator[Finding]:
        seen: dict[str, str] = {}
        for sf, cls in solver_classes:
            assigned = _class_assignments(cls)
            value = assigned.get("name")
            registry_name = str_constant(value) if value is not None else None
            if registry_name is None:
                continue
            if registry_name in seen:
                yield self.finding(
                    sf.path,
                    cls.lineno,
                    cls.col_offset,
                    f"solver registry name {registry_name!r} of {cls.name} "
                    f"is already registered by {seen[registry_name]}",
                    hint="registry names must be unique",
                )
            else:
                seen[registry_name] = cls.name

    def _check_heavy_imports(
        self,
        project: Project,
        solver_classes: list[tuple[SourceFile, ast.ClassDef]],
    ) -> Iterator[Finding]:
        solver_files = {sf.path for sf, _ in solver_classes}
        for sf in project.files:
            if sf.path not in solver_files:
                continue
            for stmt in sf.tree.body:  # module level only
                roots: list[str] = []
                if isinstance(stmt, ast.Import):
                    roots = [alias.name.split(".")[0] for alias in stmt.names]
                elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                    roots = [stmt.module.split(".")[0]]
                for root in roots:
                    if root in HEAVY_IMPORTS:
                        yield self.finding(
                            sf.path,
                            stmt.lineno,
                            stmt.col_offset,
                            f"solver module imports {root} at module level",
                            hint=(
                                "import lazily inside solve() so the solver "
                                "registry stays importable without the "
                                "heavy numeric stack"
                            ),
                        )

"""Rule: declared-guarded attributes are only touched under their lock.

The convention (introduced together with this rule) is a trailing
comment on the attribute's assignment in ``__init__``::

    self._entries = OrderedDict()   # guarded-by: _lock
    self._submitted = 0             # guarded-by: event-loop

Guard names that look like attributes (leading underscore) are
*enforced*: every later read or write of the attribute must sit
lexically inside ``with <obj>.<guard>:`` (or ``async with``) on the
same object — ``self._entries`` wants ``with self._lock:``, and
``other._entries`` in a merge method wants ``with other._lock:``.

Guard names without a leading underscore (``event-loop``) are
*ownership documentation*: the attribute belongs to a single execution
domain and takes no lock at all.  They are parsed (so typos in the
annotation fail loudly via ``--list-rules`` debugging) but generate no
findings — documenting single-owner state is exactly how the service's
event-loop counters avoid needing a lock.

Escape hatches, both deliberate:

* ``__init__`` itself is exempt (nothing else can see the object yet);
* methods whose name ends in ``_locked`` are exempt — the repo's
  convention for helpers documented as "caller holds the lock".
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceFile
from ..registry import LintRule, register_rule

GUARD_RE = re.compile(r"#\s*guarded-by:\s*(?P<guard>[\w\-]+)")

Held = frozenset[tuple[str, str]]


def guarded_attributes(sf: SourceFile, cls: ast.ClassDef) -> dict[str, str]:
    """``{attribute name: guard name}`` declared by *cls*'s annotations."""
    guards: dict[str, str] = {}
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        # A multi-line assignment may carry the comment on any of its
        # lines (typically the last, next to the value expression).
        match = None
        for lineno in range(node.lineno, (node.end_lineno or node.lineno) + 1):
            match = GUARD_RE.search(sf.line_text(lineno))
            if match is not None:
                break
        if match is None:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                guards[target.attr] = match.group("guard")
    return guards


@register_rule
class LockDisciplineRule(LintRule):
    name = "lock-discipline"
    description = (
        "reads/writes of '# guarded-by:' attributes outside a "
        "'with <obj>.<lock>:' scope"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for sf, cls in project.iter_classes():
            guards = guarded_attributes(sf, cls)
            enforced = {
                attr: guard
                for attr, guard in guards.items()
                if guard.startswith("_")
            }
            if not enforced:
                continue
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name == "__init__" or stmt.name.endswith("_locked"):
                    continue
                yield from self._check_method(
                    sf, cls, stmt, enforced, frozenset()
                )

    def _check_method(
        self,
        sf: SourceFile,
        cls: ast.ClassDef,
        node: ast.AST,
        guards: dict[str, str],
        held: Held,
    ) -> Iterator[Finding]:
        """Walk *node*, tracking which (object, lock) pairs are held.

        With-blocks are the only construct that changes the held set:
        everything between them is scanned flat, and each nested
        with-block recurses with the (possibly extended) set.
        """
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set(held)
            for item in node.items:
                ctx = item.context_expr
                if isinstance(ctx, ast.Attribute) and isinstance(
                    ctx.value, ast.Name
                ):
                    acquired.add((ctx.value.id, ctx.attr))
                # The acquisition expression itself still runs unlocked.
                yield from self._scan_flat(sf, cls, item, guards, held)
            inside = frozenset(acquired)
            for stmt in node.body:
                yield from self._check_method(sf, cls, stmt, guards, inside)
            return
        yield from self._scan_flat(sf, cls, node, guards, held)

    def _scan_flat(
        self,
        sf: SourceFile,
        cls: ast.ClassDef,
        node: ast.AST,
        guards: dict[str, str],
        held: Held,
    ) -> Iterator[Finding]:
        """Scan *node*, recursing into nested with-blocks via _check_method."""
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if current is not node and isinstance(
                current, (ast.With, ast.AsyncWith)
            ):
                yield from self._check_method(sf, cls, current, guards, held)
                continue
            yield from self._check_attribute(sf, cls, current, guards, held)
            stack.extend(ast.iter_child_nodes(current))

    def _check_attribute(
        self,
        sf: SourceFile,
        cls: ast.ClassDef,
        node: ast.AST,
        guards: dict[str, str],
        held: Held,
    ) -> Iterator[Finding]:
        if not isinstance(node, ast.Attribute):
            return
        if not isinstance(node.value, ast.Name):
            return
        guard = guards.get(node.attr)
        if guard is None:
            return
        base = node.value.id
        # Accessing the lock itself (e.g. `self._lock.locked()`) is fine.
        if node.attr == guard:
            return
        if (base, guard) in held:
            return
        yield self.finding(
            sf.path,
            node.lineno,
            node.col_offset,
            f"{cls.name}.{node.attr} is guarded by {guard!r} but "
            f"accessed as {base}.{node.attr} without "
            f"'with {base}.{guard}:'",
            hint=(
                f"wrap the access in 'with {base}.{guard}:' or move it "
                f"into a *_locked helper called under the lock"
            ),
        )

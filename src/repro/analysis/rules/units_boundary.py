"""Rule: no raw unit-conversion literals where :mod:`repro.units` helps.

The package standardises its unit boundaries in :mod:`repro.units`:
temperatures cross API boundaries in Celsius and are converted with
``celsius_to_kelvin``/``kelvin_to_celsius`` (never a bare ``273.15``),
and package geometry is stored in metres but written as ``mm(...)`` /
``mm2(...)`` at construction sites.  This rule flags the three ways
raw literals sneak past those boundaries:

* a bare ``273.15`` (or ``-273.15``) anywhere outside ``repro/units.py``;
* a numeric literal below 200 passed to a ``*_k`` keyword — a Kelvin
  temperature below 200 K is almost certainly a Celsius value that
  missed its conversion;
* a literal of 0.05 or more passed to one of the known metre-valued
  package-geometry keywords (``die_thickness``, ``sink_side``, ...) —
  a five-centimetre die thickness is really a millimetre value that
  should read ``mm(0.5)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ...units import KELVIN_OFFSET
from ..findings import Finding
from ..project import Project, SourceFile
from ..registry import LintRule, register_rule
from ._ast_util import numeric_constant

#: Keyword parameters measured in metres (PackageConfig geometry).
METRE_KEYWORDS = frozenset(
    {
        "die_thickness",
        "tim_thickness",
        "spreader_side",
        "spreader_thickness",
        "sink_side",
        "sink_thickness",
    }
)

#: A Kelvin temperature below this is almost certainly Celsius.
MIN_PLAUSIBLE_KELVIN = 200.0

#: A metre-valued package dimension at or above this (5 cm) is almost
#: certainly a millimetre value.
MAX_PLAUSIBLE_METRES = 0.05


@register_rule
class UnitsBoundaryRule(LintRule):
    name = "units-boundary"
    description = (
        "raw unit-conversion literals (273.15, Celsius into *_k, "
        "millimetres into metre params) where repro.units helpers exist"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for sf in project.files:
            if sf.module == "repro.units":
                continue  # the helpers' own definitions
            yield from self._check_offset_literals(sf)
            yield from self._check_call_keywords(sf)

    def _check_offset_literals(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, float)
                and abs(node.value) == KELVIN_OFFSET
            ):
                yield self.finding(
                    sf.path,
                    node.lineno,
                    node.col_offset,
                    "raw Kelvin-offset literal 273.15",
                    hint=(
                        "use celsius_to_kelvin()/kelvin_to_celsius() from "
                        "repro.units"
                    ),
                )

    def _check_call_keywords(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                value = numeric_constant(kw.value)
                if value is None:
                    continue
                if kw.arg.endswith("_k") and value < MIN_PLAUSIBLE_KELVIN:
                    yield self.finding(
                        sf.path,
                        kw.value.lineno,
                        kw.value.col_offset,
                        f"{kw.arg}={value:g} looks like Celsius passed to a "
                        f"Kelvin parameter",
                        hint=(
                            f"write {kw.arg}=celsius_to_kelvin({value:g}) "
                            f"(repro.units)"
                        ),
                    )
                elif kw.arg in METRE_KEYWORDS and value >= MAX_PLAUSIBLE_METRES:
                    yield self.finding(
                        sf.path,
                        kw.value.lineno,
                        kw.value.col_offset,
                        f"{kw.arg}={value:g} looks like millimetres passed "
                        f"to a metre parameter",
                        hint=f"write {kw.arg}=mm({value:g}) (repro.units)",
                    )

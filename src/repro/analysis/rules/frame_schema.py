"""Rule: wire-frame types, builders, and dispatch tables stay in lockstep.

The JSONL protocol is defined in three places that must agree:

* the ``FRAME_TYPES`` / ``CLIENT_FRAME_TYPES`` / ``SERVER_FRAME_TYPES``
  registries in ``protocol.py`` (``CLIENT | SERVER`` must cover every
  frame type, and each side-set must be a subset of the whole);
* the frame *builders* (``submit_frame``, ``fleet_stats_frame``, ...)
  whose literal ``"type"`` values must all be registered; and
* the server's and router's dispatch tables
  (``ScheduleServer._handle_frame`` / ``FleetRouter._handle_frame``),
  whose ``frame_type == "..."`` arms must handle *exactly* the
  client-sendable set — a new client frame type that only one endpoint
  learned about would make the fleet answer differently per hop.

History shows the failure mode this closes: ``fleet_stats`` landed as a
frame builder and a server branch in the same PR — the rule makes the
third copy (the router) impossible to forget, and the next frame type
impossible to half-wire.

Server-*push* frames (``PUSH_FRAME_TYPES``: the ``progress``/``event``
frames of a streaming submit) get the mirrored treatment: each push
type must be registered in ``FRAME_TYPES`` *and* ``SERVER_FRAME_TYPES``,
must have a builder, and must be routed by both client dispatch paths
(``AsyncServiceClient._read_loop``, which steers push frames to watch
subscriptions instead of pending futures, and
``AsyncServiceClient.watch``, which classifies them for its caller) —
a push type only one path knows about would stream over the wire and
then vanish inside the client.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceFile
from ..registry import LintRule, register_rule

#: The frame-type registries protocol.py must declare.
REGISTRY_NAMES = ("FRAME_TYPES", "CLIENT_FRAME_TYPES", "SERVER_FRAME_TYPES")

#: Every (class, method) that dispatches on client-sent frame types.
#: Each must compare a variable literally named ``frame_type`` against
#: string constants — the shape this rule can see.
DISPATCHERS: tuple[tuple[str, str], ...] = (
    ("ScheduleServer", "_handle_frame"),
    ("FleetRouter", "_handle_frame"),
)

#: Client-side paths that must route every server-push frame type, in
#: the same literal ``frame_type == "..."`` shape as the dispatchers.
PUSH_DISPATCHERS: tuple[tuple[str, str], ...] = (
    ("AsyncServiceClient", "_read_loop"),
    ("AsyncServiceClient", "watch"),
)


def _registry_literal(
    project: Project, name: str
) -> tuple[SourceFile, ast.Assign, frozenset[str]] | None:
    """The module-level ``NAME = frozenset({...})`` assignment, if any."""
    for sf in project.files:
        for stmt in sf.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            targets = [
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            ]
            if name not in targets:
                continue
            strings = frozenset(
                node.value
                for node in ast.walk(stmt.value)
                if isinstance(node, ast.Constant)
                and isinstance(node.value, str)
            )
            return sf, stmt, strings
    return None


def _literal_type_values(fn: ast.AST) -> list[tuple[str, int, int]]:
    """Every string written under a literal ``"type"`` dict key in *fn*."""
    values = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if not (
                isinstance(key, ast.Constant) and key.value == "type"
            ):
                continue
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                values.append((value.value, value.lineno, value.col_offset))
    return values


def dispatched_types(fn: ast.AST) -> dict[str, tuple[int, int]]:
    """Frame types a dispatcher handles: ``frame_type == "..."`` arms."""
    handled: dict[str, tuple[int, int]] = {}
    for node in ast.walk(fn):
        if not isinstance(node, ast.Compare):
            continue
        if not (
            isinstance(node.left, ast.Name) and node.left.id == "frame_type"
        ):
            continue
        for op, comparator in zip(node.ops, node.comparators):
            if not isinstance(op, ast.Eq):
                continue
            if isinstance(comparator, ast.Constant) and isinstance(
                comparator.value, str
            ):
                handled.setdefault(
                    comparator.value, (node.lineno, node.col_offset)
                )
    return handled


def _find_method(
    cls: ast.ClassDef, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for stmt in cls.body:
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == name
        ):
            return stmt
    return None


@register_rule
class FrameSchemaRule(LintRule):
    name = "frame-schema"
    description = (
        "wire frame types drifting between the protocol registries, the "
        "frame builders, and the server/router dispatch tables"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        registries = {
            name: _registry_literal(project, name) for name in REGISTRY_NAMES
        }
        # Fixture projects only carry what they exercise: with no
        # FRAME_TYPES registry at all there is no protocol to check.
        if registries["FRAME_TYPES"] is None:
            return
        yield from self._check_registry_algebra(registries)
        yield from self._check_builders(registries)
        client = registries["CLIENT_FRAME_TYPES"]
        if client is not None:
            yield from self._check_dispatchers(project, client[2])
        push = _registry_literal(project, "PUSH_FRAME_TYPES")
        if push is not None:
            yield from self._check_push_frames(project, registries, push)

    # -- the three registries must partition cleanly -------------------------------

    def _check_registry_algebra(self, registries: dict) -> Iterator[Finding]:
        sf, stmt, all_types = registries["FRAME_TYPES"]
        sides: dict[str, frozenset[str]] = {}
        for name in ("CLIENT_FRAME_TYPES", "SERVER_FRAME_TYPES"):
            located = registries[name]
            if located is None:
                yield self.finding(
                    sf.path,
                    stmt.lineno,
                    stmt.col_offset,
                    f"protocol declares FRAME_TYPES but no {name}",
                    hint=(
                        "declare which side may send each frame type; the "
                        "dispatch tables are checked against it"
                    ),
                )
                continue
            side_sf, side_stmt, side_types = located
            sides[name] = side_types
            for extra in sorted(side_types - all_types):
                yield self.finding(
                    side_sf.path,
                    side_stmt.lineno,
                    side_stmt.col_offset,
                    f"{name} lists {extra!r} which is not in FRAME_TYPES",
                    hint="register the frame type in FRAME_TYPES too",
                )
        if len(sides) == len(REGISTRY_NAMES) - 1:
            covered = sides["CLIENT_FRAME_TYPES"] | sides["SERVER_FRAME_TYPES"]
            for orphan in sorted(all_types - covered):
                yield self.finding(
                    sf.path,
                    stmt.lineno,
                    stmt.col_offset,
                    f"frame type {orphan!r} is in FRAME_TYPES but neither "
                    f"CLIENT_FRAME_TYPES nor SERVER_FRAME_TYPES claims it",
                    hint=(
                        "a frame type nobody may send is dead wire schema; "
                        "add it to the side that sends it"
                    ),
                )

    # -- every built frame must carry a registered type ----------------------------

    def _check_builders(self, registries: dict) -> Iterator[Finding]:
        sf, _stmt, all_types = registries["FRAME_TYPES"]
        for node in sf.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for value, lineno, col in _literal_type_values(node):
                if value not in all_types:
                    yield self.finding(
                        sf.path,
                        lineno,
                        col,
                        f"{node.name}() builds a frame of unregistered "
                        f"type {value!r}",
                        hint="add the type to FRAME_TYPES (and one side-set)",
                    )

    # -- push frames: registered, buildable, and client-routable -------------------

    def _check_push_frames(
        self,
        project: Project,
        registries: dict,
        push: tuple[SourceFile, ast.Assign, frozenset[str]],
    ) -> Iterator[Finding]:
        push_sf, push_stmt, push_types = push
        _sf, _stmt, all_types = registries["FRAME_TYPES"]
        for extra in sorted(push_types - all_types):
            yield self.finding(
                push_sf.path,
                push_stmt.lineno,
                push_stmt.col_offset,
                f"PUSH_FRAME_TYPES lists {extra!r} which is not in "
                f"FRAME_TYPES",
                hint="register the push frame type in FRAME_TYPES too",
            )
        server = registries["SERVER_FRAME_TYPES"]
        if server is not None:
            for extra in sorted(push_types - server[2]):
                yield self.finding(
                    push_sf.path,
                    push_stmt.lineno,
                    push_stmt.col_offset,
                    f"push frame type {extra!r} is not in "
                    f"SERVER_FRAME_TYPES",
                    hint=(
                        "push frames are server-sent by definition; add "
                        "the type to SERVER_FRAME_TYPES"
                    ),
                )
        built = set()
        for node in push_sf.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for value, _lineno, _col in _literal_type_values(node):
                    built.add(value)
        for missing in sorted(push_types - built):
            yield self.finding(
                push_sf.path,
                push_stmt.lineno,
                push_stmt.col_offset,
                f"no builder constructs a {missing!r} push frame",
                hint=(
                    f"add a {missing}_frame() builder next to the other "
                    f"server-side builders — hand-rolled dicts drift"
                ),
            )
        for class_name, method_name in PUSH_DISPATCHERS:
            located = project.find_class(class_name)
            if located is None:
                continue  # fixtures only carry what they exercise
            sf, cls = located
            method = _find_method(cls, method_name)
            if method is None:
                yield self.finding(
                    sf.path,
                    cls.lineno,
                    cls.col_offset,
                    f"{class_name} has no {method_name}() push-frame "
                    f"routing path",
                    hint=(
                        "the push-routing path is part of the wire "
                        "contract; rename it here and in "
                        "PUSH_DISPATCHERS together"
                    ),
                )
                continue
            handled = dispatched_types(method)
            if not handled:
                continue  # a stub without routing arms (fixtures)
            for missing in sorted(push_types - set(handled)):
                yield self.finding(
                    sf.path,
                    method.lineno,
                    method.col_offset,
                    f"{class_name}.{method_name}() does not route push "
                    f"frame type {missing!r}",
                    hint=(
                        f'add a ``frame_type == "{missing}"`` arm — an '
                        f"unrouted push frame vanishes inside the client"
                    ),
                )

    # -- the dispatch tables must cover exactly the client set ---------------------

    def _check_dispatchers(
        self, project: Project, client_types: frozenset[str]
    ) -> Iterator[Finding]:
        for class_name, method_name in DISPATCHERS:
            located = project.find_class(class_name)
            if located is None:
                continue  # fixtures only carry what they exercise
            sf, cls = located
            method = _find_method(cls, method_name)
            if method is None:
                yield self.finding(
                    sf.path,
                    cls.lineno,
                    cls.col_offset,
                    f"{class_name} has no {method_name}() dispatch method",
                    hint=(
                        "the frame dispatcher is part of the wire "
                        "contract; rename it here and in DISPATCHERS "
                        "together"
                    ),
                )
                continue
            handled = dispatched_types(method)
            if not handled:
                continue  # a stub without a dispatch table (fixtures)
            for missing in sorted(client_types - set(handled)):
                yield self.finding(
                    sf.path,
                    method.lineno,
                    method.col_offset,
                    f"{class_name}.{method_name}() does not dispatch "
                    f"client frame type {missing!r}",
                    hint=(
                        f'add an ``elif frame_type == "{missing}"`` arm — '
                        f"every endpoint must answer every client frame"
                    ),
                )
            for stale in sorted(set(handled) - client_types):
                lineno, col = handled[stale]
                yield self.finding(
                    sf.path,
                    lineno,
                    col,
                    f"{class_name}.{method_name}() dispatches {stale!r} "
                    f"which is not in CLIENT_FRAME_TYPES",
                    hint=(
                        "register the type in CLIENT_FRAME_TYPES (and "
                        "FRAME_TYPES) or drop the dead arm"
                    ),
                )

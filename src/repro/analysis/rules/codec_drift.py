"""Rule: dataclasses and their dict/JSONL/wire codecs stay field-for-field.

The repo carries three hand-maintained serialization paths — dict
codecs (``request_to_dict``/``report_to_dict``/...), JSONL archives
built on them, and wire frames embedding them.  History shows the
failure mode: a new dataclass field (``timings``, ``cached``) lands in
two of the three paths and silently drops on the third.  This rule
closes the loop statically:

* every field of a registered dataclass must appear as a written key
  in its ``*_to_dict`` codec (codecs built on ``dataclasses.asdict``
  are complete by construction);
* its ``*_from_dict`` codec must pass every field to the constructor
  (a ``Cls(**payload)`` splat is complete by construction);
* the wire/archive builders must keep embedding the dict codecs
  (``report_frame`` -> ``report_to_dict`` etc.), so the wire can never
  fork from the archive format.

The registry below names the repo's own types; the rule resolves them
by name wherever they live, so fixture projects (and future moves
between modules) need no configuration.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceFile
from ..registry import LintRule, register_rule
from ._ast_util import string_keys_in_dict_literals


@dataclass(frozen=True)
class CodecSpec:
    """One dataclass <-> codec-pair contract."""

    class_name: str
    to_fn: str
    from_fn: str | None
    #: Keys the to-codec may write beyond the fields (envelope metadata).
    extra_keys: frozenset[str] = frozenset()
    #: Name the from-codec constructs (defaults to the dataclass itself).
    constructs: str | None = None


#: The serialization contracts this repository promises.
CODEC_SPECS: tuple[CodecSpec, ...] = (
    CodecSpec(
        "ScheduleRequest",
        "request_to_dict",
        "request_from_dict",
        extra_keys=frozenset({"schema_version"}),
    ),
    CodecSpec(
        "SolveReport",
        "report_to_dict",
        "report_from_dict",
        extra_keys=frozenset({"schema_version", "request_hash"}),
    ),
    CodecSpec(
        "JobSpec",
        "job_spec_to_dict",
        "job_spec_from_dict",
        extra_keys=frozenset({"schema_version"}),
    ),
    CodecSpec(
        "JobResult",
        "job_result_to_dict",
        "job_result_from_dict",
        extra_keys=frozenset({"schema_version"}),
    ),
    CodecSpec(
        "ScheduleResult",
        "result_to_dict",
        "result_from_dict",
        extra_keys=frozenset({"schema_version"}),
    ),
    CodecSpec(
        "SolveOutcome",
        "outcome_record",
        "warm_cache_from_archive",
        extra_keys=frozenset(
            {"schema_version", "kind", "solver", "request", "request_hash"}
        ),
    ),
)

#: Wire/archive builders that must keep embedding the dict codecs.
WIRE_LINKS: tuple[tuple[str, str], ...] = (
    ("report_frame", "report_to_dict"),
    ("submit_frame", "request_to_dict"),
    ("parse_submit_frame", "request_from_dict"),
    ("outcome_record", "report_to_dict"),
    ("outcome_record", "request_to_dict"),
)


def dataclass_fields(cls: ast.ClassDef) -> list[str]:
    """Field names of a dataclass body: annotated, non-ClassVar, public."""
    fields: list[str] = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if stmt.target.id.startswith("_"):
            continue
        annotation = ast.dump(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append(stmt.target.id)
    return fields


def _calls_name(fn: ast.AST, name: str) -> bool:
    """True when *fn* contains a call to (or reference of) *name*."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
    return False


def _constructor_calls(fn: ast.AST, class_name: str) -> list[ast.Call]:
    """Every ``ClassName(...)`` call inside *fn*."""
    calls = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        called = None
        if isinstance(func, ast.Name):
            called = func.id
        elif isinstance(func, ast.Attribute):
            called = func.attr
        if called == class_name:
            calls.append(node)
    return calls


def _uses_asdict(fn: ast.AST) -> bool:
    """True when the codec delegates to ``dataclasses.asdict``."""
    return _calls_name(fn, "asdict")


@register_rule
class CodecDriftRule(LintRule):
    name = "codec-drift"
    description = (
        "dataclass fields missing from their *_to_dict/*_from_dict codecs "
        "or frame builders drifting off the dict codecs"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for spec in CODEC_SPECS:
            yield from self._check_spec(project, spec)
        yield from self._check_wire_links(project)

    def _check_spec(self, project: Project, spec: CodecSpec) -> Iterator[Finding]:
        located = project.find_class(spec.class_name)
        if located is None:
            return  # fixture projects only carry the types they exercise
        cls_sf, cls_node = located
        fields = dataclass_fields(cls_node)
        if not fields:
            return
        yield from self._check_to_codec(project, spec, cls_sf, cls_node, fields)
        yield from self._check_from_codec(project, spec, cls_sf, cls_node, fields)

    def _check_to_codec(
        self,
        project: Project,
        spec: CodecSpec,
        cls_sf: SourceFile,
        cls_node: ast.ClassDef,
        fields: list[str],
    ) -> Iterator[Finding]:
        located = project.find_function(spec.to_fn)
        if located is None:
            yield self.finding(
                cls_sf.path,
                cls_node.lineno,
                cls_node.col_offset,
                f"dataclass {spec.class_name} has no {spec.to_fn}() codec "
                f"in the project",
                hint="restore (or rename in CODEC_SPECS) the to-dict codec",
            )
            return
        fn_sf, fn_node = located
        if _uses_asdict(fn_node):
            return  # asdict() serialises every field by construction
        keys = string_keys_in_dict_literals(fn_node)
        for field in fields:
            if field not in keys:
                yield self.finding(
                    fn_sf.path,
                    fn_node.lineno,
                    fn_node.col_offset,
                    f"{spec.to_fn}() does not write field {field!r} of "
                    f"{spec.class_name}",
                    hint=(
                        f'add "{field}" to the dict literal (every field '
                        f"rides every serialization path)"
                    ),
                )

    def _check_from_codec(
        self,
        project: Project,
        spec: CodecSpec,
        cls_sf: SourceFile,
        cls_node: ast.ClassDef,
        fields: list[str],
    ) -> Iterator[Finding]:
        if spec.from_fn is None:
            return
        located = project.find_function(spec.from_fn)
        if located is None:
            yield self.finding(
                cls_sf.path,
                cls_node.lineno,
                cls_node.col_offset,
                f"dataclass {spec.class_name} has no {spec.from_fn}() codec "
                f"in the project",
                hint="restore (or rename in CODEC_SPECS) the from-dict codec",
            )
            return
        fn_sf, fn_node = located
        constructs = spec.constructs or spec.class_name
        calls = _constructor_calls(fn_node, constructs)
        if not calls:
            yield self.finding(
                fn_sf.path,
                fn_node.lineno,
                fn_node.col_offset,
                f"{spec.from_fn}() never constructs {constructs}",
                hint="the from-codec must rebuild the dataclass",
            )
            return
        # A **payload splat passes everything the payload carries.
        if any(kw.arg is None for call in calls for kw in call.keywords):
            return
        passed = {
            kw.arg for call in calls for kw in call.keywords if kw.arg
        }
        for field in fields:
            if field not in passed:
                yield self.finding(
                    fn_sf.path,
                    fn_node.lineno,
                    fn_node.col_offset,
                    f"{spec.from_fn}() does not pass field {field!r} to "
                    f"{constructs}",
                    hint=(
                        f"pass {field}=payload.get(...) so round-trips "
                        f"preserve it (use .get for back-compat records)"
                    ),
                )

    def _check_wire_links(self, project: Project) -> Iterator[Finding]:
        for builder, codec in WIRE_LINKS:
            located = project.find_function(builder)
            if located is None:
                continue  # fixtures only carry what they exercise
            fn_sf, fn_node = located
            if not _calls_name(fn_node, codec):
                yield self.finding(
                    fn_sf.path,
                    fn_node.lineno,
                    fn_node.col_offset,
                    f"{builder}() no longer embeds {codec}() — the wire "
                    f"format has forked from the dict codec",
                    hint=f"build the payload via {codec}()",
                )

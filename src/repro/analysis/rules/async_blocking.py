"""Rule: no blocking calls inside ``async def`` bodies.

The scheduling service runs every solve on an executor precisely so
the event loop never blocks (PR 4's core invariant).  This rule makes
that invariant mechanical: inside any ``async def`` in the package it
flags

* known blocking library calls (``time.sleep``, ``subprocess.*``,
  ``os.system``, synchronous socket/HTTP helpers),
* synchronous file I/O (builtin ``open``, ``Path.read_text`` and
  friends), and
* *direct solver invocation* — calling the solve entry points
  (``process_solve``, ``execute_request``, ...) without going through
  ``run_in_executor``; a steady-state solve is milliseconds of pure
  numpy that would stall every connected client.

Code inside nested ``def``s is not flagged: a nested function handed
to ``run_in_executor`` (the repo's standard pattern) runs on a worker
thread, not the loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..project import Project, SourceFile
from ..registry import LintRule, register_rule
from ._ast_util import import_table, qualified_name, walk_shallow

#: Qualified call names that block, with the fix to suggest.
BLOCKING_CALLS: dict[str, str] = {
    "time.sleep": "await asyncio.sleep(...) instead",
    "subprocess.run": "use asyncio.create_subprocess_exec or an executor",
    "subprocess.call": "use asyncio.create_subprocess_exec or an executor",
    "subprocess.check_call": "use asyncio.create_subprocess_exec or an executor",
    "subprocess.check_output": "use asyncio.create_subprocess_exec or an executor",
    "subprocess.Popen": "use asyncio.create_subprocess_exec or an executor",
    "os.system": "use asyncio.create_subprocess_exec or an executor",
    "os.popen": "use asyncio.create_subprocess_exec or an executor",
    "socket.create_connection": "use asyncio.open_connection",
    "urllib.request.urlopen": "run the request on an executor",
    "requests.get": "run the request on an executor",
    "requests.post": "run the request on an executor",
}

#: Builtins that block on the filesystem or the terminal.
BLOCKING_BUILTINS: dict[str, str] = {
    "open": "run file I/O on an executor (loop.run_in_executor)",
    "input": "never prompt from the event loop",
}

#: Blocking method names regardless of receiver (Path / file-like I/O).
BLOCKING_METHODS: dict[str, str] = {
    "read_text": "run file I/O on an executor (loop.run_in_executor)",
    "write_text": "run file I/O on an executor (loop.run_in_executor)",
    "read_bytes": "run file I/O on an executor (loop.run_in_executor)",
    "write_bytes": "run file I/O on an executor (loop.run_in_executor)",
}

#: Solve entry points that must only run on an executor: each one ends
#: in a scipy/numpy steady-state solve (or a whole request lifecycle).
SOLVER_ENTRYPOINTS: frozenset[str] = frozenset(
    {
        "process_solve",
        "process_solve_uncached",
        "solve_request_outcome",
        "execute_request",
        "run_job",
        "run_jobs",
    }
)


@register_rule
class AsyncBlockingRule(LintRule):
    name = "async-blocking"
    description = (
        "blocking calls (sleep, file/socket I/O, subprocess, direct solver "
        "invocation) inside async def bodies"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for sf in project.files:
            table = import_table(sf.tree)
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_async_def(sf, node, table)

    def _check_async_def(
        self,
        sf: SourceFile,
        fn: ast.AsyncFunctionDef,
        table: dict[str, str],
    ) -> Iterator[Finding]:
        for node in walk_shallow(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            qualified = qualified_name(func, table)
            where = f"async def {fn.name}"
            if qualified in BLOCKING_CALLS:
                yield self.finding(
                    sf.path,
                    node.lineno,
                    node.col_offset,
                    f"blocking call {qualified}() inside {where}",
                    hint=BLOCKING_CALLS[qualified],
                )
            elif isinstance(func, ast.Name) and func.id in BLOCKING_BUILTINS:
                yield self.finding(
                    sf.path,
                    node.lineno,
                    node.col_offset,
                    f"blocking builtin {func.id}() inside {where}",
                    hint=BLOCKING_BUILTINS[func.id],
                )
            elif isinstance(func, ast.Attribute) and func.attr in BLOCKING_METHODS:
                yield self.finding(
                    sf.path,
                    node.lineno,
                    node.col_offset,
                    f"blocking I/O method .{func.attr}() inside {where}",
                    hint=BLOCKING_METHODS[func.attr],
                )
            else:
                called = None
                if isinstance(func, ast.Name):
                    called = func.id
                elif isinstance(func, ast.Attribute):
                    called = func.attr
                if called in SOLVER_ENTRYPOINTS:
                    yield self.finding(
                        sf.path,
                        node.lineno,
                        node.col_offset,
                        f"direct solver invocation {called}() inside {where}",
                        hint=(
                            "solves are CPU-bound; dispatch via "
                            "loop.run_in_executor (see ScheduleService._solve)"
                        ),
                    )

"""Built-in rules for ``repro check``.

Importing this package registers every rule (the same import-time
registration pattern as the built-in solver fleet in
:mod:`repro.api.solvers`).  Each module holds exactly one rule so a
rule's detection logic, message wording, and hints live in one place.
"""

from . import async_blocking  # noqa: F401
from . import codec_drift  # noqa: F401
from . import frame_schema  # noqa: F401
from . import lock_discipline  # noqa: F401
from . import solver_contract  # noqa: F401
from . import units_boundary  # noqa: F401

__all__ = [
    "async_blocking",
    "codec_drift",
    "frame_schema",
    "lock_discipline",
    "solver_contract",
    "units_boundary",
]

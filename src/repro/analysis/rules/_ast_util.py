"""Small AST helpers shared by the built-in rules."""

from __future__ import annotations

import ast
from typing import Iterator


def import_table(tree: ast.Module) -> dict[str, str]:
    """Map local names to the qualified names they import.

    ``import time`` -> ``{"time": "time"}``; ``import numpy as np`` ->
    ``{"np": "numpy"}``; ``from time import sleep`` ->
    ``{"sleep": "time.sleep"}``.  Only top-level and nested statement
    imports are considered — good enough for call-site resolution.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


def qualified_name(node: ast.expr, table: dict[str, str]) -> str | None:
    """Resolve ``a.b.c`` / ``name`` through the import table, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = table.get(node.id, node.id)
    parts.append(base)
    return ".".join(reversed(parts))


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk *node*'s body without descending into nested def/class/lambda.

    The nested definition nodes themselves are yielded (so a rule can
    decide what to do with them), but their bodies are not entered —
    code inside a nested function runs on that function's schedule, not
    the enclosing one's.
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


def str_constant(node: ast.expr) -> str | None:
    """The value of a string-literal node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def numeric_constant(node: ast.expr) -> float | None:
    """The value of a (possibly negated) numeric literal, else None."""
    sign = 1.0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        sign = -1.0 if isinstance(node.op, ast.USub) else 1.0
        node = node.operand
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return sign * float(node.value)
    return None


def string_keys_in_dict_literals(fn: ast.AST) -> set[str]:
    """Every string key of a dict literal / dict() call / subscript store."""
    keys: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                value = str_constant(key) if key is not None else None
                if value is not None:
                    keys.add(value)
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "dict":
                keys.update(kw.arg for kw in node.keywords if kw.arg)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    value = str_constant(target.slice)
                    if value is not None:
                        keys.add(value)
    return keys

"""Run rules over a project and apply the baseline.

:func:`run_check` is the programmatic heart of ``repro check``: the CLI
is a thin argv wrapper around it, and the self-check test calls it
directly against the repository's own source tree and committed
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from .baseline import Baseline, BaselineDiff
from .findings import Finding
from .project import Project
from .registry import LintRule, resolve_rules


@dataclass
class CheckResult:
    """Everything one analysis run produced."""

    findings: list[Finding]
    diff: BaselineDiff
    rules: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing escapes the baseline."""
        return self.diff.ok

    def to_dict(self) -> dict[str, Any]:
        """JSON form used by ``--format json`` (and the CI artifact)."""
        return {
            "ok": self.ok,
            "rules": list(self.rules),
            "files_checked": self.files_checked,
            "counts": {
                "total": len(self.findings),
                "new": len(self.diff.new),
                "baselined": len(self.diff.baselined),
                "stale_baseline_entries": len(self.diff.stale),
            },
            "new": [f.to_dict() for f in self.diff.new],
            "baselined": [f.to_dict() for f in self.diff.baselined],
            "stale_baseline_entries": list(self.diff.stale),
        }


def run_rules(project: Project, rules: Sequence[LintRule]) -> list[Finding]:
    """All findings from *rules*, suppressions applied, sorted."""
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(project):
            source = project.get(finding.path)
            if source is not None and source.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
    return sorted(findings)


def run_check(
    project: Project,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> CheckResult:
    """Run the (selected) rules over *project* against *baseline*."""
    rules = resolve_rules(select=select, ignore=ignore)
    findings = run_rules(project, rules)
    diff = (baseline or Baseline()).apply(findings)
    return CheckResult(
        findings=findings,
        diff=diff,
        rules=[rule.name for rule in rules],
        files_checked=len(project.files),
    )

"""Baseline study — thermal-aware vs power-constrained, quantified.

Extends the paper's Figure 1 argument from one anecdote to a sweep: for
a range of chip-level power caps, pack the alpha15 SoC with the classic
power-constrained scheduler, audit each schedule thermally, and compare
against the thermal-aware scheduler at matched schedule length.  The
study reports, per power cap:

* the baseline's schedule length and peak temperature;
* its session hot-spot rate against the thermal-aware run's TL;
* the thermal-aware schedule that achieves the same (or shorter)
  length while staying safe — when one exists.

This is the quantitative version of the paper's central claim: a power
cap controls *watts*, not *temperature*, so its safety is accidental.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.workbench import Workbench
from ..soc.library import ALPHA15_STC_SCALE, alpha15_soc
from ..soc.system import SocUnderTest
from .reporting import format_table

#: The audit limit: the mid-grid TL used throughout the ablations.
TL_C = 165.0
#: STCL used for the thermal-aware reference runs.
STCL = 60.0


@dataclass(frozen=True)
class BaselinePoint:
    """One power cap's outcome.

    Attributes
    ----------
    power_cap_w:
        The chip-level session power limit.
    length_s:
        Baseline schedule length.
    peak_c:
        Baseline peak simulated temperature.
    hot_spot_rate:
        Fraction of baseline sessions violating ``TL_C``.
    """

    power_cap_w: float
    length_s: float
    peak_c: float
    hot_spot_rate: float

    @property
    def is_safe(self) -> bool:
        """True when the baseline schedule met the audit limit."""
        return self.hot_spot_rate == 0.0


@dataclass(frozen=True)
class BaselineStudy:
    """Full study results.

    Attributes
    ----------
    tl_c:
        The audit limit used everywhere.
    points:
        One entry per swept power cap.
    thermal_length_s:
        Length of the thermal-aware schedule at (tl_c, STCL).
    thermal_peak_c:
        Its peak temperature (always < tl_c).
    """

    tl_c: float
    points: tuple[BaselinePoint, ...]
    thermal_length_s: float
    thermal_peak_c: float

    @property
    def unsafe_caps(self) -> tuple[float, ...]:
        """Power caps whose schedules overheated."""
        return tuple(p.power_cap_w for p in self.points if not p.is_safe)


def run_baseline_study(
    soc: SocUnderTest | None = None,
    tl_c: float = TL_C,
    stcl: float = STCL,
    caps_w: tuple[float, ...] | None = None,
) -> BaselineStudy:
    """Run the power-cap sweep and the thermal-aware reference.

    Every run goes through the unified solver API: the same
    :class:`~repro.api.Workbench` (hence the same cached thermal model)
    answers the thermal-aware reference and every power-cap point, with
    only the ``solver=`` switch changing.
    """
    if soc is None:
        soc = alpha15_soc()
    workbench = Workbench()

    thermal = workbench.solve_soc(
        soc,
        solver="thermal_aware",
        tl_c=tl_c,
        stcl=stcl,
        stc_scale=ALPHA15_STC_SCALE,
    )

    if caps_w is None:
        total = soc.total_test_power_w()
        # From "barely above the biggest core" (anything lower is
        # unschedulable) to "half the chip".
        floor = 1.02 * max(c.test_power_w for c in soc)
        caps_w = tuple(
            round(floor + frac * (total / 2.0 - floor), 1)
            for frac in (0.0, 0.25, 0.5, 0.75, 1.0)
        )

    points = []
    for cap in caps_w:
        report = workbench.solve_soc(
            soc,
            solver="power_constrained",
            tl_c=tl_c,
            params={"power_limit_w": cap},
        )
        points.append(
            BaselinePoint(
                power_cap_w=cap,
                length_s=report.length_s,
                peak_c=report.max_temperature_c,
                hot_spot_rate=report.hot_spot_rate,
            )
        )
    return BaselineStudy(
        tl_c=tl_c,
        points=tuple(points),
        thermal_length_s=thermal.length_s,
        thermal_peak_c=thermal.max_temperature_c,
    )


def report_baseline_study(study: BaselineStudy | None = None) -> str:
    """Human-readable report of the baseline study."""
    if study is None:
        study = run_baseline_study()
    rows = [
        (
            f"{p.power_cap_w:g}",
            p.length_s,
            p.peak_c,
            f"{p.hot_spot_rate:.0%}",
            "SAFE" if p.is_safe else "UNSAFE",
        )
        for p in study.points
    ]
    table = format_table(
        ["power cap (W)", "length (s)", "peak (degC)", "hot-spot rate", "verdict"],
        rows,
        title=(
            f"Power-constrained scheduling audited at TL={study.tl_c:g} degC "
            f"(alpha15)"
        ),
    )
    return table + (
        f"\nthermal-aware reference at (TL={study.tl_c:g}, STCL={STCL:g}): "
        f"length {study.thermal_length_s:g} s, peak "
        f"{study.thermal_peak_c:.2f} degC — safe by construction.\n"
        "A power cap must be dialled down until its schedule happens to be\n"
        "safe; the thermal-aware scheduler targets the limit directly.\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_baseline_study())


if __name__ == "__main__":
    main()

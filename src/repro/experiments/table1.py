"""Table 1 — length, effort and max temperature over the full grid.

The paper's Table 1 sweeps TL from 145 to 185 degC in 5-degree steps
and STCL from 20 to 100 in steps of 10 (81 rows), reporting for each
run the test schedule length, the simulation effort and the maximum
simulated temperature.  This driver regenerates all 81 rows on the
alpha15 SoC.

Key shape targets checked against the regenerated table (the
integration tests assert these):

* max temperature is always strictly below TL (the schedules are
  thermally safe by construction);
* max temperature approaches TL for short schedules and stays tens of
  degrees below TL for high TL + tight STCL (the STCL constraint
  dominating, as the paper notes for TL=185/STCL=30);
* effort >= length everywhere, with equality when no session was
  discarded.
"""

from __future__ import annotations

from pathlib import Path

from ..soc.system import SocUnderTest
from .reporting import format_table, write_csv
from .sweep import PAPER_STCL_VALUES, PAPER_TL_VALUES_C, SweepGrid, run_sweep

#: The paper's Table 1 (TL, STCL) -> (length, effort, max temp) for
#: side-by-side reporting.  Transcribed from the paper.
PAPER_TABLE1: dict[tuple[int, int], tuple[int, int, float]] = {
    (145, 20): (7, 8, 144.29), (145, 30): (6, 6, 144.29),
    (145, 40): (5, 7, 144.51), (145, 50): (5, 14, 144.00),
    (145, 60): (5, 18, 144.00), (145, 70): (5, 20, 144.00),
    (145, 80): (5, 24, 144.00), (145, 90): (5, 22, 144.51),
    (145, 100): (5, 26, 144.00),
    (150, 20): (7, 8, 144.29), (150, 30): (6, 6, 144.29),
    (150, 40): (4, 4, 149.12), (150, 50): (4, 6, 147.54),
    (150, 60): (4, 15, 149.20), (150, 70): (4, 14, 147.80),
    (150, 80): (4, 19, 149.20), (150, 90): (4, 18, 149.31),
    (150, 100): (4, 17, 149.38),
    (155, 20): (7, 7, 150.85), (155, 30): (6, 6, 144.29),
    (155, 40): (4, 4, 149.12), (155, 50): (3, 5, 154.91),
    (155, 60): (3, 9, 154.40), (155, 70): (3, 13, 153.20),
    (155, 80): (4, 16, 154.40), (155, 90): (3, 15, 153.51),
    (155, 100): (3, 15, 154.40),
    (160, 20): (7, 7, 150.85), (160, 30): (6, 6, 144.29),
    (160, 40): (4, 4, 149.12), (160, 50): (3, 5, 154.91),
    (160, 60): (4, 12, 154.40), (160, 70): (3, 13, 153.20),
    (160, 80): (3, 14, 158.92), (160, 90): (3, 11, 157.83),
    (160, 100): (3, 12, 159.74),
    (165, 20): (7, 7, 150.85), (165, 30): (6, 6, 144.29),
    (165, 40): (4, 4, 149.12), (165, 50): (3, 5, 154.91),
    (165, 60): (2, 8, 161.69), (165, 70): (2, 12, 161.69),
    (165, 80): (3, 12, 164.48), (165, 90): (3, 11, 158.73),
    (165, 100): (3, 12, 161.14),
    (170, 20): (7, 7, 150.85), (170, 30): (6, 6, 144.29),
    (170, 40): (4, 4, 149.12), (170, 50): (3, 3, 169.61),
    (170, 60): (2, 8, 161.69), (170, 70): (3, 12, 167.52),
    (170, 80): (3, 12, 164.48), (170, 90): (2, 8, 168.46),
    (170, 100): (2, 8, 168.46),
    (175, 20): (7, 7, 150.85), (175, 30): (6, 6, 144.29),
    (175, 40): (4, 4, 149.12), (175, 50): (3, 3, 169.61),
    (175, 60): (2, 2, 172.28), (175, 70): (2, 9, 171.47),
    (175, 80): (2, 11, 174.02), (175, 90): (2, 8, 168.81),
    (175, 100): (2, 8, 168.81),
    (180, 20): (7, 7, 150.85), (180, 30): (6, 6, 144.29),
    (180, 40): (4, 4, 149.12), (180, 50): (3, 3, 169.61),
    (180, 60): (2, 2, 172.28), (180, 70): (2, 3, 176.63),
    (180, 80): (2, 7, 176.35), (180, 90): (2, 8, 168.81),
    (180, 100): (2, 8, 168.81),
    (185, 20): (7, 7, 150.85), (185, 30): (6, 6, 144.29),
    (185, 40): (4, 4, 149.12), (185, 50): (3, 3, 169.61),
    (185, 60): (2, 2, 172.28), (185, 70): (2, 3, 176.63),
    (185, 80): (2, 7, 176.35), (185, 90): (2, 8, 168.81),
    (185, 100): (2, 8, 168.81),
}


def run_table1(soc: SocUnderTest | None = None) -> SweepGrid:
    """Run the full 81-point Table 1 grid."""
    return run_sweep(
        soc=soc, tl_values_c=PAPER_TL_VALUES_C, stcl_values=PAPER_STCL_VALUES
    )


def report_table1(grid: SweepGrid | None = None) -> str:
    """Render Table 1 with paper values alongside ours."""
    if grid is None:
        grid = run_table1()
    rows = []
    for point in grid.points:
        paper = PAPER_TABLE1.get((int(point.tl_c), int(point.stcl)))
        paper_len, paper_eff, paper_temp = paper if paper else ("-", "-", "-")
        rows.append(
            (
                f"{point.tl_c:g}",
                f"{point.stcl:g}",
                f"{point.length_s:g}",
                f"{point.effort_s:g}",
                f"{point.max_temperature_c:.2f}",
                f"{paper_len}",
                f"{paper_eff}",
                f"{paper_temp}",
            )
        )
    return format_table(
        [
            "TL (degC)",
            "STCL",
            "length (s)",
            "effort (s)",
            "max T (degC)",
            "paper len",
            "paper eff",
            "paper max T",
        ],
        rows,
        title="Table 1 — thermal-aware scheduling over the full (TL, STCL) grid",
    )


def export_table1_csv(path: str | Path, grid: SweepGrid | None = None) -> None:
    """Write the regenerated Table 1 to CSV."""
    if grid is None:
        grid = run_table1()
    write_csv(path, (point.as_dict() for point in grid.points))


def main() -> None:
    """Console entry point."""
    print(report_table1())


if __name__ == "__main__":
    main()

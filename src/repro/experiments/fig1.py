"""Figure 1 — power-constrained scheduling does not prevent hot spots.

The paper's motivational example: a hypothetical 7-core system where
every core dissipates 15 W during test.  Under a 45 W chip-level power
cap, a power-constrained scheduler accepts both

* ``TS1 = {C2, C3, C4}`` — three *small* (4 mm^2), mutually adjacent
  cores, and
* ``TS2 = {C5, C6, C7}`` — three *large* (16 mm^2), mutually isolated
  cores,

yet thermal simulation shows a dramatic peak-temperature gap between
them (paper: 125.5 degC vs 67.5 degC), because C2's power density is
4x C5's.  This driver reproduces the experiment: it verifies both
sessions pass the power check, simulates both, and reports the gap.

Shape target (DESIGN.md): both sessions power-safe; TS1's peak far
above TS2's.  Absolute temperatures differ from the paper's because
the substrate differs (our RC simulator and reconstructed layout vs
HotSpot and their unpublished layout).
"""

from __future__ import annotations

from ..core.baselines import PowerConstrainedConfig, PowerConstrainedScheduler
from ..floorplan.library import (
    FIG1_POWER_LIMIT_W,
    FIG1_SESSION_COOL,
    FIG1_SESSION_HOT,
)
from ..soc.library import hypothetical7_soc
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .records import Fig1Result
from .reporting import format_table

#: The paper's reported temperatures for reference in reports.
PAPER_HOT_MAX_C = 125.5
PAPER_COOL_MAX_C = 67.5


def run_fig1(
    soc: SocUnderTest | None = None,
    power_limit_w: float = FIG1_POWER_LIMIT_W,
) -> Fig1Result:
    """Run the Figure 1 experiment and return the structured result."""
    if soc is None:
        soc = hypothetical7_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    baseline = PowerConstrainedScheduler(
        soc, PowerConstrainedConfig(power_limit_w=power_limit_w)
    )

    hot = list(FIG1_SESSION_HOT)
    cool = list(FIG1_SESSION_COOL)
    hot_field = simulator.steady_state(soc.session_power_map(hot))
    cool_field = simulator.steady_state(soc.session_power_map(cool))

    return Fig1Result(
        power_limit_w=power_limit_w,
        session_hot=tuple(hot),
        session_cool=tuple(cool),
        hot_power_w=soc.total_test_power_w(hot),
        cool_power_w=soc.total_test_power_w(cool),
        hot_accepted=baseline.accepts_session(hot),
        cool_accepted=baseline.accepts_session(cool),
        hot_max_c=max(hot_field.temperature_c(c) for c in hot),
        cool_max_c=max(cool_field.temperature_c(c) for c in cool),
    )


def report_fig1(result: Fig1Result | None = None) -> str:
    """Human-readable report of the Figure 1 experiment."""
    if result is None:
        result = run_fig1()
    rows = [
        (
            "TS1 " + "+".join(result.session_hot),
            result.hot_power_w,
            "yes" if result.hot_accepted else "no",
            result.hot_max_c,
            PAPER_HOT_MAX_C,
        ),
        (
            "TS2 " + "+".join(result.session_cool),
            result.cool_power_w,
            "yes" if result.cool_accepted else "no",
            result.cool_max_c,
            PAPER_COOL_MAX_C,
        ),
    ]
    table = format_table(
        ["session", "power (W)", f"<= {result.power_limit_w:g} W cap",
         "max temp (degC)", "paper (degC)"],
        rows,
        title=(
            "Figure 1 — equal-power sessions, unequal temperatures "
            f"(cap {result.power_limit_w:g} W)"
        ),
    )
    return (
        table
        + f"\nTemperature discrepancy: {result.discrepancy_c:.1f} degC "
        f"(paper: {PAPER_HOT_MAX_C - PAPER_COOL_MAX_C:.1f} degC)\n"
        "Both sessions satisfy the chip-level power constraint, but only the\n"
        "session of large, spread-out cores is thermally benign — the paper's\n"
        "argument for thermal-aware (rather than power-constrained) scheduling.\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_fig1())


if __name__ == "__main__":
    main()

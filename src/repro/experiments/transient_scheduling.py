"""Transient-validation scheduling — cashing in M1's conservatism.

The M1 validation study shows steady-state session temperatures exceed
the actual 1 s transient peaks by tens of degrees.  A scheduler that
validates against *transient* peaks can therefore pack far more
aggressively while still never exceeding TL during the test.  This
study runs Algorithm 1 in both validation modes over a compact (TL,
STCL) probe grid and reports:

* schedule lengths (transient mode should be dramatically shorter);
* the steady-state temperatures the transient-mode schedules would
  reach if sessions ran to thermal equilibrium — quantifying the
  safety margin being traded away;
* the wall-clock simulation cost ratio (a transient validation costs
  ~100 linear solves where the steady one costs a single cached
  back-substitution), which is the reason the paper — whose simulator
  was a full HotSpot run — chose M1.

This realises the trade-off the paper's Section 2 design implies but
never measures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.safety import audit_schedule
from ..core.scheduler import SchedulerConfig, ThermalAwareScheduler
from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..soc.library import ALPHA15_STC_SCALE, alpha15_soc
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .reporting import format_table

#: Probe grid for the comparison.
PROBE_GRID = ((155.0, 60.0), (165.0, 60.0), (185.0, 60.0))


@dataclass(frozen=True)
class TransientPoint:
    """One (TL, validation mode) outcome.

    Attributes
    ----------
    tl_c, stcl:
        The limits.
    validation:
        ``"steady"`` or ``"transient"``.
    length_s, effort_s:
        The paper's two metrics.
    transient_peak_c:
        Actual peak temperature during test (what the device feels).
    steady_peak_c:
        Steady-state peak the schedule's sessions would reach at
        equilibrium (the margin M1 insists on keeping).
    runtime_s:
        Wall-clock scheduling time.
    """

    tl_c: float
    stcl: float
    validation: str
    length_s: float
    effort_s: float
    transient_peak_c: float
    steady_peak_c: float
    runtime_s: float


def run_transient_scheduling(
    soc: SocUnderTest | None = None,
    probe_grid: tuple[tuple[float, float], ...] = PROBE_GRID,
) -> tuple[TransientPoint, ...]:
    """Run both validation modes over the probe grid."""
    if soc is None:
        soc = alpha15_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    model = SessionThermalModel(
        soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )

    points: list[TransientPoint] = []
    for validation in ("steady", "transient"):
        scheduler = ThermalAwareScheduler(
            soc,
            simulator=simulator,
            session_model=model,
            config=SchedulerConfig(validation=validation),
        )
        for tl_c, stcl in probe_grid:
            started = time.perf_counter()
            result = scheduler.schedule(tl_c, stcl)
            runtime = time.perf_counter() - started

            # What the device actually feels, and the equilibrium bound.
            transient_peak = 0.0
            for session in result.schedule:
                peaks = simulator.block_peak_transient_c(
                    soc.session_power_map(session.cores),
                    session.duration_s,
                    dt=1e-2,
                )
                transient_peak = max(
                    transient_peak, max(peaks[c] for c in session.cores)
                )
            steady_peak = audit_schedule(
                result.schedule, tl_c, simulator
            ).max_temperature_c

            points.append(
                TransientPoint(
                    tl_c=tl_c,
                    stcl=stcl,
                    validation=validation,
                    length_s=result.length_s,
                    effort_s=result.effort_s,
                    transient_peak_c=transient_peak,
                    steady_peak_c=steady_peak,
                    runtime_s=runtime,
                )
            )
    return tuple(points)


def report_transient_scheduling(
    points: tuple[TransientPoint, ...] | None = None
) -> str:
    """Human-readable report of the validation-mode comparison."""
    if points is None:
        points = run_transient_scheduling()
    table = format_table(
        [
            "validation",
            "TL (degC)",
            "length (s)",
            "effort (s)",
            "peak during test",
            "peak at equilibrium",
            "runtime",
        ],
        [
            (
                p.validation,
                f"{p.tl_c:g}",
                p.length_s,
                p.effort_s,
                f"{p.transient_peak_c:.1f}",
                f"{p.steady_peak_c:.1f}",
                f"{p.runtime_s * 1e3:.0f} ms",
            )
            for p in points
        ],
        title="Steady (paper M1) vs transient session validation (alpha15)",
    )
    return table + (
        "\nTransient validation packs sessions whose *equilibrium*\n"
        "temperatures exceed TL — safe only because 1 s tests end long\n"
        "before equilibrium.  The paper's steady-state criterion buys that\n"
        "margin (and a ~100x cheaper per-session simulation) at the cost\n"
        "of longer schedules.\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_transient_scheduling())


if __name__ == "__main__":
    main()

"""Text and CSV reporting helpers for experiment drivers.

The paper reports its results as one figure (Figure 5) and one long
table (Table 1); these helpers render our regenerated equivalents as
monospace text (for the console and for EXPERIMENTS.md) and as CSV (for
downstream plotting).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with two decimals; everything else with ``str``.
    """
    rendered: list[list[str]] = []
    for row in rows:
        rendered.append(
            [f"{v:.2f}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    out.write(header_line + "\n")
    out.write("-" * len(header_line) + "\n")
    for row in rendered:
        out.write("  ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def write_csv(
    path: str | Path, rows: Iterable[Mapping[str, object]]
) -> None:
    """Write dict rows to a CSV file (header from the first row)."""
    rows = list(rows)
    if not rows:
        raise ValueError("write_csv() needs at least one row")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def ascii_series_plot(
    series: Mapping[str, Mapping[float, float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """A small dependency-free ASCII line plot (Figure 5 stand-in).

    Parameters
    ----------
    series:
        Mapping from series label to an ``{x: y}`` mapping.
    width, height:
        Plot canvas size in characters.
    title:
        Optional caption.

    Each series is drawn with its own marker character; a legend maps
    markers to labels.  The goal is a readable trend view in terminals
    and text files, not publication graphics.
    """
    markers = "ox+*#@%&"
    all_x = sorted({x for values in series.values() for x in values})
    all_y = [y for values in series.values() for y in values.values()]
    if not all_x or not all_y:
        raise ValueError("ascii_series_plot() needs non-empty series")
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (label, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in values.items():
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y - y_min) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = marker

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(f"{y_max:8.1f} +" + "-" * width + "+\n")
    for line in canvas:
        out.write(" " * 9 + "|" + "".join(line) + "|\n")
    out.write(f"{y_min:8.1f} +" + "-" * width + "+\n")
    out.write(" " * 10 + f"{x_min:<10.3g}" + " " * (width - 20) + f"{x_max:>10.3g}\n")
    for index, label in enumerate(series):
        out.write(f"   {markers[index % len(markers)]} = {label}\n")
    return out.getvalue()

"""Figures 2-4 — the paper's worked example of the session thermal model.

The paper illustrates its model on a 6-block layout with the session
{2, 4, 5}: Figure 2 shows the layout and the lateral escape paths,
Figure 3 the rewired resistive network (active-active resistances
dropped, passive cores grounded), and Figure 4 the per-core equivalent
resistances, e.g. core 2's ``R_1,2 || R_2,N || R_2,3``.

This driver reproduces the derivation on our
:func:`~repro.floorplan.library.worked_example6` layout: for each
active core it lists which neighbours are active (paths removed, M2)
and passive (paths grounded, M3), and reports the equivalent
resistance, thermal characteristic and STC contribution.
"""

from __future__ import annotations

from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..floorplan.library import WORKED_EXAMPLE_SESSION
from ..soc.library import worked_example6_soc
from ..soc.system import SocUnderTest
from .records import WorkedExampleRow
from .reporting import format_table


def run_worked_example(
    soc: SocUnderTest | None = None,
    session: tuple[str, ...] = WORKED_EXAMPLE_SESSION,
) -> list[WorkedExampleRow]:
    """Evaluate the session model for the paper's example session."""
    if soc is None:
        soc = worked_example6_soc()
    model = SessionThermalModel(soc, SessionModelConfig())
    active = list(session)
    contributions = model.core_contributions(active)

    rows: list[WorkedExampleRow] = []
    for core in active:
        neighbours = model.neighbour_resistances(core)
        active_neighbours = tuple(
            sorted(n for n in neighbours if n in session)
        )
        passive_neighbours = tuple(
            sorted(n for n in neighbours if n not in session)
        )
        rows.append(
            WorkedExampleRow(
                core=core,
                active_neighbours=active_neighbours,
                passive_neighbours=passive_neighbours,
                equivalent_resistance=model.equivalent_resistance(core, active),
                thermal_characteristic=model.thermal_characteristic(core, active),
                stc_contribution=contributions[core],
            )
        )
    return rows


def report_worked_example(rows: list[WorkedExampleRow] | None = None) -> str:
    """Human-readable report of the Figures 2-4 worked example."""
    if rows is None:
        rows = run_worked_example()
    table_rows = [
        (
            row.core,
            "+".join(row.active_neighbours) or "(none)",
            "+".join(row.passive_neighbours) or "(none)",
            row.equivalent_resistance,
            row.thermal_characteristic,
            row.stc_contribution,
        )
        for row in rows
    ]
    table = format_table(
        [
            "active core",
            "active nbrs (paths dropped, M2)",
            "passive nbrs (grounded, M3)",
            "Rth (K/W)",
            "TC = P*Rth (K)",
            "STC term",
        ],
        table_rows,
        title=(
            "Figures 2-4 — session thermal model for session "
            f"{{{', '.join(r.core for r in rows)}}}"
        ),
    )
    stc = max(row.stc_contribution for row in rows)
    return table + f"\nSTC(TS) = max of the last column = {stc:.3f}\n"


def main() -> None:
    """Console entry point."""
    print(report_worked_example())


if __name__ == "__main__":
    main()

"""Figure 5 — schedule length and simulation effort vs STCL.

The paper plots, for TL in {145, 155, 165} degC, two series against the
session thermal characteristic limit: the generated test schedule
length and the simulation effort required to reach it.  The headline
trends (DESIGN.md shape targets):

* relaxed (large) STCL -> short schedules, high simulation effort;
* tight (small) STCL -> longer schedules found on (or near) the first
  attempt, so the effort curve meets the length curve;
* higher TL -> both curves drop.

This driver reruns the sweep on the alpha15 SoC and renders the same
series as a monospace table and an ASCII plot.
"""

from __future__ import annotations

from ..soc.system import SocUnderTest
from .reporting import ascii_series_plot, format_table
from .sweep import FIG5_TL_VALUES_C, PAPER_STCL_VALUES, SweepGrid, run_sweep


def run_fig5(
    soc: SocUnderTest | None = None,
    tl_values_c: tuple[float, ...] = FIG5_TL_VALUES_C,
    stcl_values: tuple[float, ...] = PAPER_STCL_VALUES,
) -> SweepGrid:
    """Run the Figure 5 sweep (three TL rows of the Table 1 grid)."""
    return run_sweep(soc=soc, tl_values_c=tl_values_c, stcl_values=stcl_values)


def report_fig5(grid: SweepGrid | None = None) -> str:
    """Render the Figure 5 series as a table plus an ASCII plot."""
    if grid is None:
        grid = run_fig5()

    headers = ["STCL"]
    for tl in grid.tl_values:
        headers.append(f"len(TL={tl:g})")
        headers.append(f"effort(TL={tl:g})")
    rows = []
    for stcl in grid.stcl_values:
        row: list[object] = [f"{stcl:g}"]
        for tl in grid.tl_values:
            point = grid.at(tl, stcl)
            row.append(point.length_s)
            row.append(point.effort_s)
        rows.append(row)
    table = format_table(
        headers,
        rows,
        title="Figure 5 — test schedule length and simulation effort vs STCL (seconds)",
    )

    series: dict[str, dict[float, float]] = {}
    for tl in grid.tl_values:
        series[f"length TL={tl:g}"] = {
            p.stcl: p.length_s for p in grid.row(tl)
        }
        series[f"effort TL={tl:g}"] = {
            p.stcl: p.effort_s for p in grid.row(tl)
        }
    plot = ascii_series_plot(
        series, title="Figure 5 (ASCII rendering; x = STCL, y = seconds)"
    )
    return table + "\n" + plot


def main() -> None:
    """Console entry point."""
    print(report_fig5())


if __name__ == "__main__":
    main()

"""Optimality study — how close is Algorithm 1 to the best possible?

The paper never compares its heuristic against an optimum (none was
tractable for 15 cores in 2005 with HotSpot in the loop).  With the
fast RC simulator and memoised session feasibility, exact
branch-and-bound minimum-session scheduling is tractable for small
SoCs, so the gap can be measured:

* for a set of seeded random SoCs (6-9 cores), compute the exact
  minimum number of thermally safe sessions;
* run Algorithm 1 on the same SoC and record its session count and how
  many thermal solves each approach spent.

Reported: the heuristic's optimality gap distribution and the search
cost ratio — the trade the paper's "rapid" buys.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.workbench import Workbench
from ..errors import ScheduleInfeasibleError, SchedulingError
from ..floorplan.generator import slicing_floorplan
from ..power.generator import PowerGeneratorConfig, generate_power_profile
from ..soc.system import SocUnderTest
from .reporting import format_table

#: Default problem set: (core count, seed) pairs.
DEFAULT_CASES = ((6, 1), (6, 2), (7, 3), (7, 4), (8, 5), (8, 6), (9, 7), (9, 8))

#: Power scale applied to the generated profiles so the thermal limit
#: genuinely constrains concurrency.
POWER_SCALE = 2.5


@dataclass(frozen=True)
class OptimalityCase:
    """One SoC's heuristic-vs-optimal outcome.

    Attributes
    ----------
    n_cores, seed:
        Problem identity.
    tl_c:
        Temperature limit used (derived from the SoC's regime).
    heuristic_sessions, optimal_sessions:
        Session counts of Algorithm 1 and the exact scheduler.
    heuristic_solves, optimal_solves:
        Thermal-solve counts (the dominant cost in the paper's
        setting, where each solve was a HotSpot run).
    """

    n_cores: int
    seed: int
    tl_c: float
    heuristic_sessions: int
    optimal_sessions: int
    heuristic_solves: int
    optimal_solves: int

    @property
    def gap(self) -> int:
        """Extra sessions the heuristic needed (0 = optimal)."""
        return self.heuristic_sessions - self.optimal_sessions


def _build_case(n_cores: int, seed: int) -> SocUnderTest:
    plan = slicing_floorplan(n_cores, seed=seed)
    profile = generate_power_profile(
        plan, PowerGeneratorConfig(seed=seed)
    ).scaled(POWER_SCALE)
    return SocUnderTest.from_profile(plan, profile)


def run_optimality_study(
    cases: tuple[tuple[int, int], ...] = DEFAULT_CASES,
) -> tuple[OptimalityCase, ...]:
    """Run heuristic and exact scheduling on every case.

    Both sides go through the unified solver API — the same workbench
    answers ``solver="thermal_aware"`` and ``solver="optimal"`` per
    case, sharing one cached thermal model.
    """
    workbench = Workbench()
    results = []
    for n_cores, seed in cases:
        soc = _build_case(n_cores, seed)
        # Borrow the simulator from the workbench cache so the tl_c
        # derivation warms the same model the two solves then hit.
        simulator, _ = workbench.cache.simulator_for(
            soc.floorplan, soc.package, soc.adjacency
        )

        singleton_peak = max(
            simulator.steady_state({n: soc[n].test_power_w}).temperature_c(n)
            for n in soc.core_names
        )
        all_active_peak = simulator.steady_state(
            soc.test_power_map()
        ).max_temperature_c()
        tl_c = (singleton_peak + all_active_peak) / 2.0

        try:
            heuristic = workbench.solve_soc(
                soc,
                solver="thermal_aware",
                tl_c=tl_c,
                stcl_headroom=3.0,
                params={"max_discards": 5_000},
            )
        except (ScheduleInfeasibleError, SchedulingError):
            continue  # skip pathological cases rather than bias the stats

        optimal = workbench.solve_soc(
            soc,
            solver="optimal",
            tl_c=tl_c,
            params={"max_cores": 9},
        )

        results.append(
            OptimalityCase(
                n_cores=n_cores,
                seed=seed,
                tl_c=tl_c,
                heuristic_sessions=heuristic.n_sessions,
                optimal_sessions=optimal.n_sessions,
                heuristic_solves=heuristic.steady_solves,
                optimal_solves=optimal.extras["thermal_solve_count"],
            )
        )
    return tuple(results)


def report_optimality_study(
    cases: tuple[OptimalityCase, ...] | None = None
) -> str:
    """Human-readable report of the optimality study."""
    if cases is None:
        cases = run_optimality_study()
    rows = [
        (
            f"{c.n_cores} cores / seed {c.seed}",
            f"{c.tl_c:.0f}",
            c.heuristic_sessions,
            c.optimal_sessions,
            c.gap,
            c.heuristic_solves,
            c.optimal_solves,
        )
        for c in cases
    ]
    table = format_table(
        [
            "case",
            "TL (degC)",
            "heuristic",
            "optimal",
            "gap",
            "heur. solves",
            "opt. solves",
        ],
        rows,
        title="Algorithm 1 vs exact minimum-session scheduling (small SoCs)",
    )
    total_gap = sum(c.gap for c in cases)
    exact = sum(1 for c in cases if c.gap == 0)
    return table + (
        f"\n{exact}/{len(cases)} cases scheduled optimally; "
        f"total gap {total_gap} session(s).\n"
        "At these sizes memoisation keeps the exact search affordable; its\n"
        "subset count grows exponentially with the core count, while the\n"
        "heuristic's solve count stays near the session count — the trade\n"
        "the paper's 'rapid' buys (each solve was a HotSpot run for them).\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_optimality_study())


if __name__ == "__main__":
    main()

"""Model accuracy study — how well does STC rank sessions?

The paper's whole premise is that the session thermal characteristic is
a *useful surrogate* for accurate simulation: sessions it flags as hot
really are hot.  The paper demonstrates this indirectly (schedules
converge quickly); this study measures it directly:

1. draw a few hundred random candidate sessions of the alpha15 SoC
   (seeded, sizes 1..8);
2. evaluate each with the session model (STC) *and* the full
   steady-state simulation (peak active-core temperature);
3. report Spearman rank correlation, the screening accuracy when STC is
   used as a binary classifier against a temperature limit, and the
   same numbers for the model ablations (no M2 / no M3 / with vertical
   path).

A high rank correlation for the paper configuration — and degraded
numbers for the ablations — is the quantitative justification for the
modifications the paper argues only physically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..soc.library import ALPHA15_STC_SCALE, alpha15_soc
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .reporting import format_table

#: Number of random sessions evaluated.
DEFAULT_SAMPLES = 300

#: The audit limit used for the binary-screening accuracy numbers.
SCREEN_TL_C = 165.0


@dataclass(frozen=True)
class AccuracyRow:
    """Accuracy of one model variant.

    Attributes
    ----------
    variant:
        Model configuration label.
    spearman_rho:
        Rank correlation between STC and the simulated peak, over the
        finite-STC samples.
    finite_fraction:
        Fraction of sessions with finite STC (landlocked-core sessions
        go to infinity in lateral-only variants — a *correct* "too
        risky" verdict, but excluded from rank correlation).
    screening_accuracy:
        Fraction of sessions where thresholding STC at its best cut
        agrees with the simulation's hot/safe verdict at
        :data:`SCREEN_TL_C`.
    """

    variant: str
    spearman_rho: float
    finite_fraction: float
    screening_accuracy: float


def _sample_sessions(
    soc: SocUnderTest, n_samples: int, seed: int
) -> list[list[str]]:
    rng = np.random.default_rng(seed)
    names = list(soc.core_names)
    sessions = []
    for _ in range(n_samples):
        size = int(rng.integers(1, 9))
        picked = rng.choice(len(names), size=min(size, len(names)), replace=False)
        sessions.append([names[i] for i in picked])
    return sessions


def _best_threshold_accuracy(
    stc: np.ndarray, hot: np.ndarray
) -> float:
    """Accuracy of the best single STC cut separating hot from safe.

    Infinite STC values always classify as hot (which is correct
    whenever the session really is hot).
    """
    best = 0.0
    candidates = np.concatenate(([0.0], np.unique(stc[np.isfinite(stc)])))
    for cut in candidates:
        predicted_hot = stc > cut
        best = max(best, float(np.mean(predicted_hot == hot)))
    return best


def run_model_accuracy(
    soc: SocUnderTest | None = None,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int = 42,
    screen_tl_c: float = SCREEN_TL_C,
) -> tuple[AccuracyRow, ...]:
    """Run the accuracy study over all model variants."""
    if soc is None:
        soc = alpha15_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    sessions = _sample_sessions(soc, n_samples, seed)

    # Simulate every session once (shared across variants).
    peaks = np.array(
        [
            max(
                simulator.steady_state(
                    soc.session_power_map(session)
                ).temperature_c(c)
                for c in session
            )
            for session in sessions
        ]
    )
    hot = peaks >= screen_tl_c

    variants = {
        "paper (M2+M3, lateral)": SessionModelConfig(
            stc_scale=ALPHA15_STC_SCALE
        ),
        "no M2 (keep active-active)": SessionModelConfig(
            drop_active_active=False, stc_scale=ALPHA15_STC_SCALE
        ),
        "no M3 (float passives)": SessionModelConfig(
            ground_passive=False, stc_scale=ALPHA15_STC_SCALE
        ),
        "with vertical path": SessionModelConfig(
            include_vertical=True, stc_scale=ALPHA15_STC_SCALE
        ),
    }

    rows = []
    for label, config in variants.items():
        model = SessionThermalModel(soc, config)
        stc = np.array(
            [
                model.session_thermal_characteristic(session)
                for session in sessions
            ]
        )
        finite = np.isfinite(stc)
        if finite.sum() >= 3:
            rho = float(stats.spearmanr(stc[finite], peaks[finite]).statistic)
        else:
            rho = math.nan
        rows.append(
            AccuracyRow(
                variant=label,
                spearman_rho=rho,
                finite_fraction=float(finite.mean()),
                screening_accuracy=_best_threshold_accuracy(stc, hot),
            )
        )
    return tuple(rows)


def report_model_accuracy(rows: tuple[AccuracyRow, ...] | None = None) -> str:
    """Human-readable report of the accuracy study."""
    if rows is None:
        rows = run_model_accuracy()
    table = format_table(
        [
            "model variant",
            "Spearman rho (STC vs peak)",
            "finite STC",
            "screening accuracy",
        ],
        [
            (
                r.variant,
                f"{r.spearman_rho:.3f}",
                f"{r.finite_fraction:.0%}",
                f"{r.screening_accuracy:.0%}",
            )
            for r in rows
        ],
        title=(
            f"Session-model accuracy over {DEFAULT_SAMPLES} random sessions "
            f"(screen at TL={SCREEN_TL_C:g} degC)"
        ),
    )
    return table + (
        "\nSpearman rho: how faithfully STC *ranks* sessions by their\n"
        "simulated peak temperature.  Screening accuracy: how often a\n"
        "single STC threshold agrees with the hot/safe verdict of a full\n"
        "simulation — the quantity that determines how many sessions\n"
        "Algorithm 1 discards.\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_model_accuracy())


if __name__ == "__main__":
    main()

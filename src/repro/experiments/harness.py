"""Experiment harness: run every paper artefact from one entry point.

``python -m repro.experiments.harness --all`` (or the installed
``repro-experiments`` script) regenerates:

* the Figure 1 motivational comparison,
* the Figures 2-4 worked example of the session thermal model,
* the Figure 5 length/effort curves,
* the full Table 1 grid (with the paper's numbers side by side),
* the calibration report backing the frozen constants.

Individual experiments can be selected by name; ``--csv DIR`` exports
machine-readable results next to the text report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from .ablations import report_ablations
from .baseline_study import report_baseline_study
from .calibration import report_calibration
from .fig1 import report_fig1, run_fig1
from .fig5 import report_fig5, run_fig5
from .grid_crosscheck import report_grid_crosscheck
from .heterogeneous import report_heterogeneous_study
from .m1_validation import report_m1_validation
from .model_accuracy import report_model_accuracy
from .optimality import report_optimality_study
from .refinement import report_refinement_study
from .reporting import write_csv
from .scaling import report_scaling_study
from .sweep import SweepGrid
from .table1 import report_table1, run_table1
from .transient_scheduling import report_transient_scheduling
from .worked_example import report_worked_example, run_worked_example

#: Registry of experiment name -> report function.  The first five are
#: the paper's artefacts; the rest are the extension studies from
#: DESIGN.md section 7.
EXPERIMENTS: dict[str, Callable[[], str]] = {
    "calibration": report_calibration,
    "fig1": report_fig1,
    "worked-example": report_worked_example,
    "fig5": report_fig5,
    "table1": report_table1,
    "m1-validation": report_m1_validation,
    "baseline-study": report_baseline_study,
    "ablations": report_ablations,
    "scaling": report_scaling_study,
    "model-accuracy": report_model_accuracy,
    "heterogeneous": report_heterogeneous_study,
    "optimality": report_optimality_study,
    "grid-crosscheck": report_grid_crosscheck,
    "refinement": report_refinement_study,
    "transient-scheduling": report_transient_scheduling,
}


def _export_csv(directory: Path) -> None:
    """Write CSV exports of the structured results."""
    directory.mkdir(parents=True, exist_ok=True)
    write_csv(directory / "fig1.csv", [run_fig1().as_dict()])
    write_csv(
        directory / "worked_example.csv",
        (row.as_dict() for row in run_worked_example()),
    )
    fig5: SweepGrid = run_fig5()
    write_csv(directory / "fig5.csv", (p.as_dict() for p in fig5.points))
    table1: SweepGrid = run_table1()
    write_csv(directory / "table1.csv", (p.as_dict() for p in table1.points))


def main(argv: list[str] | None = None) -> int:
    """Console entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the figures and tables of 'Rapid generation of "
            "thermal-safe test schedules' (DATE 2005)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS.keys(), []],
        help=f"experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--csv",
        type=Path,
        metavar="DIR",
        help="also export structured results as CSV files into DIR",
    )
    args = parser.parse_args(argv)

    selected = list(args.experiments)
    if args.all or not selected:
        selected = list(EXPERIMENTS)

    for name in selected:
        print("=" * 78)
        print(f"== {name}")
        print("=" * 78)
        print(EXPERIMENTS[name]())

    if args.csv is not None:
        _export_csv(args.csv)
        print(f"CSV exports written to {args.csv}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())

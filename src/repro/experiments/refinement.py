"""Refinement study — buying schedule length with simulation budget.

The paper exposes one dial (STCL) for trading simulation effort against
schedule length.  This study compares it against the complementary
mechanism in :mod:`repro.core.refine`:

* **paper's dial**: run Algorithm 1 across STCL = 20..100 and record
  (total effort, length) — the Figure 5 trade-off;
* **refinement dial**: run Algorithm 1 once at the *tightest* STCL
  (cheap, first-attempt safe) and then refine with increasing
  simulation budgets.

Both curves answer "how short a schedule does X seconds of simulated
session time buy?"; plotting them together shows refinement dominating
at small budgets (it only simulates sessions it might keep) while both
converge to the same short schedules at large budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.refine import ScheduleRefiner
from ..core.scheduler import ThermalAwareScheduler
from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..soc.library import ALPHA15_STC_SCALE, alpha15_soc
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .reporting import format_table

TL_C = 165.0
TIGHT_STCL = 20.0
STCL_SWEEP = (20.0, 40.0, 60.0, 80.0, 100.0)
BUDGETS_S = (0.0, 5.0, 10.0, 20.0, 40.0)


@dataclass(frozen=True)
class RefinementPoint:
    """One (mechanism, knob) outcome.

    Attributes
    ----------
    mechanism:
        ``"stcl"`` (the paper's dial) or ``"refine"``.
    knob:
        The STCL value or the refinement budget.
    total_effort_s:
        All simulated session time spent end to end (for refinement:
        the base run plus the refiner's spending).
    length_s:
        Final schedule length.
    """

    mechanism: str
    knob: float
    total_effort_s: float
    length_s: float


def run_refinement_study(
    soc: SocUnderTest | None = None,
    tl_c: float = TL_C,
    budgets_s: tuple[float, ...] = BUDGETS_S,
    stcl_sweep: tuple[float, ...] = STCL_SWEEP,
) -> tuple[RefinementPoint, ...]:
    """Run both trade-off mechanisms on the same SoC."""
    if soc is None:
        soc = alpha15_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    model = SessionThermalModel(
        soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )
    scheduler = ThermalAwareScheduler(
        soc, simulator=simulator, session_model=model
    )

    points: list[RefinementPoint] = []

    # The paper's dial.
    for stcl in stcl_sweep:
        result = scheduler.schedule(tl_c, stcl)
        points.append(
            RefinementPoint(
                mechanism="stcl",
                knob=stcl,
                total_effort_s=result.effort_s,
                length_s=result.length_s,
            )
        )

    # The refinement dial, on top of one cheap tight-STCL run.
    base = scheduler.schedule(tl_c, TIGHT_STCL)
    refiner = ScheduleRefiner(soc, simulator, tl_c)
    for budget in budgets_s:
        refined = refiner.refine(base.schedule, budget)
        points.append(
            RefinementPoint(
                mechanism="refine",
                knob=budget,
                total_effort_s=base.effort_s + refined.effort_spent_s,
                length_s=refined.length_s,
            )
        )
    return tuple(points)


def report_refinement_study(
    points: tuple[RefinementPoint, ...] | None = None
) -> str:
    """Human-readable report of the refinement study."""
    if points is None:
        points = run_refinement_study()
    table = format_table(
        ["mechanism", "knob", "total effort (s)", "length (s)"],
        [
            (
                p.mechanism,
                f"{p.knob:g}",
                p.total_effort_s,
                p.length_s,
            )
            for p in points
        ],
        title=(
            f"Two effort-for-length dials at TL={TL_C:g} degC: the paper's "
            f"STCL vs budgeted refinement"
        ),
    )
    return table + (
        "\nBoth mechanisms trade simulated session time for schedule length;\n"
        "refinement starts from the cheap tight-STCL schedule and only\n"
        "simulates candidate improvements, so it reaches short schedules\n"
        "with less total effort than relaxing STCL from the start.\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_refinement_study())


if __name__ == "__main__":
    main()

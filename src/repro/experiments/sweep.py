"""Shared (TL, STCL) sweep machinery for Figure 5 and Table 1.

Both paper artefacts are cuts through the same experiment: run
Algorithm 1 on the alpha15 SoC for a grid of temperature limits and
session-thermal-characteristic limits, recording schedule length,
simulation effort and peak temperature.  This module runs that grid
once and the figure/table drivers format different views of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.scheduler import SchedulerConfig, ThermalAwareScheduler
from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..soc.library import ALPHA15_STC_SCALE, alpha15_soc
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .records import SweepPoint

#: The paper's Table 1 grid.
PAPER_TL_VALUES_C = tuple(float(t) for t in range(145, 190, 5))
PAPER_STCL_VALUES = tuple(float(s) for s in range(20, 110, 10))

#: The subset of TL values plotted in Figure 5.
FIG5_TL_VALUES_C = (145.0, 155.0, 165.0)


@dataclass(frozen=True)
class SweepGrid:
    """A completed (TL, STCL) sweep.

    Attributes
    ----------
    points:
        One :class:`SweepPoint` per (TL, STCL) pair, row-major in TL.
    """

    points: tuple[SweepPoint, ...]

    def at(self, tl_c: float, stcl: float) -> SweepPoint:
        """The point for an exact (TL, STCL) pair."""
        for point in self.points:
            if point.tl_c == tl_c and point.stcl == stcl:
                return point
        raise KeyError(f"no sweep point at TL={tl_c!r}, STCL={stcl!r}")

    def row(self, tl_c: float) -> tuple[SweepPoint, ...]:
        """All points for one TL, ordered by STCL."""
        row = tuple(
            sorted(
                (p for p in self.points if p.tl_c == tl_c),
                key=lambda p: p.stcl,
            )
        )
        if not row:
            raise KeyError(f"no sweep points at TL={tl_c!r}")
        return row

    @property
    def tl_values(self) -> tuple[float, ...]:
        """Distinct TL values, ascending."""
        return tuple(sorted({p.tl_c for p in self.points}))

    @property
    def stcl_values(self) -> tuple[float, ...]:
        """Distinct STCL values, ascending."""
        return tuple(sorted({p.stcl for p in self.points}))


def run_sweep(
    soc: SocUnderTest | None = None,
    tl_values_c: tuple[float, ...] = PAPER_TL_VALUES_C,
    stcl_values: tuple[float, ...] = PAPER_STCL_VALUES,
    stc_scale: float = ALPHA15_STC_SCALE,
    scheduler_config: SchedulerConfig | None = None,
    session_model_config: SessionModelConfig | None = None,
) -> SweepGrid:
    """Run Algorithm 1 over a (TL, STCL) grid.

    The thermal simulator and the session model are built once and
    shared across the grid (the scheduler itself is stateless between
    runs — weights are per-run state).
    """
    if soc is None:
        soc = alpha15_soc()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    model_config = (
        session_model_config
        if session_model_config is not None
        else SessionModelConfig(stc_scale=stc_scale)
    )
    model = SessionThermalModel(soc, model_config)
    scheduler = ThermalAwareScheduler(
        soc,
        simulator=simulator,
        session_model=model,
        config=scheduler_config if scheduler_config is not None else SchedulerConfig(),
    )

    points: list[SweepPoint] = []
    for tl_c in tl_values_c:
        for stcl in stcl_values:
            result = scheduler.schedule(tl_c, stcl)
            points.append(
                SweepPoint(
                    tl_c=tl_c,
                    stcl=stcl,
                    length_s=result.length_s,
                    effort_s=result.effort_s,
                    max_temperature_c=result.max_temperature_c,
                    n_sessions=result.n_sessions,
                    n_discarded=result.n_discarded,
                    forced_singletons=result.forced_singletons,
                )
            )
    return SweepGrid(points=tuple(points))

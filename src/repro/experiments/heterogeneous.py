"""Heterogeneous test times — beyond the paper's uniform sessions.

The paper reports schedule length in seconds for a 15-core SoC with
lengths between 2 and 7 — consistent with uniform 1 s tests, but real
core tests differ in length, and the session data model supports it
(a session lasts as long as its longest member).  This study reruns a
Figure-5-style sweep with seeded per-core test times in [0.5 s, 2.5 s]
and reports, per STCL:

* schedule length in *seconds* (no longer equal to the session count);
* the session count;
* the wasted tester time (cores idling inside sessions whose longest
  member outlasts them) — a metric that only exists with heterogeneous
  times, and the reason real schedulers group similar-length tests.

It also compares the paper's input-order candidate scan against the
``power_desc`` order, which tends to group long, hot tests together.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.scheduler import SchedulerConfig, ThermalAwareScheduler
from ..core.session import TestSchedule
from ..core.session_model import SessionModelConfig, SessionThermalModel
from ..soc.core import CoreUnderTest
from ..soc.library import ALPHA15_STC_SCALE, alpha15_soc
from ..soc.system import SocUnderTest
from ..thermal.simulator import ThermalSimulator
from .reporting import format_table

#: Test-time range (seconds) and draw seed.
TEST_TIME_RANGE_S = (0.5, 2.5)
TEST_TIME_SEED = 99

#: Sweep parameters.
TL_C = 165.0
STCL_VALUES = (20.0, 40.0, 60.0, 80.0, 100.0)


def heterogeneous_alpha15(seed: int = TEST_TIME_SEED) -> SocUnderTest:
    """alpha15 with seeded per-core test times in the configured range."""
    base = alpha15_soc()
    rng = np.random.default_rng(seed)
    low, high = TEST_TIME_RANGE_S
    cores = [
        CoreUnderTest(
            core.name,
            test_power_w=core.test_power_w,
            functional_power_w=core.functional_power_w,
            test_time_s=float(rng.uniform(low, high)),
        )
        for core in base
    ]
    return SocUnderTest(
        base.floorplan, cores, package=base.package, name="alpha15-hetero"
    )


def wasted_tester_time_s(schedule: TestSchedule) -> float:
    """Idle core-time inside sessions (members shorter than the session)."""
    soc = schedule.soc
    wasted = 0.0
    for session in schedule:
        for name in session.cores:
            wasted += session.duration_s - soc[name].test_time_s
    return wasted


@dataclass(frozen=True)
class HeteroPoint:
    """One (order, STCL) outcome on the heterogeneous SoC."""

    candidate_order: str
    stcl: float
    length_s: float
    n_sessions: int
    effort_s: float
    wasted_s: float


def run_heterogeneous_study(
    soc: SocUnderTest | None = None,
    tl_c: float = TL_C,
    stcl_values: tuple[float, ...] = STCL_VALUES,
) -> tuple[HeteroPoint, ...]:
    """Run the sweep for the input and power_desc candidate orders."""
    if soc is None:
        soc = heterogeneous_alpha15()
    simulator = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    model = SessionThermalModel(
        soc, SessionModelConfig(stc_scale=ALPHA15_STC_SCALE)
    )
    points = []
    for order in ("input", "power_desc"):
        scheduler = ThermalAwareScheduler(
            soc,
            simulator=simulator,
            session_model=model,
            config=SchedulerConfig(candidate_order=order),
        )
        for stcl in stcl_values:
            result = scheduler.schedule(tl_c, stcl)
            points.append(
                HeteroPoint(
                    candidate_order=order,
                    stcl=stcl,
                    length_s=result.length_s,
                    n_sessions=result.n_sessions,
                    effort_s=result.effort_s,
                    wasted_s=wasted_tester_time_s(result.schedule),
                )
            )
    return tuple(points)


def report_heterogeneous_study(
    points: tuple[HeteroPoint, ...] | None = None
) -> str:
    """Human-readable report of the heterogeneous-test-time study."""
    if points is None:
        points = run_heterogeneous_study()
    table = format_table(
        [
            "order",
            "STCL",
            "length (s)",
            "sessions",
            "effort (s)",
            "wasted core-time (s)",
        ],
        [
            (
                p.candidate_order,
                f"{p.stcl:g}",
                p.length_s,
                p.n_sessions,
                p.effort_s,
                p.wasted_s,
            )
            for p in points
        ],
        title=(
            f"Heterogeneous test times ({TEST_TIME_RANGE_S[0]:g}-"
            f"{TEST_TIME_RANGE_S[1]:g} s, TL={TL_C:g} degC)"
        ),
    )
    return table + (
        "\nWith unequal test lengths, schedule length (seconds) decouples\n"
        "from the session count, and sessions that mix short and long\n"
        "tests waste tester time — an effect invisible in the paper's\n"
        "uniform-length experiments but supported by its data model.\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_heterogeneous_study())


if __name__ == "__main__":
    main()

"""Grid-mode cross-check — does the block model get the physics right?

The paper validates candidate sessions with HotSpot's block mode; our
scheduler does the same with :class:`~repro.thermal.ThermalSimulator`.
This study re-simulates a batch of seeded random sessions with the
fine-grained grid solver (:mod:`repro.thermal.grid`) and compares:

* per-block peak temperatures (block mode's single number vs the
  hottest cell inside the block) — agreement ratio and rank
  correlation;
* the Figure 1 hot/cool verdict in both modes;
* the intra-block gradients that only grid mode can resolve.

The block model passing this check is what licenses using it as the
"accurate" simulator in every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..soc.library import alpha15_soc, hypothetical7_soc
from ..soc.system import SocUnderTest
from ..thermal.grid import GridThermalSimulator
from ..thermal.simulator import ThermalSimulator
from .reporting import format_table

#: Number of seeded random sessions compared.
DEFAULT_SAMPLES = 60

#: Grid resolution for the cross-check.
RESOLUTION = 48


@dataclass(frozen=True)
class CrosscheckReport:
    """Aggregate agreement between block and grid mode.

    Attributes
    ----------
    spearman_rho:
        Rank correlation between block-mode and grid-mode per-session
        peak temperature rises.
    mean_peak_ratio:
        Mean (block peak rise / grid peak rise); > 1 means block mode
        is conservative.
    max_intra_block_gradient_c:
        Largest temperature spread seen inside a single block (what
        block mode cannot represent).
    fig1_orderings_agree:
        Both modes agree the Figure 1 hot session out-heats the cool
        session.
    """

    spearman_rho: float
    mean_peak_ratio: float
    max_intra_block_gradient_c: float
    fig1_orderings_agree: bool


def run_grid_crosscheck(
    soc: SocUnderTest | None = None,
    n_samples: int = DEFAULT_SAMPLES,
    seed: int = 17,
    resolution: int = RESOLUTION,
) -> CrosscheckReport:
    """Run the block-vs-grid comparison."""
    if soc is None:
        soc = alpha15_soc()
    block_sim = ThermalSimulator(soc.floorplan, soc.package, soc.adjacency)
    grid_sim = GridThermalSimulator(
        soc.floorplan, soc.package, nx=resolution, ny=resolution
    )

    rng = np.random.default_rng(seed)
    names = list(soc.core_names)
    block_peaks = []
    grid_peaks = []
    max_gradient = 0.0
    for _ in range(n_samples):
        size = int(rng.integers(1, 9))
        picked = rng.choice(len(names), size=min(size, len(names)), replace=False)
        session = [names[i] for i in picked]
        power = soc.session_power_map(session)

        block_field = block_sim.steady_state(power)
        grid_field = grid_sim.steady_state(power)
        block_peaks.append(
            max(block_field.temperature_c(c) for c in session)
            - block_sim.ambient_c
        )
        grid_peaks.append(
            max(grid_field.block_max_c(c) for c in session)
            - grid_sim.ambient_c
        )
        max_gradient = max(
            max_gradient,
            max(grid_field.intra_block_gradient_c(c) for c in session),
        )

    block_arr = np.array(block_peaks)
    grid_arr = np.array(grid_peaks)
    rho = float(stats.spearmanr(block_arr, grid_arr).statistic)
    ratio = float(np.mean(block_arr / grid_arr))

    # Figure 1 verdict in both modes.
    hypo = hypothetical7_soc()
    hypo_block = ThermalSimulator(hypo.floorplan, hypo.package, hypo.adjacency)
    hypo_grid = GridThermalSimulator(
        hypo.floorplan, hypo.package, nx=resolution, ny=resolution
    )
    hot_map = hypo.session_power_map(["C2", "C3", "C4"])
    cool_map = hypo.session_power_map(["C5", "C6", "C7"])
    block_agree = (
        hypo_block.steady_state(hot_map).max_temperature_c()
        > hypo_block.steady_state(cool_map).max_temperature_c()
    )
    grid_agree = (
        hypo_grid.steady_state(hot_map).max_temperature_c()
        > hypo_grid.steady_state(cool_map).max_temperature_c()
    )

    return CrosscheckReport(
        spearman_rho=rho,
        mean_peak_ratio=ratio,
        max_intra_block_gradient_c=max_gradient,
        fig1_orderings_agree=block_agree and grid_agree,
    )


def report_grid_crosscheck(report: CrosscheckReport | None = None) -> str:
    """Human-readable cross-check report."""
    if report is None:
        report = run_grid_crosscheck()
    table = format_table(
        ["metric", "value"],
        [
            ("Spearman rho (block vs grid peaks)", f"{report.spearman_rho:.3f}"),
            ("mean block/grid peak-rise ratio", f"{report.mean_peak_ratio:.3f}"),
            (
                "max intra-block gradient",
                f"{report.max_intra_block_gradient_c:.1f} degC",
            ),
            (
                "Figure 1 verdict agrees",
                "yes" if report.fig1_orderings_agree else "NO",
            ),
        ],
        title=(
            f"Block-mode vs grid-mode ({RESOLUTION}x{RESOLUTION}) over "
            f"{DEFAULT_SAMPLES} random sessions"
        ),
    )
    return table + (
        "\nA rank correlation near 1 and a peak ratio slightly above 1 mean\n"
        "the block model orders sessions exactly like the fine mesh and errs\n"
        "on the warm (safe) side — the property the scheduling results rely\n"
        "on.  The intra-block gradient shows what the lumped model hides.\n"
    )


def main() -> None:
    """Console entry point."""
    print(report_grid_crosscheck())


if __name__ == "__main__":
    main()

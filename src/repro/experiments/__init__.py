"""Experiment drivers regenerating the paper's figures and tables
(DESIGN.md system S8).

===============  =====================================================
module           paper artefact
===============  =====================================================
``fig1``         Figure 1 — power-safe is not thermal-safe
``worked_example``  Figures 2-4 — session thermal model derivation
``fig5``         Figure 5 — length & effort vs STCL
``table1``       Table 1 — full (TL, STCL) grid
``calibration``  platform calibration backing the frozen constants
``sweep``        shared (TL, STCL) grid machinery
``harness``      CLI entry point (``repro-experiments``)
===============  =====================================================
"""

from .ablations import AblationRow, run_ablations
from .baseline_study import BaselineStudy, run_baseline_study
from .calibration import CalibrationReport, run_calibration
from .fig1 import run_fig1
from .heterogeneous import HeteroPoint, heterogeneous_alpha15, run_heterogeneous_study
from .m1_validation import M1Report, run_m1_validation
from .model_accuracy import AccuracyRow, run_model_accuracy
from .optimality import OptimalityCase, run_optimality_study
from .refinement import RefinementPoint, run_refinement_study
from .fig5 import run_fig5
from .grid_crosscheck import CrosscheckReport, run_grid_crosscheck
from .records import Fig1Result, SweepPoint, WorkedExampleRow
from .sweep import (
    FIG5_TL_VALUES_C,
    PAPER_STCL_VALUES,
    PAPER_TL_VALUES_C,
    SweepGrid,
    run_sweep,
)
from .scaling import ScalingPoint, run_scaling_study
from .table1 import PAPER_TABLE1, run_table1
from .transient_scheduling import TransientPoint, run_transient_scheduling
from .worked_example import run_worked_example

__all__ = [
    "AblationRow",
    "AccuracyRow",
    "HeteroPoint",
    "OptimalityCase",
    "RefinementPoint",
    "BaselineStudy",
    "CalibrationReport",
    "CrosscheckReport",
    "M1Report",
    "ScalingPoint",
    "FIG5_TL_VALUES_C",
    "Fig1Result",
    "PAPER_STCL_VALUES",
    "PAPER_TABLE1",
    "PAPER_TL_VALUES_C",
    "SweepGrid",
    "SweepPoint",
    "TransientPoint",
    "WorkedExampleRow",
    "run_ablations",
    "run_baseline_study",
    "run_calibration",
    "run_fig1",
    "run_heterogeneous_study",
    "run_m1_validation",
    "run_model_accuracy",
    "run_optimality_study",
    "run_refinement_study",
    "run_scaling_study",
    "heterogeneous_alpha15",
    "run_fig5",
    "run_grid_crosscheck",
    "run_sweep",
    "run_table1",
    "run_transient_scheduling",
    "run_worked_example",
]
